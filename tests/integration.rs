//! Cross-crate integration tests: full pipelines from graph/point
//! generation through relaxed execution to verified results.

use relaxed_schedulers::prelude::*;
use rsched_graph::analysis;

/// Every scheduler family must drive SSSP to the exact distances on every
/// graph family, whatever the relaxation.
#[test]
fn sssp_every_scheduler_every_graph() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("random", random_gnm(400, 2000, 1..=100, 1)),
        ("road", grid_road(20, 20, 2)),
        ("social", power_law(400, 4, 1..=100, 3)),
        ("path", path_graph(200, 7)),
        ("star", star_graph(200, 3)),
        ("buckets", bucket_chain(20, 8, 5)),
    ];
    for (name, g) in &graphs {
        let want = dijkstra(g, 0).dist;
        assert_eq!(bellman_ford(g, 0), want, "{name}: bellman-ford");
        assert_eq!(
            delta_stepping(g, 0, 50).dist,
            want,
            "{name}: delta-stepping"
        );

        let s = relaxed_sssp_seq(g, 0, &mut Exact(IndexedBinaryHeap::new()));
        assert_eq!(s.dist, want, "{name}: exact queue");
        let s = relaxed_sssp_seq(g, 0, &mut SimMultiQueue::keyed(16, 4));
        assert_eq!(s.dist, want, "{name}: sim multiqueue");
        let s = relaxed_sssp_seq(g, 0, &mut RotatingKQueue::new(12));
        assert_eq!(s.dist, want, "{name}: rotating-k");
        let s = relaxed_sssp_seq(g, 0, &mut SprayList::new(8, 5));
        assert_eq!(s.dist, want, "{name}: spraylist");
        let s = relaxed_sssp_seq(
            g,
            0,
            &mut AdversarialScheduler::new(10, AdversaryStrategy::MaxRank),
        );
        assert_eq!(s.dist, want, "{name}: adversarial");

        let s = parallel_sssp(
            g,
            0,
            ParSsspConfig {
                threads: 4,
                queue_multiplier: 2,
                seed: 6,
            },
        );
        assert_eq!(s.dist, want, "{name}: concurrent multiqueue");
        let s = parallel_sssp_duplicates(
            g,
            0,
            ParSsspConfig {
                threads: 4,
                queue_multiplier: 2,
                seed: 7,
            },
        );
        assert_eq!(s.dist, want, "{name}: concurrent duplicates");
    }
}

/// The three incremental algorithms produce scheduler-independent results
/// under dependency-respecting relaxed execution.
#[test]
fn incremental_algorithms_are_deterministic_under_relaxation() {
    // Sorting.
    let n = 800;
    for seed in 0..3u64 {
        let mut alg = BstSort::random(n, 42);
        run_relaxed(&mut alg, &mut SimMultiQueue::new(16, seed));
        assert_eq!(alg.in_order_keys(), (0..n as u64).collect::<Vec<_>>());
    }
    // Delaunay: mesh size and validity are order-independent.
    let pts = random_points(300, 1 << 14, 9);
    let mut exact = DelaunayIncremental::from_points(pts.clone());
    run_exact(&mut exact);
    for seed in 0..2u64 {
        let mut relaxed = DelaunayIncremental::from_points(pts.clone());
        run_relaxed(&mut relaxed, &mut SimMultiQueue::new(8, seed));
        let st = relaxed.state();
        st.check_invariants();
        st.mesh().check_delaunay(st.inserted_flags());
        assert_eq!(st.mesh().num_alive(), exact.state().mesh().num_alive());
    }
    // MIS / coloring equal the sequential reference exactly.
    let g = random_gnm(300, 1200, 1..=10, 5);
    let mut mis = GreedyMis::new(&g, 8);
    run_relaxed(&mut mis, &mut SimMultiQueue::new(8, 1));
    let mut mis2 = GreedyMis::new(&g, 8);
    run_exact(&mut mis2);
    assert_eq!(mis.independent_set(), mis2.independent_set());
}

/// The transactional model with the real BST dependency oracle: everything
/// commits, and the abort count stays inside the Theorem 4.3 envelope.
#[test]
fn transactional_bst_sort_within_thm43() {
    let n = 2000;
    let alg = BstSort::random(n, 11);
    let cfg = TxConfig {
        k: 8,
        duration: 4,
        strategy: TxStrategy::Random,
        seed: 5,
    };
    let stats = run_transactional(n, |i, j| alg.depends(i, j), cfg);
    assert_eq!(stats.commits, n as u64);
    let bound = rsched_core::theory::thm43_aborts(cfg.k, stats.max_contention, n);
    assert!(
        (stats.aborts as f64) < bound,
        "aborts {} outside Theorem 4.3 envelope {bound}",
        stats.aborts
    );
}

/// End-to-end instrumentation: wrap the MultiQueue in a RankTracker during
/// a full SSSP run and sanity-check the measured relaxation.
#[test]
fn instrumented_sssp_measures_sane_ranks() {
    let g = grid_road(16, 16, 3);
    let mut q = RankTracker::new(SimMultiQueue::keyed(8, 2));
    let stats = relaxed_sssp_seq(&g, 0, &mut q);
    assert_eq!(stats.dist, dijkstra(&g, 0).dist);
    let rs = q.stats();
    assert!(rs.peeks > 0);
    assert!(rs.mean_rank() >= 1.0);
    // Two-choice over 8 queues: ranks concentrate near the front.
    assert!(
        rs.rank_quantile(0.5) <= 8,
        "median rank {}",
        rs.rank_quantile(0.5)
    );
}

/// The generated graph families have the structural properties the paper's
/// explanation of Figure 1 rests on.
#[test]
fn graph_families_match_paper_shape() {
    let road = grid_road(40, 40, 1);
    let social = power_law(1600, 6, 1..=100, 1);
    let random = random_gnm(1600, 16_000, 1..=100, 1);
    let d_road = analysis::hop_diameter_estimate(&road, 2);
    let d_social = analysis::hop_diameter_estimate(&social, 2);
    let d_random = analysis::hop_diameter_estimate(&random, 2);
    assert!(
        d_road > 4 * d_social.max(d_random),
        "road diameter {d_road} must dwarf social {d_social} / random {d_random}"
    );
    let (_, _, cv_road) = analysis::weight_stats(&road).unwrap();
    let (_, _, cv_random) = analysis::weight_stats(&random).unwrap();
    assert!(cv_road > cv_random, "road weight variance must be higher");
}

/// Workspace-level wiring: the umbrella prelude exposes a working surface.
#[test]
fn prelude_surface_works() {
    let g = random_gnm(100, 400, 1..=100, 0);
    let exact = dijkstra(&g, 0);
    let par = parallel_sssp(&g, 0, ParSsspConfig::default());
    assert_eq!(exact.dist, par.dist);
    let mut alg = BstSort::random(50, 0);
    let stats = run_relaxed(&mut alg, &mut RotatingKQueue::new(3));
    assert_eq!(stats.processed, 50);
}
