//! Concurrency stress tests: many threads, contended structures, repeated
//! seeds. These are the tests that would catch termination-detection races,
//! lost elements under try_lock retries, and memory-ordering bugs in the
//! atomic relaxation loops.

use relaxed_schedulers::prelude::*;
use rsched_algos::concurrent::{ConcurrentBstSort, ConcurrentMis};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Producer/consumer storm on the concurrent MultiQueue: heavy oversubscription,
/// mixed push_or_decrease / pop, then exhaustive accounting.
///
/// Conservation here is a *multiset* law, not a no-duplicates law: a
/// `push_or_decrease` that races with a pop of the same item legitimately
/// re-inserts it (that is exactly the semantics concurrent SSSP relies on),
/// so an item may be popped once per successful insertion. The queue is
/// correct iff, once quiescent and drained, every item's pop count equals
/// its successful-insert count (`push_or_decrease` returning `true`).
#[test]
fn multiqueue_storm_conserves_elements() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let threads = 8;
    let per = 3000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(ConcurrentMultiQueue::new(6));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 * 31 + 1);
                let mut inserts: Vec<usize> = Vec::new();
                let mut pops: Vec<usize> = Vec::new();
                for i in 0..per {
                    let item = t * per + i;
                    if q.push_or_decrease(item, rng.gen_range(100..1_000_000)) {
                        inserts.push(item);
                    }
                    // Decrease some of our own items; if the item was popped
                    // in the meantime this re-inserts it.
                    if i % 7 == 0 && q.push_or_decrease(item, 50) {
                        inserts.push(item);
                    }
                    if i % 3 == 0 {
                        if let Some((it, _)) = q.pop(&mut rng) {
                            pops.push(it);
                        }
                    }
                }
                (inserts, pops)
            })
        })
        .collect();
    let mut inserted: std::collections::HashMap<usize, i64> = Default::default();
    let mut popped: std::collections::HashMap<usize, i64> = Default::default();
    for h in handles {
        let (inserts, pops) = h.join().unwrap();
        for it in inserts {
            *inserted.entry(it).or_default() += 1;
        }
        for it in pops {
            *popped.entry(it).or_default() += 1;
        }
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    while let Some((it, _)) = q.pop(&mut rng) {
        *popped.entry(it).or_default() += 1;
    }
    assert!(q.is_empty());
    // Every item was inserted at least once; each insertion was popped
    // exactly once; nothing was popped that was not inserted.
    assert_eq!(inserted.len(), threads * per, "items never inserted");
    assert_eq!(
        popped, inserted,
        "pop multiset differs from insert multiset"
    );
}

/// Sticky sessions from many threads still conserve elements.
#[test]
fn sticky_sessions_under_contention() {
    let threads = 6;
    let per = 2000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(ConcurrentMultiQueue::new(4));
    for i in 0..threads * per {
        q.push_or_decrease(i, (i as u64 * 17) % 100_000);
    }
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut session = q.sticky_session(8, t as u64);
                let mut got = Vec::new();
                for _ in 0..per {
                    if let Some((it, _)) = session.pop() {
                        got.push(it);
                    }
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    let mut total = 0usize;
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate sticky pop of {it}");
            total += 1;
        }
    }
    // Drain the remainder.
    let mut session = q.sticky_session(4, 999);
    while let Some((it, _)) = session.pop() {
        assert!(seen.insert(it));
        total += 1;
    }
    assert_eq!(total, threads * per);
}

/// Concurrent SSSP is exact across seeds, thread counts and schedulers on a
/// road-like graph (the workload with the longest relaxation chains).
#[test]
fn parallel_sssp_exactness_matrix() {
    let g = grid_road(28, 28, 17);
    let want = dijkstra(&g, 0).dist;
    for threads in [2usize, 4, 8] {
        for seed in 0..3u64 {
            let cfg = ParSsspConfig {
                threads,
                queue_multiplier: 2,
                seed,
            };
            assert_eq!(
                parallel_sssp(&g, 0, cfg).dist,
                want,
                "mq t{threads} s{seed}"
            );
            assert_eq!(
                parallel_sssp_duplicates(&g, 0, cfg).dist,
                want,
                "dup t{threads} s{seed}"
            );
            assert_eq!(
                parallel_sssp_spraylist(&g, 0, cfg).dist,
                want,
                "spray t{threads} s{seed}"
            );
        }
    }
}

/// The concurrent iterative executor never double-processes and always
/// terminates, across thread counts, on the worst (chain) dependency shape.
#[test]
fn concurrent_executor_chain_matrix() {
    for threads in [2usize, 4, 8] {
        for seed in 0..2u64 {
            let alg = ConcurrentBstSort::random(3000, seed);
            let stats = run_relaxed_parallel(&alg, threads, 2, seed);
            assert_eq!(stats.processed, 3000, "t{threads} s{seed}");
            assert_eq!(
                alg.in_order_keys(),
                (0..3000u64).collect::<Vec<_>>(),
                "t{threads} s{seed}"
            );
        }
    }
}

/// Determinism under contention: concurrent MIS equals the sequential
/// reference on a denser graph with many inter-thread dependencies.
#[test]
fn concurrent_mis_determinism_under_contention() {
    let g = random_gnm(2000, 20_000, 1..=10, 5);
    for seed in 0..3u64 {
        let alg = ConcurrentMis::new(&g, 77);
        run_relaxed_parallel(&alg, 8, 2, seed);
        let want = rsched_algos::GreedyMis::sequential_reference(&g, alg.permutation());
        let got: Vec<bool> = {
            let set: HashSet<usize> = alg.independent_set().into_iter().collect();
            (0..g.num_vertices()).map(|v| set.contains(&v)).collect()
        };
        assert_eq!(got, want, "seed {seed}");
    }
}

/// Producer/consumer storm on the concurrent d-CBO relaxed FIFO: heavy
/// oversubscription, mixed enqueue/dequeue, then exhaustive accounting —
/// the queue must never lose or duplicate an item.
#[test]
fn dcbo_storm_conserves_elements() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let threads = 8;
    let per = 20_000usize;
    let q: Arc<DCboQueue<usize>> = Arc::new(DCboQueue::new(6, 13));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 * 71 + 3);
                let mut got: Vec<usize> = Vec::new();
                for i in 0..per {
                    q.enqueue(t * per + i, &mut rng);
                    if i % 3 == 0 {
                        if let Some(v) = q.dequeue(&mut rng) {
                            got.push(v);
                        }
                    }
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    for h in handles {
        for v in h.join().unwrap() {
            assert!(seen.insert(v), "duplicate dequeue of {v}");
        }
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    while let Some(v) = q.dequeue(&mut rng) {
        assert!(seen.insert(v), "duplicate dequeue of {v}");
    }
    assert_eq!(seen.len(), threads * per, "elements lost");
    assert!(q.is_empty());
}

/// The runtime driving a d-CBO frontier under oversubscription: dynamic
/// task creation, many threads, repeated seeds — every spawned task must
/// execute exactly once and termination detection must fire exactly at
/// quiescence.
#[test]
fn runtime_dcbo_executes_every_task_once() {
    use std::sync::atomic::AtomicU32;
    for seed in 0..3u64 {
        let n = 5_000usize;
        let children = 3u64;
        let queue: DCboQueue<(usize, u64)> = DCboQueue::new(16, seed);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = run_pool(
            &queue,
            RuntimeConfig { threads: 8, seed },
            (0..n / 10).map(|i| (i * 10, children)),
            |w, item, depth| {
                hits[item].fetch_add(1, Ordering::AcqRel);
                if depth > 0 && item + 1 < n {
                    w.spawn(item + 1, depth - 1);
                }
                TaskOutcome::Executed
            },
        );
        // Tasks form chains of length ≤ children+1 starting at multiples
        // of 10; every execution is accounted and nothing runs twice
        // unless spawned twice (chains overlap only via distinct spawns).
        let total: u64 = hits.iter().map(|h| h.load(Ordering::Acquire) as u64).sum();
        assert_eq!(stats.total.executed, total, "seed {seed}");
        assert_eq!(
            stats.total.executed,
            (n as u64 / 10) * (children + 1),
            "seed {seed}"
        );
        assert_eq!(stats.total.pops, stats.total.executed, "seed {seed}");
    }
}

/// ConcurrentSprayList under pop-only contention after a big fill.
#[test]
fn concurrent_spraylist_drain_storm() {
    let q: Arc<ConcurrentSprayList<u64>> = Arc::new(ConcurrentSprayList::new(4, 8, 3));
    let n = 20_000usize;
    for i in 0..n {
        q.insert(i, (i as u64 * 13) % 50_000);
    }
    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                let mut got = Vec::new();
                while let Some((it, _)) = q.pop(&mut rng) {
                    got.push(it);
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate {it}");
        }
    }
    assert_eq!(seen.len(), n);
}
