//! Concurrency stress tests: many threads, contended structures, repeated
//! seeds. These are the tests that would catch termination-detection races,
//! lost elements under try_lock retries, and memory-ordering bugs in the
//! atomic relaxation loops.

use relaxed_schedulers::prelude::*;
use rsched_algos::concurrent::{ConcurrentBstSort, ConcurrentMis};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Producer/consumer storm on the concurrent MultiQueue: heavy oversubscription,
/// mixed push_or_decrease / pop / remove, then exhaustive accounting.
#[test]
fn multiqueue_storm_conserves_elements() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let threads = 8;
    let per = 3000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(ConcurrentMultiQueue::new(6));
    let popped_sum = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            let popped_sum = Arc::clone(&popped_sum);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 * 31 + 1);
                let mut local: Vec<usize> = Vec::new();
                for i in 0..per {
                    let item = t * per + i;
                    q.push_or_decrease(item, rng.gen_range(100..1_000_000));
                    // Decrease some of our own items.
                    if i % 7 == 0 {
                        q.push_or_decrease(item, 50);
                    }
                    if i % 3 == 0 {
                        if let Some((it, _)) = q.pop(&mut rng) {
                            local.push(it);
                        }
                    }
                }
                popped_sum.fetch_add(local.len() as u64, Ordering::AcqRel);
                local
            })
        })
        .collect();
    let mut seen = HashSet::new();
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate pop of {it}");
        }
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    while let Some((it, _)) = q.pop(&mut rng) {
        assert!(seen.insert(it), "duplicate pop of {it}");
    }
    assert_eq!(seen.len(), threads * per, "elements lost");
    assert!(q.is_empty());
}

/// Sticky sessions from many threads still conserve elements.
#[test]
fn sticky_sessions_under_contention() {
    let threads = 6;
    let per = 2000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(ConcurrentMultiQueue::new(4));
    for i in 0..threads * per {
        q.push_or_decrease(i, (i as u64 * 17) % 100_000);
    }
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut session = q.sticky_session(8, t as u64);
                let mut got = Vec::new();
                for _ in 0..per {
                    if let Some((it, _)) = session.pop() {
                        got.push(it);
                    }
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    let mut total = 0usize;
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate sticky pop of {it}");
            total += 1;
        }
    }
    // Drain the remainder.
    let mut session = q.sticky_session(4, 999);
    while let Some((it, _)) = session.pop() {
        assert!(seen.insert(it));
        total += 1;
    }
    assert_eq!(total, threads * per);
}

/// Concurrent SSSP is exact across seeds, thread counts and schedulers on a
/// road-like graph (the workload with the longest relaxation chains).
#[test]
fn parallel_sssp_exactness_matrix() {
    let g = grid_road(28, 28, 17);
    let want = dijkstra(&g, 0).dist;
    for threads in [2usize, 4, 8] {
        for seed in 0..3u64 {
            let cfg = ParSsspConfig {
                threads,
                queue_multiplier: 2,
                seed,
            };
            assert_eq!(parallel_sssp(&g, 0, cfg).dist, want, "mq t{threads} s{seed}");
            assert_eq!(
                parallel_sssp_duplicates(&g, 0, cfg).dist,
                want,
                "dup t{threads} s{seed}"
            );
            assert_eq!(
                parallel_sssp_spraylist(&g, 0, cfg).dist,
                want,
                "spray t{threads} s{seed}"
            );
        }
    }
}

/// The concurrent iterative executor never double-processes and always
/// terminates, across thread counts, on the worst (chain) dependency shape.
#[test]
fn concurrent_executor_chain_matrix() {
    for threads in [2usize, 4, 8] {
        for seed in 0..2u64 {
            let alg = ConcurrentBstSort::random(3000, seed);
            let stats = run_relaxed_parallel(&alg, threads, 2, seed);
            assert_eq!(stats.processed, 3000, "t{threads} s{seed}");
            assert_eq!(
                alg.in_order_keys(),
                (0..3000u64).collect::<Vec<_>>(),
                "t{threads} s{seed}"
            );
        }
    }
}

/// Determinism under contention: concurrent MIS equals the sequential
/// reference on a denser graph with many inter-thread dependencies.
#[test]
fn concurrent_mis_determinism_under_contention() {
    let g = random_gnm(2000, 20_000, 1..=10, 5);
    for seed in 0..3u64 {
        let alg = ConcurrentMis::new(&g, 77);
        run_relaxed_parallel(&alg, 8, 2, seed);
        let want = rsched_algos::GreedyMis::sequential_reference(&g, alg.permutation());
        let got: Vec<bool> = {
            let set: HashSet<usize> = alg.independent_set().into_iter().collect();
            (0..g.num_vertices()).map(|v| set.contains(&v)).collect()
        };
        assert_eq!(got, want, "seed {seed}");
    }
}

/// ConcurrentSprayList under pop-only contention after a big fill.
#[test]
fn concurrent_spraylist_drain_storm() {
    let q: Arc<ConcurrentSprayList<u64>> = Arc::new(ConcurrentSprayList::new(4, 8, 3));
    let n = 20_000usize;
    for i in 0..n {
        q.insert(i, (i as u64 * 13) % 50_000);
    }
    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                let mut got = Vec::new();
                while let Some((it, _)) = q.pop(&mut rng) {
                    got.push(it);
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate {it}");
        }
    }
    assert_eq!(seen.len(), n);
}
