//! Concurrency stress tests: many threads, contended structures, repeated
//! seeds. These are the tests that would catch termination-detection races,
//! lost elements under try_lock retries, and memory-ordering bugs in the
//! atomic relaxation loops.

use relaxed_schedulers::prelude::*;
use rsched_algos::concurrent::{ConcurrentBstSort, ConcurrentMis};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Iteration/thread multiplier for the heavy tests. Defaults to 1 for
/// developer runs; the CI stress job sets `RSCHED_STRESS` to raise it
/// (any value >= 1; `RSCHED_STRESS=2` roughly quadruples the work).
fn stress() -> usize {
    match std::env::var("RSCHED_STRESS").as_deref() {
        Ok("0") | Err(_) => 1,
        Ok(v) => v.parse::<usize>().unwrap_or(1).clamp(1, 64) * 2,
    }
}

/// Producer/consumer storm on the concurrent MultiQueue: heavy oversubscription,
/// mixed push_or_decrease / pop, then exhaustive accounting.
///
/// Conservation here is a *multiset* law, not a no-duplicates law: a
/// `push_or_decrease` that races with a pop of the same item legitimately
/// re-inserts it (that is exactly the semantics concurrent SSSP relies on),
/// so an item may be popped once per successful insertion. The queue is
/// correct iff, once quiescent and drained, every item's pop count equals
/// its successful-insert count (`push_or_decrease` returning `true`).
#[test]
fn multiqueue_storm_conserves_elements() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let threads = 8;
    let per = 3000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(QueueBuilder::new(6).multiqueue());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 * 31 + 1);
                let mut inserts: Vec<usize> = Vec::new();
                let mut pops: Vec<usize> = Vec::new();
                for i in 0..per {
                    let item = t * per + i;
                    if q.push_or_decrease(item, rng.gen_range(100..1_000_000)) {
                        inserts.push(item);
                    }
                    // Decrease some of our own items; if the item was popped
                    // in the meantime this re-inserts it.
                    if i % 7 == 0 && q.push_or_decrease(item, 50) {
                        inserts.push(item);
                    }
                    if i % 3 == 0 {
                        if let Some((it, _)) = q.pop(&mut rng) {
                            pops.push(it);
                        }
                    }
                }
                (inserts, pops)
            })
        })
        .collect();
    let mut inserted: std::collections::HashMap<usize, i64> = Default::default();
    let mut popped: std::collections::HashMap<usize, i64> = Default::default();
    for h in handles {
        let (inserts, pops) = h.join().unwrap();
        for it in inserts {
            *inserted.entry(it).or_default() += 1;
        }
        for it in pops {
            *popped.entry(it).or_default() += 1;
        }
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    while let Some((it, _)) = q.pop(&mut rng) {
        *popped.entry(it).or_default() += 1;
    }
    assert!(q.is_empty());
    // Every item was inserted at least once; each insertion was popped
    // exactly once; nothing was popped that was not inserted.
    assert_eq!(inserted.len(), threads * per, "items never inserted");
    assert_eq!(
        popped, inserted,
        "pop multiset differs from insert multiset"
    );
}

/// Sticky-peek-cache sessions from many threads still conserve elements.
#[test]
fn sticky_sessions_under_contention() {
    let threads = 6;
    let per = 2000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(QueueBuilder::new(4).multiqueue());
    for i in 0..threads * per {
        q.push_or_decrease(i, (i as u64 * 17) % 100_000);
    }
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut session = q.session(&SessionConfig {
                    stickiness: 8,
                    ..SessionConfig::for_worker(t, threads)
                });
                let mut got = Vec::new();
                for _ in 0..per {
                    if let Some(((it, _), _)) = q.pop_session(&mut session) {
                        got.push(it);
                    }
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    let mut total = 0usize;
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate sticky pop of {it}");
            total += 1;
        }
    }
    // Drain the remainder.
    let mut session = q.session(&SessionConfig {
        stickiness: 4,
        ..SessionConfig::unaffine(999)
    });
    while let Some(((it, _), _)) = q.pop_session(&mut session) {
        assert!(seen.insert(it));
        total += 1;
    }
    assert_eq!(total, threads * per);
}

/// Concurrent SSSP is exact across seeds, thread counts and schedulers on a
/// road-like graph (the workload with the longest relaxation chains).
#[test]
fn parallel_sssp_exactness_matrix() {
    let g = grid_road(28, 28, 17);
    let want = dijkstra(&g, 0).dist;
    for threads in [2usize, 4, 8] {
        for seed in 0..3u64 {
            let cfg = ParSsspConfig {
                threads,
                queue_multiplier: 2,
                seed,
            };
            assert_eq!(
                parallel_sssp(&g, 0, cfg).dist,
                want,
                "mq t{threads} s{seed}"
            );
            assert_eq!(
                parallel_sssp_duplicates(&g, 0, cfg).dist,
                want,
                "dup t{threads} s{seed}"
            );
            assert_eq!(
                parallel_sssp_spraylist(&g, 0, cfg).dist,
                want,
                "spray t{threads} s{seed}"
            );
        }
    }
}

/// The concurrent iterative executor never double-processes and always
/// terminates, across thread counts, on the worst (chain) dependency shape.
#[test]
fn concurrent_executor_chain_matrix() {
    for threads in [2usize, 4, 8] {
        for seed in 0..2u64 {
            let alg = ConcurrentBstSort::random(3000, seed);
            let stats = run_relaxed_parallel(&alg, threads, 2, seed);
            assert_eq!(stats.processed, 3000, "t{threads} s{seed}");
            assert_eq!(
                alg.in_order_keys(),
                (0..3000u64).collect::<Vec<_>>(),
                "t{threads} s{seed}"
            );
        }
    }
}

/// Determinism under contention: concurrent MIS equals the sequential
/// reference on a denser graph with many inter-thread dependencies.
#[test]
fn concurrent_mis_determinism_under_contention() {
    let g = random_gnm(2000, 20_000, 1..=10, 5);
    for seed in 0..3u64 {
        let alg = ConcurrentMis::new(&g, 77);
        run_relaxed_parallel(&alg, 8, 2, seed);
        let want = rsched_algos::GreedyMis::sequential_reference(&g, alg.permutation());
        let got: Vec<bool> = {
            let set: HashSet<usize> = alg.independent_set().into_iter().collect();
            (0..g.num_vertices()).map(|v| set.contains(&v)).collect()
        };
        assert_eq!(got, want, "seed {seed}");
    }
}

/// Producer/consumer storm on the concurrent d-CBO relaxed FIFO: heavy
/// oversubscription, mixed enqueue/dequeue, then exhaustive accounting —
/// the queue must never lose or duplicate an item.
#[test]
fn dcbo_storm_conserves_elements() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let threads = 4 * stress();
    let per = 10_000 * stress();
    let q: Arc<DCboQueue<usize>> = Arc::new(QueueBuilder::new(6).seed(13).d_cbo());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 * 71 + 3);
                let mut got: Vec<usize> = Vec::new();
                for i in 0..per {
                    q.enqueue(t * per + i, &mut rng);
                    if i % 3 == 0 {
                        if let Some(v) = q.dequeue(&mut rng) {
                            got.push(v);
                        }
                    }
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    for h in handles {
        for v in h.join().unwrap() {
            assert!(seen.insert(v), "duplicate dequeue of {v}");
        }
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    while let Some(v) = q.dequeue(&mut rng) {
        assert!(seen.insert(v), "duplicate dequeue of {v}");
    }
    assert_eq!(seen.len(), threads * per, "elements lost");
    assert!(q.is_empty());
}

/// The runtime driving a d-CBO frontier under oversubscription: dynamic
/// task creation, many threads, repeated seeds — every spawned task must
/// execute exactly once and termination detection must fire exactly at
/// quiescence.
#[test]
fn runtime_dcbo_executes_every_task_once() {
    use std::sync::atomic::AtomicU32;
    for seed in 0..3u64 {
        let n = 5_000usize;
        let children = 3u64;
        let queue: DCboQueue<(usize, u64)> = QueueBuilder::new(16).seed(seed).d_cbo();
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = run_pool(
            &queue,
            RuntimeConfig {
                threads: 8,
                seed,
                ..RuntimeConfig::default()
            },
            (0..n / 10).map(|i| (i * 10, children)),
            |w, item, depth| {
                hits[item].fetch_add(1, Ordering::AcqRel);
                if depth > 0 && item + 1 < n {
                    w.spawn(item + 1, depth - 1);
                }
                TaskOutcome::Executed
            },
        );
        // Tasks form chains of length ≤ children+1 starting at multiples
        // of 10; every execution is accounted and nothing runs twice
        // unless spawned twice (chains overlap only via distinct spawns).
        let total: u64 = hits.iter().map(|h| h.load(Ordering::Acquire) as u64).sum();
        assert_eq!(stats.total.executed, total, "seed {seed}");
        assert_eq!(
            stats.total.executed,
            (n as u64 / 10) * (children + 1),
            "seed {seed}"
        );
        assert_eq!(stats.total.pops, stats.total.executed, "seed {seed}");
    }
}

/// ConcurrentSprayList under pop-only contention after a big fill.
#[test]
fn concurrent_spraylist_drain_storm() {
    let q: Arc<ConcurrentSprayList<u64>> = Arc::new(ConcurrentSprayList::new(4, 8, 3));
    let n = 20_000usize;
    for i in 0..n {
        q.insert(i, (i as u64 * 13) % 50_000);
    }
    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                let mut got = Vec::new();
                while let Some((it, _)) = q.pop(&mut rng) {
                    got.push(it);
                }
                got
            })
        })
        .collect();
    let mut seen = HashSet::new();
    for h in handles {
        for it in h.join().unwrap() {
            assert!(seen.insert(it), "duplicate {it}");
        }
    }
    assert_eq!(seen.len(), n);
}

/// The full backend matrix {mutex, MS, segring} x {d-RA, d-CBO} under a
/// concurrent enqueue/dequeue storm: no element may be lost or
/// duplicated regardless of the shard sub-queue implementation.
#[test]
fn relaxed_fifo_backend_matrix_storm() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rsched_queues::lockfree::{MsQueue, SegRingQueue};
    use rsched_queues::{MutexSub, SubFifo};

    fn storm_pair<S: SubFifo<usize> + 'static>(name: &str) {
        let threads = 4 * stress();
        let per = 4_000 * stress();
        let dra: Arc<DRaQueue<usize, S>> = Arc::new(QueueBuilder::new(6).seed(13).d_ra_on());
        let dcbo: Arc<DCboQueue<usize, S>> = Arc::new(QueueBuilder::new(6).seed(13).d_cbo_on());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let dra = Arc::clone(&dra);
                let dcbo = Arc::clone(&dcbo);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 * 91 + 5);
                    let mut got = Vec::new();
                    for i in 0..per {
                        dra.enqueue(2 * (t * per + i), &mut rng);
                        dcbo.enqueue(2 * (t * per + i) + 1, &mut rng);
                        if i % 3 == 0 {
                            if let Some(v) = dra.dequeue(&mut rng) {
                                got.push(v);
                            }
                            if let Some(v) = dcbo.dequeue(&mut rng) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "{name}: duplicate {v}");
            }
        }
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some(v) = dra.dequeue(&mut rng) {
            assert!(seen.insert(v), "{name}: duplicate {v}");
        }
        while let Some(v) = dcbo.dequeue(&mut rng) {
            assert!(seen.insert(v), "{name}: duplicate {v}");
        }
        assert_eq!(seen.len(), 2 * threads * per, "{name}: elements lost");
        assert!(dra.is_empty() && dcbo.is_empty());
    }

    storm_pair::<MutexSub<usize>>("mutex");
    storm_pair::<MsQueue<usize>>("ms");
    storm_pair::<SegRingQueue<usize>>("segring");
}

/// The priority-shard backend matrix {skiplist, mutexheap} under a
/// **batched-session** conservation storm: every push flows through an
/// [`MqSession`] with a spawn buffer (and the sticky peek cache on the
/// pop side), finishing with a forced flush at quiescence. Flush reports
/// carry merge *counts*, not identities, so the law here is count
/// conservation — net inserts (session outcomes, flush merges
/// retracted) must equal pops plus drain — plus full coverage: every
/// item must surface at least once. The raw-op multiset law is still
/// checked by `multiqueue_storm_conserves_elements` above.
#[test]
fn multiqueue_backend_matrix_storm() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rsched_queues::{MutexHeapSub, SkipShard, SubPriority};

    fn storm<S: SubPriority<u64> + 'static>(name: &str) {
        let threads = 4 * stress();
        let per = 2_500 * stress();
        let q: Arc<ConcurrentMultiQueue<u64, S>> = Arc::new(QueueBuilder::new(6).multiqueue_on());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64 * 37 + 2);
                    let mut session = q.session(&SessionConfig {
                        spawn_batch: 8,
                        stickiness: 4,
                        ..SessionConfig::for_worker(t, threads)
                    });
                    // Parked pushes are presumed net-new; flush reports
                    // retract the ones that merged — the one-place rule
                    // is PushOutcome::net_new.
                    let mut net_inserts = 0i64;
                    let mut pops: Vec<usize> = Vec::new();
                    for i in 0..per {
                        let item = t * per + i;
                        net_inserts += q
                            .push_session(item, rng.gen_range(100..1_000_000), &mut session)
                            .net_new();
                        if i % 7 == 0 {
                            // Decrease of our own item: usually merges in
                            // the buffer; if already published and popped,
                            // legitimately re-inserts.
                            net_inserts += q.push_session(item, 50, &mut session).net_new();
                        }
                        if i % 3 == 0 {
                            if let Some(((it, _), _)) = q.pop_session(&mut session) {
                                pops.push(it);
                            }
                        }
                    }
                    // Forced flush at quiescence: parked spawns publish
                    // and their merges retract.
                    let rep = q.flush_session(&mut session);
                    net_inserts -= rep.merged as i64;
                    assert_eq!(session.buffered(), 0, "flush left parked items");
                    (net_inserts, pops)
                })
            })
            .collect();
        let mut net_inserted = 0i64;
        let mut seen: std::collections::HashSet<usize> = Default::default();
        let mut total_pops = 0i64;
        for h in handles {
            let (net, pops) = h.join().unwrap();
            net_inserted += net;
            for it in pops {
                seen.insert(it);
                total_pops += 1;
            }
        }
        let mut rng = SmallRng::seed_from_u64(0);
        while let Some((it, _)) = q.pop(&mut rng) {
            seen.insert(it);
            total_pops += 1;
        }
        assert!(q.is_empty(), "{name}: queue not drained");
        assert_eq!(
            net_inserted, total_pops,
            "{name}: net session inserts differ from pops + drain"
        );
        assert_eq!(
            seen.len(),
            threads * per,
            "{name}: some items never surfaced"
        );
    }

    storm::<SkipShard<u64>>("skiplist");
    storm::<MutexHeapSub<u64>>("mutexheap");
}

/// Rank-error envelope of the **skiplist-backed MultiQueue** under real
/// contention, measured by the timestamp-based concurrent estimator:
/// priorities are the enqueue tickets themselves, so priority order
/// coincides with arrival order and the estimator's FIFO rank error *is*
/// the MultiQueue's priority rank error. The mean must stay within a
/// generous multiple of the nominal `O(q log q)` relaxation factor
/// scaled by the thread count (in-flight operations add slack).
#[test]
fn skiplist_multiqueue_estimator_envelope() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rsched_queues::ConcurrentRankEstimator;

    let nqueues = 8usize;
    let threads = 4 * stress();
    let per = 8_000usize;
    let q: Arc<ConcurrentMultiQueue<u64>> = Arc::new(QueueBuilder::new(nqueues).multiqueue());
    let est = ConcurrentRankEstimator::new();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut rec = est.recorder();
            let q = Arc::clone(&q);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 + 9);
                let mut session = q.session(&SessionConfig {
                    stickiness: 4,
                    ..SessionConfig::for_worker(t, threads)
                });
                for _ in 0..per {
                    if rng.gen_bool(0.5) {
                        let stamp = rec.stamp_enqueue();
                        // Ticket as item id (unique) *and* priority:
                        // priority order == arrival order.
                        q.push_session(stamp as usize, stamp, &mut session);
                    } else if let Some(((_, stamp), _)) = q.pop_session(&mut session) {
                        rec.record_dequeue(stamp);
                    }
                }
            });
        }
    });
    let stats = est.into_stats();
    assert!(stats.dequeues > 0, "no dequeues measured");
    let envelope = 8.0 * (q.relaxation_factor() * threads) as f64;
    assert!(
        stats.mean_error() <= envelope,
        "skiplist MultiQueue mean estimated rank error {} beyond envelope {envelope}",
        stats.mean_error()
    );
}

/// Rank-error envelope under *real* contention, measured by the
/// timestamp-based concurrent estimator: the mean estimated error of a
/// d-CBO stays within a generous multiple of shards x threads (the
/// concurrent analogue of the sequential 2q envelope), and a
/// single-threaded exact-FIFO control measures (near) zero.
#[test]
fn concurrent_estimator_envelope_under_contention() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rsched_queues::ConcurrentRankEstimator;

    // Control: an exact FIFO driven by one thread has zero estimated
    // error — the estimator itself adds none.
    let est = ConcurrentRankEstimator::new();
    {
        let mut rec = est.recorder();
        let mut q = std::collections::VecDeque::new();
        for _ in 0..2_000 {
            q.push_back(rec.stamp_enqueue());
        }
        while let Some(stamp) = q.pop_front() {
            rec.record_dequeue(stamp);
        }
    }
    assert_eq!(est.into_stats().max_error, 0);

    // d-CBO under contention: choice-of-two on operation counters keeps
    // the error envelope near shards x threads even with every thread
    // hammering the queue.
    let shards = 8usize;
    let threads = 4 * stress();
    let per = 8_000usize;
    let q: Arc<DCboQueue<u64>> = Arc::new(QueueBuilder::new(shards).seed(29).d_cbo());
    let est = ConcurrentRankEstimator::new();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut rec = est.recorder();
            let q = Arc::clone(&q);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                for _ in 0..per {
                    if rng.gen_bool(0.5) {
                        q.enqueue(rec.stamp_enqueue(), &mut rng);
                    } else if let Some(stamp) = q.dequeue(&mut rng) {
                        rec.record_dequeue(stamp);
                    }
                }
            });
        }
    });
    let stats = est.into_stats();
    assert!(stats.dequeues > 0, "no dequeues measured");
    let envelope = 8.0 * (shards * threads) as f64;
    assert!(
        stats.mean_error() <= envelope,
        "mean estimated error {} beyond envelope {envelope}",
        stats.mean_error()
    );
}

/// The d-CBO rank-error envelope measured through **worker sessions**
/// with `shards_per_worker = 2` and batched enqueues: locality-first
/// draining and batch publication add relaxation, but choice-of-two
/// stealing must keep the mean estimated error inside the same generous
/// shards × threads envelope as the session-free run above.
#[test]
fn fifo_session_estimator_envelope_two_homes() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rsched_queues::ConcurrentRankEstimator;

    let shards = 8usize;
    let threads = 4 * stress();
    let per = 8_000usize;
    let q: Arc<DCboQueue<u64>> = Arc::new(QueueBuilder::new(shards).seed(31).d_cbo());
    let est = ConcurrentRankEstimator::new();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut rec = est.recorder();
            let q = Arc::clone(&q);
            scope.spawn(move || {
                let mut coin = SmallRng::seed_from_u64(t as u64 + 2);
                let mut session = q.session(&SessionConfig {
                    shards_per_worker: 2,
                    spawn_batch: 4,
                    ..SessionConfig::for_worker(t, threads)
                });
                for _ in 0..per {
                    if coin.gen_bool(0.5) {
                        q.push_session(rec.stamp_enqueue(), &mut session);
                    } else if let Some((stamp, _)) = q.pop_session(&mut session) {
                        rec.record_dequeue(stamp);
                    }
                }
                // Forced flush at quiescence so the drain below sees
                // every stamped enqueue.
                q.flush_session(&mut session);
            });
        }
    });
    // Conservation across the session path: drain what is left and
    // match the estimator's enqueue count against its recorded dequeues.
    let mut drain = q.session(&SessionConfig::unaffine(0));
    let mut left = 0u64;
    while q.pop_session(&mut drain).is_some() {
        left += 1;
    }
    let enqueued = est.enqueues();
    let stats = est.into_stats();
    assert_eq!(
        enqueued,
        stats.dequeues + left,
        "batched session enqueues lost or duplicated"
    );
    assert!(stats.dequeues > 0, "no dequeues measured");
    let envelope = 8.0 * (shards * threads) as f64;
    assert!(
        stats.mean_error() <= envelope,
        "session mean estimated error {} beyond envelope {envelope}",
        stats.mean_error()
    );
}

/// Home-shard/steal accounting through the runtime: with
/// `shards_per_worker` covering every shard exactly once, pops are
/// classified Home or Steal (never Shared), a single worker owning all
/// shards never steals, and the counts always partition the pops.
#[test]
fn runtime_home_shard_steal_accounting() {
    use std::sync::atomic::AtomicU32;

    // 8 workers × 2 home shards = all 16 shards owned.
    let n = 20_000usize;
    let queue: DCboQueue<(usize, u64)> = QueueBuilder::new(16).seed(3).d_cbo();
    let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let stats = run_pool(
        &queue,
        RuntimeConfig {
            threads: 8,
            seed: 11,
            shards_per_worker: 2,
            spawn_batch: 4,
            ..RuntimeConfig::default()
        },
        (0..n / 2).map(|i| (2 * i, 1u64)),
        |w, item, depth| {
            hits[item].fetch_add(1, Ordering::AcqRel);
            if depth > 0 && item + 1 < n {
                w.spawn(item + 1, depth - 1);
            }
            TaskOutcome::Executed
        },
    );
    assert_eq!(stats.total.executed, n as u64, "every task exactly once");
    assert_eq!(
        stats.total.home_hits + stats.total.steals,
        stats.total.pops,
        "full ownership must classify every pop as Home or Steal"
    );
    assert!(stats.total.home_hits > 0, "home shards never hit");
    for h in &hits {
        assert_eq!(h.load(Ordering::Acquire), 1);
    }

    // One worker owning every shard: nothing left to steal from.
    let queue: DCboQueue<(usize, u64)> = QueueBuilder::new(4).seed(5).d_cbo();
    let stats = run_pool(
        &queue,
        RuntimeConfig {
            threads: 1,
            seed: 0,
            shards_per_worker: 4,
            spawn_batch: 8,
            ..RuntimeConfig::default()
        },
        (0..1_000usize).map(|i| (i, 0u64)),
        |_, _, _| TaskOutcome::Executed,
    );
    assert_eq!(stats.total.executed, 1_000);
    assert_eq!(stats.total.steals, 0, "sole owner of all shards stole");
    assert_eq!(stats.total.home_hits, stats.total.pops);
}

/// Batched spawns through the runtime on the **merge-capable**
/// MultiQueue scheduler: duplicate spawns dedup inside the session
/// buffer or merge at flush, every merge retracts its termination
/// announcement, and the pool still quiesces exactly (this test hangs
/// if a flush report ever under- or over-counts). The blocked-chain
/// variant forces the flush-on-pop-miss path: re-queued blocked tasks
/// park in the buffer and must publish before the pool may sleep.
#[test]
fn runtime_batched_spawns_conserve_with_merges() {
    use std::sync::atomic::AtomicBool;

    // Duplicate spawns: each executed task spawns its successor twice
    // (the second is a buffer dedup or a shared merge).
    let n = 4_000usize;
    let queue = QueueBuilder::new(8).universe(n).multiqueue::<u64>();
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let stats = run_pool(
        &queue,
        RuntimeConfig {
            threads: 4,
            seed: 21,
            shards_per_worker: 1,
            spawn_batch: 8,
            ..RuntimeConfig::default()
        },
        [(0usize, 0u64)],
        |w, item, prio| {
            if !done[item].swap(true, Ordering::AcqRel) && item + 1 < n {
                w.spawn(item + 1, prio + 2);
                w.spawn(item + 1, prio + 1);
            }
            TaskOutcome::Executed
        },
    );
    assert!(done.iter().all(|d| d.load(Ordering::Acquire)));
    assert!(
        stats.total.merged > 0,
        "duplicate spawns never merged (buffer dedup broken?)"
    );
    assert_eq!(
        stats.total.pops,
        // Seed + net spawns: every pop consumes one announced element.
        1 + stats.total.spawned,
        "announced elements and pops disagree"
    );

    // Blocked chain under batching: requeues flow through the spawn
    // buffer; termination must wait for the forced flush.
    let n = 300usize;
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let queue = QueueBuilder::new(8).universe(n).multiqueue::<u64>();
    let stats = run_pool(
        &queue,
        RuntimeConfig {
            threads: 4,
            seed: 9,
            shards_per_worker: 1,
            spawn_batch: 4,
            ..RuntimeConfig::default()
        },
        (0..n).map(|i| (i, i as u64)),
        |_, item, _| {
            if item > 0 && !done[item - 1].load(Ordering::Acquire) {
                return TaskOutcome::Blocked;
            }
            let was = done[item].swap(true, Ordering::AcqRel);
            assert!(!was);
            TaskOutcome::Executed
        },
    );
    assert_eq!(stats.total.executed, n as u64);
    assert_eq!(
        stats.total.pops,
        stats.total.executed + stats.total.extra + stats.total.stale
    );
}

/// Producer/consumer storm on the bucketed relaxed-FIFO hybrid: mixed
/// push_or_decrease / pop across many threads, then exhaustive
/// accounting. Conservation is a *count* law here: each
/// `push_or_decrease` returning `true` put one net-new element into some
/// bucket (the same item in two buckets is legitimately two elements —
/// the stale pop the handler tolerates), and after a full drain the pop
/// count must equal the net-insert count exactly.
#[test]
fn bucket_hybrid_storm_conserves_elements() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let threads = 8 * stress().min(4);
    let per = 3000usize;
    let q: Arc<BucketFifoQueue> = Arc::new(QueueBuilder::new(6).delta(64).bucket_fifo());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64 * 31 + 1);
                let (mut inserts, mut pops) = (0u64, 0u64);
                for i in 0..per {
                    let item = (t * per + i) % 1024;
                    if q.push_or_decrease(item, rng.gen_range(0..20_000)) {
                        inserts += 1;
                    }
                    // Decrease some items hard enough to move buckets;
                    // a cross-bucket move inserts a duplicate element.
                    if i % 7 == 0 && q.push_or_decrease(item, rng.gen_range(0..50)) {
                        inserts += 1;
                    }
                    if i % 3 == 0 && q.pop(&mut rng).is_some() {
                        pops += 1;
                    }
                }
                (inserts, pops)
            })
        })
        .collect();
    let (mut inserted, mut popped) = (0u64, 0u64);
    for h in handles {
        let (i, p) = h.join().unwrap();
        inserted += i;
        popped += p;
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
    while q.pop(&mut rng).is_some() {
        popped += 1;
    }
    assert!(q.is_empty());
    assert_eq!(inserted, popped, "bucket storm lost or duplicated elements");
}

/// Session-driven storm on the hybrid: batched spawns (per-bucket
/// grouped flushes with in-buffer merge dedup) across threads, with the
/// runtime's net-insert accounting rule ([`PushOutcome::net_new`] minus
/// explicit flush merges), then a drain that must match exactly.
#[test]
fn bucket_hybrid_batched_sessions_conserve() {
    use rand::Rng;
    let threads = 6;
    let per = 4000usize * stress();
    let q: Arc<BucketFifoQueue> = Arc::new(QueueBuilder::new(8).delta(32).bucket_fifo());
    let net: i64 = std::thread::scope(|s| {
        (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut rng =
                        <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(t as u64 + 9);
                    let mut session = q.session(&SessionConfig {
                        shards_per_worker: 2,
                        spawn_batch: 16,
                        ..SessionConfig::for_worker(t, threads)
                    });
                    let mut net = 0i64;
                    for _ in 0..per {
                        let item = rng.gen_range(0..512usize);
                        let out = q.push_session(item, rng.gen_range(0..8_192u64), &mut session);
                        net += out.net_new();
                        if rng.gen_bool(0.4) && q.pop_session(&mut session).is_some() {
                            net -= 1;
                        }
                    }
                    net -= q.flush_session(&mut session).merged as i64;
                    net
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let mut drain = q.session(&SessionConfig::unaffine(1));
    let mut drained = 0i64;
    while q.pop_session(&mut drain).is_some() {
        drained += 1;
    }
    assert_eq!(net, drained, "session accounting drifted from the drain");
    assert!(q.is_empty());
}

/// The bucket-monotonicity envelope: with well-filled buckets and a
/// pop-only phase, no thread observes its own pops jumping backwards by
/// more than one bucket — a pop from bucket `b + k` while bucket `b` is
/// still non-empty requires `k` independent full-bucket claim failures,
/// which a filled bucket cannot produce. (The outer relaxation bound of
/// the hybrid, measured rather than assumed.)
#[test]
fn bucket_monotonicity_envelope_under_contention() {
    let buckets = 8u64;
    let per_bucket = 1500usize * stress();
    let delta = 100u64;
    let threads = 4;
    let q: Arc<BucketFifoQueue> = Arc::new(QueueBuilder::new(4).delta(delta).bucket_fifo());
    for b in 0..buckets {
        for i in 0..per_bucket {
            let item = (b as usize) * per_bucket + i;
            assert!(q.push_or_decrease(item, b * delta + (i as u64 % delta)));
        }
    }
    let sequences: Vec<Vec<u64>> = std::thread::scope(|s| {
        (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut session = q.session(&SessionConfig::for_worker(t, threads));
                    let mut seq = Vec::new();
                    while let Some(((_, prio), _)) = q.pop_session(&mut session) {
                        seq.push(prio / delta);
                    }
                    seq
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let total: usize = sequences.iter().map(Vec::len).sum();
    assert_eq!(total, (buckets as usize) * per_bucket, "lost elements");
    for (t, seq) in sequences.iter().enumerate() {
        let mut running_max = 0u64;
        let mut backward = 0u64;
        for &b in seq {
            assert!(
                b + 1 >= running_max,
                "thread {t} popped bucket {b} after bucket {running_max}: \
                 outer FIFO envelope exceeded"
            );
            if b < running_max {
                backward += 1;
            }
            running_max = running_max.max(b);
        }
        // Backward pops are races at bucket boundaries, not the common
        // case: they must stay a tiny fraction of the thread's pops.
        assert!(
            backward * 10 <= seq.len() as u64 + 9,
            "thread {t}: {backward} backward pops of {}",
            seq.len()
        );
    }
}

/// The runtime drives the hybrid end to end: dynamic spawning through
/// batched sessions, quiescence termination (no bucket barriers), and
/// exact completion accounting.
#[test]
fn runtime_bucket_hybrid_executes_every_task_once() {
    use std::sync::atomic::AtomicU64;
    let queue: BucketFifoQueue = QueueBuilder::new(6).delta(8).bucket_fifo();
    let executed = AtomicU64::new(0);
    let n = 256usize;
    let depth = 12u64;
    let stats = run_pool(
        &queue,
        RuntimeConfig {
            threads: 8,
            seed: 3,
            shards_per_worker: 2,
            spawn_batch: 8,
            ..RuntimeConfig::default()
        },
        (0..n).map(|i| (i, 0u64)),
        |w, item, prio| {
            executed.fetch_add(1, Ordering::Relaxed);
            // Walk each task forward `depth` buckets, one step per pop;
            // distinct priorities per item so nothing merges.
            if prio < depth * 8 {
                w.spawn(item, prio + 8);
            }
            TaskOutcome::Executed
        },
    );
    assert_eq!(stats.total.executed, n as u64 * (depth + 1));
    assert_eq!(stats.total.executed, executed.load(Ordering::Acquire));
    assert_eq!(stats.total.spawned, n as u64 * depth);
    assert!(stats.total.home_hits + stats.total.steals <= stats.total.pops);
}
