//! Property-based tests over the core invariants of the workspace: queue
//! semantics, scheduler guarantees, algorithm correctness on arbitrary
//! inputs.
//!
//! The environment vendors its dependencies, so instead of the proptest
//! DSL these are seeded random sweeps: each property draws `CASES`
//! independent random instances from a per-case seed and asserts the
//! invariant on every one. Failures print the case seed, which
//! reproduces the instance deterministically.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relaxed_schedulers::prelude::*;

const CASES: u64 = 64;

/// Per-property, per-case generator with a reproducible seed.
fn gen_for(property: &str, case: u64) -> SmallRng {
    let tag: u64 = property.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    SmallRng::seed_from_u64(tag ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Random edge list of up to `max_edges` edges over `n` vertices.
fn random_edges(
    rng: &mut SmallRng,
    n: usize,
    max_edges: usize,
    max_w: u64,
) -> Vec<(usize, usize, Weight)> {
    let m = rng.gen_range(0..=max_edges);
    (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1..max_w),
            )
        })
        .collect()
}

/// Build a small weighted digraph from generated edges.
fn graph_from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(u % n, v % n, w);
    }
    b.build()
}

/// Dijkstra (DecreaseKey heap) equals Bellman–Ford on arbitrary graphs.
#[test]
fn dijkstra_equals_bellman_ford() {
    for case in 0..CASES {
        let mut rng = gen_for("dijkstra_bf", case);
        let n = rng.gen_range(2usize..40);
        let edges = random_edges(&mut rng, 40, 120, 50);
        let g = graph_from_edges(n, &edges);
        assert_eq!(dijkstra(&g, 0).dist, bellman_ford(&g, 0), "case {case}");
    }
}

/// Δ-stepping equals Dijkstra for arbitrary delta.
#[test]
fn delta_stepping_equals_dijkstra() {
    for case in 0..CASES {
        let mut rng = gen_for("delta_stepping", case);
        let n = rng.gen_range(2usize..30);
        let edges = random_edges(&mut rng, 30, 100, 50);
        let delta = rng.gen_range(1u64..100);
        let g = graph_from_edges(n, &edges);
        assert_eq!(
            delta_stepping(&g, 0, delta).dist,
            dijkstra(&g, 0).dist,
            "case {case}"
        );
    }
}

/// The sequential-model relaxed SSSP is exact for any scheduler seed and
/// queue count, on arbitrary graphs.
#[test]
fn relaxed_sssp_exact_on_arbitrary_graphs() {
    for case in 0..CASES {
        let mut rng = gen_for("relaxed_sssp", case);
        let n = rng.gen_range(2usize..30);
        let edges = random_edges(&mut rng, 30, 100, 50);
        let queues = rng.gen_range(1usize..10);
        let seed = rng.gen_range(0u64..1000);
        let g = graph_from_edges(n, &edges);
        let want = dijkstra(&g, 0).dist;
        let got = relaxed_sssp_seq(&g, 0, &mut SimMultiQueue::keyed(queues, seed));
        let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
        assert_eq!(got.dist, want, "case {case}");
        // Theorem 6.1 sanity: pops at least the reachable count.
        assert!(got.pops >= reachable, "case {case}");
    }
}

/// BST-insertion sorting sorts arbitrary distinct key sets under any
/// relaxation.
#[test]
fn bst_sort_sorts_arbitrary_keys() {
    for case in 0..CASES {
        let mut rng = gen_for("bst_sort", case);
        let len = rng.gen_range(1usize..200);
        let mut keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..10_000)).collect();
        keys.sort_unstable();
        keys.dedup();
        // Re-shuffle after dedup: insertion order determines the treap
        // shape, and sorted input would degenerate every tree to a chain.
        keys.shuffle(&mut rng);
        let queues = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..100);
        let mut want = keys.clone();
        want.sort_unstable();
        let mut alg = BstSort::from_keys(keys);
        run_relaxed(&mut alg, &mut SimMultiQueue::new(queues, seed));
        assert_eq!(alg.in_order_keys(), want, "case {case}");
    }
}

/// The rotating deterministic scheduler never violates RankBound or
/// Fairness, measured by the instrumentation layer, for arbitrary
/// priorities and k.
#[test]
fn rotating_queue_bounds_always_hold() {
    for case in 0..CASES {
        let mut rng = gen_for("rotating_bounds", case);
        let len = rng.gen_range(1usize..150);
        let k = rng.gen_range(1usize..12);
        let mut q = RankTracker::new(RotatingKQueue::new(k));
        for i in 0..len {
            q.insert(i, rng.gen_range(0u64..1000));
        }
        while let Some((item, _)) = q.peek_relaxed() {
            q.delete(item);
        }
        assert!(q.stats().max_rank <= k, "case {case}");
        assert!(q.stats().max_inv <= (k - 1) as u64, "case {case}");
    }
}

/// Indexed heap and pairing heap agree with a sorted-model queue on
/// arbitrary op sequences (push/pop/decrease/remove).
#[test]
fn heaps_match_model() {
    for case in 0..CASES {
        let mut rng = gen_for("heaps_model", case);
        let nops = rng.gen_range(1usize..300);
        let mut bh = IndexedBinaryHeap::new();
        let mut ph = PairingHeap::new();
        let mut model: Vec<(u64, usize)> = Vec::new(); // (prio, item)
        for _ in 0..nops {
            let op = rng.gen_range(0u8..4);
            let item = rng.gen_range(0usize..64);
            let prio = rng.gen_range(0u64..1000);
            match op {
                0 => {
                    if !model.iter().any(|&(_, it)| it == item) {
                        bh.push(item, prio);
                        ph.push(item, prio);
                        model.push((prio, item));
                    }
                }
                1 => {
                    model.sort_unstable();
                    let want = model.first().copied().map(|(p, it)| (it, p));
                    assert_eq!(bh.pop(), want, "case {case}");
                    assert_eq!(ph.pop(), want, "case {case}");
                    if !model.is_empty() {
                        model.remove(0);
                    }
                }
                2 => {
                    let present = model.iter().position(|&(_, it)| it == item);
                    let expect = match present {
                        Some(idx) if prio < model[idx].0 => {
                            model[idx].0 = prio;
                            true
                        }
                        _ => false,
                    };
                    assert_eq!(bh.decrease_key(item, prio), expect, "case {case}");
                    assert_eq!(ph.decrease_key(item, prio), expect, "case {case}");
                }
                _ => {
                    let present = model.iter().position(|&(_, it)| it == item);
                    let expect = present.map(|idx| model.remove(idx).0);
                    assert_eq!(bh.remove(item), expect, "case {case}");
                    assert_eq!(ph.remove(item), expect, "case {case}");
                }
            }
            assert_eq!(PriorityQueue::len(&bh), model.len(), "case {case}");
            assert_eq!(PriorityQueue::len(&ph), model.len(), "case {case}");
        }
    }
}

/// A SimMultiQueue never loses or duplicates elements under arbitrary
/// insert/pop/delete interleavings.
#[test]
fn multiqueue_conservation() {
    for case in 0..CASES {
        let mut rng = gen_for("mq_conservation", case);
        let nops = rng.gen_range(1usize..300);
        let queues = rng.gen_range(1usize..8);
        let mut mq = SimMultiQueue::new(queues, 12345);
        let mut live: std::collections::HashSet<usize> = Default::default();
        let mut popped: std::collections::HashSet<usize> = Default::default();
        for _ in 0..nops {
            let op = rng.gen_range(0u8..3);
            let item = rng.gen_range(0usize..64);
            let prio = rng.gen_range(0u64..1000);
            match op {
                0 => {
                    if !live.contains(&item) {
                        mq.insert(item, prio);
                        live.insert(item);
                        popped.remove(&item);
                    }
                }
                1 => {
                    if let Some((it, _)) = mq.pop_relaxed() {
                        assert!(live.remove(&it), "case {case}: popped non-live item");
                        assert!(popped.insert(it), "case {case}");
                    } else {
                        assert!(live.is_empty(), "case {case}");
                    }
                }
                _ => {
                    let did = mq.delete(item);
                    assert_eq!(did, live.remove(&item), "case {case}");
                }
            }
            assert_eq!(mq.len(), live.len(), "case {case}");
        }
    }
}

/// Delaunay triangulation of arbitrary (deduplicated) point sets is valid
/// under arbitrary insertion order permutations.
#[test]
fn delaunay_valid_for_arbitrary_points_and_orders() {
    use rand::seq::SliceRandom;
    for case in 0..CASES {
        let mut rng = gen_for("delaunay_points", case);
        let target = rng.gen_range(3usize..60);
        let mut raw: std::collections::HashSet<(i64, i64)> = Default::default();
        while raw.len() < target {
            raw.insert((rng.gen_range(0i64..500), rng.gen_range(0i64..500)));
        }
        let order_seed = rng.gen_range(0u64..1000);
        let pts: Vec<Point> = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let n = pts.len();
        let mut st = DelaunayState::new(pts);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(order_seed));
        for p in order {
            st.insert(p);
        }
        st.check_invariants();
        st.mesh().check_delaunay(st.inserted_flags());
        assert_eq!(st.mesh().num_alive(), 2 * n + 1, "case {case}");
    }
}

/// Parallel Δ-stepping equals Dijkstra on arbitrary graphs, deltas and
/// thread counts.
#[test]
fn parallel_delta_stepping_exact() {
    for case in 0..CASES {
        let mut rng = gen_for("par_delta", case);
        let n = rng.gen_range(2usize..25);
        let edges = random_edges(&mut rng, 25, 80, 50);
        let delta = rng.gen_range(1u64..200);
        let threads = rng.gen_range(1usize..5);
        let g = graph_from_edges(n, &edges);
        let want = dijkstra(&g, 0).dist;
        let got = parallel_delta_stepping(&g, 0, delta, threads);
        assert_eq!(got.dist, want, "case {case}");
    }
}

/// Branch-and-bound finds the DP optimum under any relaxation.
#[test]
fn knapsack_bnb_matches_dp() {
    for case in 0..CASES {
        let mut rng = gen_for("knapsack", case);
        let nitems = rng.gen_range(1usize..14);
        let items: Vec<(u64, u64)> = (0..nitems)
            .map(|_| (rng.gen_range(1u64..60), rng.gen_range(1u64..40)))
            .collect();
        let cap_frac = rng.gen_range(1usize..4);
        let queues = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..50);
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let inst = Knapsack::new(items, (total / cap_frac as u64).max(1));
        let want = inst.dp_optimum();
        let exact = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
        assert_eq!(exact.best_value, want, "case {case}");
        let relaxed = inst.solve(&mut SimMultiQueue::new(queues, seed));
        assert_eq!(relaxed.best_value, want, "case {case}");
        assert_eq!(
            relaxed.expanded + relaxed.pruned_after_pop,
            relaxed.generated,
            "case {case}"
        );
    }
}

/// The DIMACS writer/parser round-trips arbitrary graphs, and the parser
/// never panics on arbitrary junk input.
#[test]
fn dimacs_roundtrip_and_junk_resilience() {
    for case in 0..CASES {
        let mut rng = gen_for("dimacs", case);
        let n = rng.gen_range(2usize..20);
        let edges = random_edges(&mut rng, 20, 60, 1000);
        let junk_len = rng.gen_range(0usize..200);
        let junk: String = (0..junk_len)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    '\n'
                } else {
                    rng.gen_range(0x20u8..0x7F) as char
                }
            })
            .collect();
        let g = graph_from_edges(n, &edges);
        let mut buf = Vec::new();
        rsched_graph::io::write_dimacs_gr(&g, &mut buf).expect("write");
        let g2 = rsched_graph::io::read_dimacs_gr(&buf[..]).expect("read");
        assert_eq!(g, g2, "case {case}");
        // Arbitrary junk: must return (ok or err) without panicking.
        let _ = rsched_graph::io::read_dimacs_gr(junk.as_bytes());
        let _ = rsched_graph::io::read_snap_edges(junk.as_bytes(), 1..=10, 0);
    }
}

/// d-RA and d-CBO never lose or duplicate items under arbitrary
/// enqueue/dequeue interleavings, for arbitrary sub-queue counts.
#[test]
fn relaxed_fifo_conservation() {
    for case in 0..CASES {
        let mut rng = gen_for("fifo_conservation", case);
        let subqueues = rng.gen_range(1usize..12);
        let nops = rng.gen_range(1usize..400);
        let seed = rng.gen_range(0u64..1000);
        let mut dra: DRaQueue<u64> = QueueBuilder::new(subqueues).seed(seed).d_ra();
        let mut dcbo: DCboQueue<u64> = QueueBuilder::new(subqueues).seed(seed).d_cbo();
        let mut pushed = 0u64;
        let mut got_dra = Vec::new();
        let mut got_dcbo = Vec::new();
        for _ in 0..nops {
            if rng.gen_bool(0.6) {
                RelaxedFifo::enqueue(&mut dra, pushed);
                RelaxedFifo::enqueue(&mut dcbo, pushed);
                pushed += 1;
            } else {
                // Must agree on emptiness: both hold the same multiset.
                if let Some(v) = RelaxedFifo::dequeue(&mut dra) {
                    got_dra.push(v);
                    got_dcbo.push(RelaxedFifo::dequeue(&mut dcbo).expect("same fill level"));
                } else {
                    assert!(RelaxedFifo::is_empty(&dcbo), "case {case}");
                }
            }
        }
        while let Some(v) = RelaxedFifo::dequeue(&mut dra) {
            got_dra.push(v);
        }
        while let Some(v) = RelaxedFifo::dequeue(&mut dcbo) {
            got_dcbo.push(v);
        }
        got_dra.sort_unstable();
        got_dcbo.sort_unstable();
        let want: Vec<u64> = (0..pushed).collect();
        assert_eq!(got_dra, want, "case {case}: d-RA lost or duplicated items");
        assert_eq!(
            got_dcbo, want,
            "case {case}: d-CBO lost or duplicated items"
        );
    }
}

/// d-RA / d-CBO rank errors stay within the choice-of-two envelope: the
/// mean error is O(subqueues) and the tail is a small multiple of it,
/// independently of how many operations run (stationarity). Empirically
/// the mean sits near 0.65·q and the 99th percentile near 3·q; the
/// asserted constants are generous multiples to stay seed-robust.
#[test]
fn relaxed_fifo_rank_error_envelope() {
    for case in 0..16 {
        let mut rng = gen_for("fifo_envelope", case);
        let subqueues = [2usize, 4, 8, 16][case as usize % 4];
        let prefill = rng.gen_range(64usize..2048);
        let ops = rng.gen_range(4_000usize..20_000);
        let seed = rng.gen_range(0u64..1000);

        let check = |name: &str, stats: &FifoRankStats| {
            let q = subqueues as f64;
            assert!(
                stats.mean_error() <= 2.0 * q,
                "case {case} {name}: mean error {} beyond 2q = {}",
                stats.mean_error(),
                2.0 * q
            );
            assert!(
                (stats.error_quantile(0.99) as f64) <= 8.0 * q,
                "case {case} {name}: p99 error {} beyond 8q",
                stats.error_quantile(0.99)
            );
            assert!(
                (stats.max_error as f64) <= 32.0 * q,
                "case {case} {name}: max error {} beyond 32q",
                stats.max_error
            );
        };

        fn mixed_sweep<Q: RelaxedFifo<(u64, usize)>>(
            queue: Q,
            prefill: usize,
            ops: usize,
            seed: u64,
        ) -> FifoRankStats {
            let mut q = FifoRankTracker::new(queue);
            let mut next = 0usize;
            for _ in 0..prefill {
                q.enqueue(next);
                next += 1;
            }
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..ops {
                if rng.gen_bool(0.5) {
                    q.enqueue(next);
                    next += 1;
                } else {
                    let _ = q.dequeue();
                }
            }
            while q.dequeue().is_some() {}
            q.into_parts().1
        }

        let dra = mixed_sweep(
            QueueBuilder::new(subqueues).seed(seed).d_ra(),
            prefill,
            ops,
            seed,
        );
        check("d-RA", &dra);
        let dcbo = mixed_sweep(
            QueueBuilder::new(subqueues).seed(seed).d_cbo(),
            prefill,
            ops,
            seed,
        );
        check("d-CBO", &dcbo);
    }
}

/// One sub-queue is an exact FIFO: zero rank error on arbitrary
/// interleavings for both family members.
#[test]
fn relaxed_fifo_single_subqueue_exact() {
    for case in 0..CASES {
        let mut rng = gen_for("fifo_exact", case);
        let nops = rng.gen_range(1usize..300);
        let mut dra = FifoRankTracker::new(QueueBuilder::new(1).seed(case).d_ra());
        let mut dcbo = FifoRankTracker::new(QueueBuilder::new(1).seed(case).d_cbo());
        let mut next = 0u64;
        for _ in 0..nops {
            if rng.gen_bool(0.5) {
                dra.enqueue(next);
                dcbo.enqueue(next);
                next += 1;
            } else {
                let a = dra.dequeue();
                let b = dcbo.dequeue();
                assert_eq!(a, b, "case {case}: exact FIFOs must agree");
            }
        }
        while dra.dequeue().is_some() {}
        while dcbo.dequeue().is_some() {}
        assert_eq!(dra.stats().max_error, 0, "case {case}");
        assert_eq!(dcbo.stats().max_error, 0, "case {case}");
    }
}

/// Relaxed-FIFO BFS and k-core equal their sequential references on
/// arbitrary graphs, thread counts and seeds (runtime end-to-end).
#[test]
fn runtime_bfs_and_kcore_exact_on_arbitrary_graphs() {
    for case in 0..24 {
        let mut rng = gen_for("runtime_bfs_kcore", case);
        let n = rng.gen_range(2usize..60);
        let edges = random_edges(&mut rng, 60, 240, 10);
        let threads = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..1000);
        let k = rng.gen_range(1u64..6);
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            if u % n != v % n {
                b.add_undirected_edge(u % n, v % n, w);
            }
        }
        let g = b.build();
        let cfg = ParSsspConfig {
            threads,
            queue_multiplier: 2,
            seed,
        };
        assert_eq!(
            parallel_bfs(&g, 0, cfg).dist,
            bfs(&g, 0),
            "case {case}: bfs"
        );
        assert_eq!(
            parallel_kcore(&g, k, cfg).in_core,
            kcore_sequential(&g, k),
            "case {case}: k-core k={k}"
        );
    }
}

/// Greedy MIS and coloring under relaxation equal their sequential
/// references on arbitrary graphs.
#[test]
fn mis_and_coloring_deterministic() {
    for case in 0..CASES {
        let mut rng = gen_for("mis_coloring", case);
        let n = rng.gen_range(2usize..40);
        let edges = random_edges(&mut rng, 40, 150, 10);
        let seed = rng.gen_range(0u64..100);
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            if u % n != v % n {
                b.add_undirected_edge(u % n, v % n, w);
            }
        }
        let g = b.build();
        let mut mis = GreedyMis::new(&g, seed);
        run_relaxed(&mut mis, &mut SimMultiQueue::new(4, seed));
        let mut mis_ref = GreedyMis::new(&g, seed);
        run_exact(&mut mis_ref);
        assert_eq!(
            mis.independent_set(),
            mis_ref.independent_set(),
            "case {case}"
        );

        let mut col = GreedyColoring::new(&g, seed);
        run_relaxed(&mut col, &mut SimMultiQueue::new(4, seed + 1));
        assert!(col.verify_proper(), "case {case}");
    }
}
