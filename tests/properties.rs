//! Property-based tests (proptest) over the core invariants of the
//! workspace: queue semantics, scheduler guarantees, algorithm correctness
//! on arbitrary inputs.

use proptest::collection::vec;
use proptest::prelude::*;
use relaxed_schedulers::prelude::*;

/// Build an arbitrary small weighted digraph from proptest-chosen edges.
fn graph_from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(u % n, v % n, w);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra (DecreaseKey heap) equals Bellman–Ford on arbitrary graphs.
    #[test]
    fn dijkstra_equals_bellman_ford(
        n in 2usize..40,
        edges in vec((0usize..40, 0usize..40, 1u64..50), 0..120),
    ) {
        let g = graph_from_edges(n, &edges);
        prop_assert_eq!(dijkstra(&g, 0).dist, bellman_ford(&g, 0));
    }

    /// Δ-stepping equals Dijkstra for arbitrary delta.
    #[test]
    fn delta_stepping_equals_dijkstra(
        n in 2usize..30,
        edges in vec((0usize..30, 0usize..30, 1u64..50), 0..100),
        delta in 1u64..100,
    ) {
        let g = graph_from_edges(n, &edges);
        prop_assert_eq!(delta_stepping(&g, 0, delta).dist, dijkstra(&g, 0).dist);
    }

    /// The sequential-model relaxed SSSP is exact for any scheduler seed and
    /// queue count, on arbitrary graphs.
    #[test]
    fn relaxed_sssp_exact_on_arbitrary_graphs(
        n in 2usize..30,
        edges in vec((0usize..30, 0usize..30, 1u64..50), 0..100),
        queues in 1usize..10,
        seed in 0u64..1000,
    ) {
        let g = graph_from_edges(n, &edges);
        let want = dijkstra(&g, 0).dist;
        let got = relaxed_sssp_seq(&g, 0, &mut SimMultiQueue::keyed(queues, seed));
        let reachable = want.iter().filter(|&&d| d != INF).count() as u64;
        prop_assert_eq!(got.dist, want);
        // Theorem 6.1 sanity: pops at least the reachable count.
        prop_assert!(got.pops >= reachable);
    }

    /// BST-insertion sorting sorts arbitrary distinct key sets under any
    /// relaxation.
    #[test]
    fn bst_sort_sorts_arbitrary_keys(
        keys in proptest::collection::hash_set(0u64..10_000, 1..200),
        queues in 1usize..8,
        seed in 0u64..100,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut want = keys.clone();
        want.sort_unstable();
        let mut alg = BstSort::from_keys(keys);
        run_relaxed(&mut alg, &mut SimMultiQueue::new(queues, seed));
        prop_assert_eq!(alg.in_order_keys(), want);
    }

    /// The rotating deterministic scheduler never violates RankBound or
    /// Fairness, measured by the instrumentation layer, for arbitrary
    /// priorities and k.
    #[test]
    fn rotating_queue_bounds_always_hold(
        prios in vec(0u64..1000, 1..150),
        k in 1usize..12,
    ) {
        let mut q = RankTracker::new(RotatingKQueue::new(k));
        for (i, &p) in prios.iter().enumerate() {
            q.insert(i, p);
        }
        while let Some((item, _)) = q.peek_relaxed() {
            q.delete(item);
        }
        prop_assert!(q.stats().max_rank <= k);
        prop_assert!(q.stats().max_inv <= (k - 1) as u64);
    }

    /// Indexed heap and pairing heap agree with a sorted-model queue on
    /// arbitrary op sequences (push/pop/decrease/remove).
    #[test]
    fn heaps_match_model(ops in vec((0u8..4, 0usize..64, 0u64..1000), 1..300)) {
        let mut bh = IndexedBinaryHeap::new();
        let mut ph = PairingHeap::new();
        let mut model: Vec<(u64, usize)> = Vec::new(); // (prio, item)
        for (op, item, prio) in ops {
            match op {
                0 => {
                    if !model.iter().any(|&(_, it)| it == item) {
                        bh.push(item, prio);
                        ph.push(item, prio);
                        model.push((prio, item));
                    }
                }
                1 => {
                    model.sort_unstable();
                    let want = model.first().copied().map(|(p, it)| (it, p));
                    prop_assert_eq!(bh.pop(), want);
                    prop_assert_eq!(ph.pop(), want);
                    if !model.is_empty() {
                        model.remove(0);
                    }
                }
                2 => {
                    let present = model.iter().position(|&(_, it)| it == item);
                    let expect = match present {
                        Some(idx) if prio < model[idx].0 => {
                            model[idx].0 = prio;
                            true
                        }
                        _ => false,
                    };
                    prop_assert_eq!(bh.decrease_key(item, prio), expect);
                    prop_assert_eq!(ph.decrease_key(item, prio), expect);
                }
                _ => {
                    let present = model.iter().position(|&(_, it)| it == item);
                    let expect = present.map(|idx| model.remove(idx).0);
                    prop_assert_eq!(bh.remove(item), expect);
                    prop_assert_eq!(ph.remove(item), expect);
                }
            }
            prop_assert_eq!(PriorityQueue::len(&bh), model.len());
            prop_assert_eq!(PriorityQueue::len(&ph), model.len());
        }
    }

    /// A SimMultiQueue never loses or duplicates elements under arbitrary
    /// insert/pop/delete interleavings.
    #[test]
    fn multiqueue_conservation(
        ops in vec((0u8..3, 0usize..64, 0u64..1000), 1..300),
        queues in 1usize..8,
    ) {
        let mut mq = SimMultiQueue::new(queues, 12345);
        let mut live: std::collections::HashSet<usize> = Default::default();
        let mut popped: std::collections::HashSet<usize> = Default::default();
        for (op, item, prio) in ops {
            match op {
                0 => {
                    if !live.contains(&item) {
                        mq.insert(item, prio);
                        live.insert(item);
                        popped.remove(&item);
                    }
                }
                1 => {
                    if let Some((it, _)) = mq.pop_relaxed() {
                        prop_assert!(live.remove(&it), "popped non-live item");
                        prop_assert!(popped.insert(it));
                    } else {
                        prop_assert!(live.is_empty());
                    }
                }
                _ => {
                    let did = mq.delete(item);
                    prop_assert_eq!(did, live.remove(&item));
                }
            }
            prop_assert_eq!(mq.len(), live.len());
        }
    }

    /// Delaunay triangulation of arbitrary (deduplicated) point sets is
    /// valid under arbitrary insertion order permutations.
    #[test]
    fn delaunay_valid_for_arbitrary_points_and_orders(
        raw in proptest::collection::hash_set((0i64..500, 0i64..500), 3..60),
        order_seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let pts: Vec<Point> = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let n = pts.len();
        let mut st = DelaunayState::new(pts);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(order_seed));
        for p in order {
            st.insert(p);
        }
        st.check_invariants();
        st.mesh().check_delaunay(st.inserted_flags());
        prop_assert_eq!(st.mesh().num_alive(), 2 * n + 1);
    }

    /// Parallel Δ-stepping equals Dijkstra on arbitrary graphs, deltas and
    /// thread counts.
    #[test]
    fn parallel_delta_stepping_exact(
        n in 2usize..25,
        edges in vec((0usize..25, 0usize..25, 1u64..50), 0..80),
        delta in 1u64..200,
        threads in 1usize..5,
    ) {
        let g = graph_from_edges(n, &edges);
        let want = dijkstra(&g, 0).dist;
        let got = parallel_delta_stepping(&g, 0, delta, threads);
        prop_assert_eq!(got.dist, want);
    }

    /// Branch-and-bound finds the DP optimum under any relaxation.
    #[test]
    fn knapsack_bnb_matches_dp(
        items in vec((1u64..60, 1u64..40), 1..14),
        cap_frac in 1usize..4,
        queues in 1usize..6,
        seed in 0u64..50,
    ) {
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let inst = Knapsack::new(items, (total / cap_frac as u64).max(1));
        let want = inst.dp_optimum();
        let exact = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
        prop_assert_eq!(exact.best_value, want);
        let relaxed = inst.solve(&mut SimMultiQueue::new(queues, seed));
        prop_assert_eq!(relaxed.best_value, want);
        prop_assert_eq!(
            relaxed.expanded + relaxed.pruned_after_pop,
            relaxed.generated
        );
    }

    /// The DIMACS writer/parser round-trips arbitrary graphs, and the
    /// parser never panics on arbitrary junk input.
    #[test]
    fn dimacs_roundtrip_and_junk_resilience(
        n in 2usize..20,
        edges in vec((0usize..20, 0usize..20, 1u64..1000), 0..60),
        junk in "[ -~\\n]{0,200}",
    ) {
        let g = graph_from_edges(n, &edges);
        let mut buf = Vec::new();
        rsched_graph::io::write_dimacs_gr(&g, &mut buf).expect("write");
        let g2 = rsched_graph::io::read_dimacs_gr(&buf[..]).expect("read");
        prop_assert_eq!(g, g2);
        // Arbitrary junk: must return (ok or err) without panicking.
        let _ = rsched_graph::io::read_dimacs_gr(junk.as_bytes());
        let _ = rsched_graph::io::read_snap_edges(junk.as_bytes(), 1..=10, 0);
    }

    /// Greedy MIS and coloring under relaxation equal their sequential
    /// references on arbitrary graphs.
    #[test]
    fn mis_and_coloring_deterministic(
        n in 2usize..40,
        edges in vec((0usize..40, 0usize..40, 1u64..10), 0..150),
        seed in 0u64..100,
    ) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            if u % n != v % n {
                b.add_undirected_edge(u % n, v % n, w);
            }
        }
        let g = b.build();
        let mut mis = GreedyMis::new(&g, seed);
        run_relaxed(&mut mis, &mut SimMultiQueue::new(4, seed));
        let mut mis_ref = GreedyMis::new(&g, seed);
        run_exact(&mut mis_ref);
        prop_assert_eq!(mis.independent_set(), mis_ref.independent_set());

        let mut col = GreedyColoring::new(&g, seed);
        run_relaxed(&mut col, &mut SimMultiQueue::new(4, seed + 1));
        prop_assert!(col.verify_proper());
    }
}
