//! Offline stand-in for the `criterion` crate. The build environment has
//! no crates.io access, so this provides the API surface the workspace's
//! benches use — `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock harness that
//! prints mean/min per iteration. No statistics, plots or baselines; the
//! serious measurements live in `crates/bench/src/bin/*` which have their
//! own reporting.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    /// Mean and minimum per-iteration time of the measured run.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `routine`, called `iters` times after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut min = Duration::MAX;
        let start = Instant::now();
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            min = min.min(t0.elapsed());
        }
        let total = start.elapsed();
        self.result = Some((total / self.iters as u32, min));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    /// Annotate throughput (printed alongside timings).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental; this is a no-op hook).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.criterion.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((mean, min)) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
                    }
                    None => String::new(),
                };
                println!(
                    "{}/{:<40} mean {:>12?}  min {:>12?}{}",
                    self.name, id, mean, min, rate
                );
            }
            None => println!("{}/{}: no measurement (iter not called)", self.name, id),
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
