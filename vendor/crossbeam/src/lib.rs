//! Offline stand-in for the `crossbeam` crate (the subset this workspace
//! uses): [`utils::Backoff`], [`utils::CachePadded`], [`queue::SegQueue`]
//! and [`epoch`] (minimal epoch-based memory reclamation for the
//! lock-free queues in `rsched-queues::lockfree`). Semantics match the
//! real crate for the used API; `SegQueue` is a mutex-backed MPMC queue
//! rather than a lock-free segment list, which is fine for its only use
//! here (a termination-detection unit test), and `epoch` trades the real
//! crate's fence-shaving for an all-`SeqCst` implementation that is easy
//! to audit.

pub mod epoch;

pub mod utils {
    use std::sync::atomic::{AtomicUsize, Ordering};

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for contended retry loops.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: std::cell::Cell<u32>,
    }

    impl Backoff {
        /// A backoff at the initial (shortest) delay.
        pub fn new() -> Self {
            Self::default()
        }

        /// Return to the initial delay (call after successful progress).
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Busy-wait briefly, growing exponentially up to a cap.
        pub fn spin(&self) {
            let step = self.step.get().min(SPIN_LIMIT);
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Busy-wait, then yield the thread once spinning stops paying off.
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// `true` once snoozing has escalated past spinning — callers that
        /// can block should do so now.
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    /// Pads and aligns a value to 128 bytes, preventing false sharing
    /// between adjacent entries of an array of counters.
    #[derive(Clone, Copy, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in its own cache line.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwrap, discarding the padding.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.value.fmt(f)
        }
    }

    // Compile-time check that the padding actually isolates cache lines.
    const _: () = assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() == 128);
    const _: () = {
        let _ = Ordering::Relaxed;
    };
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue usable through a shared reference.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Append `value` at the tail.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Remove the head, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Current element count.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// `true` if no elements are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::utils::{Backoff, CachePadded};

    #[test]
    fn segqueue_is_fifo_across_threads() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        std::thread::scope(|s| {
            let q = &q;
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<i32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..20 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn cache_padded_derefs() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
    }
}
