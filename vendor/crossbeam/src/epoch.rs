//! Minimal epoch-based memory reclamation — the `crossbeam-epoch` API
//! subset the workspace's lock-free queues need.
//!
//! # Model
//!
//! Threads **pin** themselves before touching a lock-free structure and
//! unpin when done ([`pin`] returns a [`Guard`]; dropping it unpins).
//! Nodes unlinked from a structure are handed to
//! [`Guard::defer_destroy`], which tags them with the current *global
//! epoch*. The global epoch advances only when every pinned thread has
//! observed it; garbage tagged with epoch `e` is freed once the global
//! epoch reaches `e + 2`, at which point no thread can still hold a
//! reference obtained before the unlink:
//!
//! * a thread pinned at epoch `e` (or earlier) blocks the advance past
//!   `e + 1`, so while such a thread exists the garbage survives;
//! * a thread that pins at `e + 1` or later pinned *after* the advance
//!   to its epoch, which happened after the unlink became visible (all
//!   epoch traffic is `SeqCst`), so it can no longer reach the node.
//!
//! # Implementation notes
//!
//! Per-thread state lives in a thread local: a participant record (the
//! published pin epoch), a local garbage bag, and a pin-depth counter so
//! nested [`pin`] calls are cheap. The participant registry is a
//! mutex-guarded `Vec` — registration is per-thread-lifetime, and the
//! registry lock is only otherwise taken by the amortized collection
//! path (every `COLLECT_EVERY` deferrals). Exiting threads flush
//! their bag to a global orphan list that later collections drain.
//!
//! Everything epoch-related uses `SeqCst`: this stand-in favours being
//! obviously correct over shaving fences; the queues built on it are
//! where the scalability comes from.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Collect (try to advance the epoch and free eligible garbage) once per
/// this many local deferrals.
const COLLECT_EVERY: usize = 64;

/// Global epoch counter.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Registry of live participants (one per thread that ever pinned).
static PARTICIPANTS: Mutex<Vec<Arc<Participant>>> = Mutex::new(Vec::new());

/// Garbage flushed by exited threads, freed by later collections.
static ORPHANS: Mutex<Vec<Garbage>> = Mutex::new(Vec::new());

/// Epoch of the oldest orphan (or `u64::MAX` when none): collections
/// skip the orphan lock entirely until something could be freed.
static ORPHAN_OLDEST: AtomicU64 = AtomicU64::new(u64::MAX);

/// Process-lifetime count of deferrals ([`Guard::defer_destroy`] and
/// friends) — telemetry only, never read by the reclamation logic.
static GC_DEFERRED: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime count of garbage records actually freed/recycled by
/// collections (local-bag prefixes plus orphans).
static GC_COLLECTED: AtomicU64 = AtomicU64::new(0);

/// Monotone `(deferred, collected)` reclamation counters, for progress
/// telemetry. `collected ≤ deferred` at all times, and the gap is the
/// garbage still awaiting a grace period.
pub fn gc_counters() -> (u64, u64) {
    (
        GC_DEFERRED.load(Ordering::Relaxed),
        GC_COLLECTED.load(Ordering::Relaxed),
    )
}

/// One thread's published pin state: `0` when not pinned, otherwise
/// `(epoch << 1) | 1`.
struct Participant {
    state: AtomicU64,
}

/// A deferred destruction: a type-erased pointer plus its monomorphized
/// dropper, tagged with the epoch at deferral time.
struct Garbage {
    epoch: u64,
    ptr: *mut u8,
    dropper: unsafe fn(*mut u8),
}

// SAFETY: the pointer is an owned `Box` allocation whose only remaining
// handle is this record; moving it across threads is sound because the
// dropper is only invoked once, by whichever thread collects it.
unsafe impl Send for Garbage {}

unsafe fn drop_box<T>(ptr: *mut u8) {
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

unsafe fn call_closure<F: FnOnce()>(ptr: *mut u8) {
    let f = unsafe { Box::from_raw(ptr.cast::<F>()) };
    (*f)();
}

/// Low bits of a `*mut T` that are guaranteed zero by alignment and thus
/// available for tags (crossbeam's pointer-tagging scheme).
#[inline]
fn low_bits<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

#[inline]
fn decompose<T>(raw: *mut T) -> (*mut T, usize) {
    let bits = raw as usize;
    let mask = low_bits::<T>();
    ((bits & !mask) as *mut T, bits & mask)
}

#[inline]
fn compose<T>(data: *mut T, tag: usize) -> *mut T {
    debug_assert_eq!(
        data as usize & low_bits::<T>(),
        0,
        "pointer not aligned for tagging"
    );
    (data as usize | (tag & low_bits::<T>())) as *mut T
}

struct Local {
    participant: Arc<Participant>,
    pins: Cell<usize>,
    /// Deferred garbage in non-decreasing epoch order (entries are
    /// appended with the then-current epoch), so collection frees an
    /// eligible *prefix* and stops — never a full rescan.
    bag: RefCell<VecDeque<Garbage>>,
    deferred: Cell<usize>,
}

impl Local {
    fn register() -> Self {
        let participant = Arc::new(Participant {
            state: AtomicU64::new(0),
        });
        PARTICIPANTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&participant));
        Local {
            participant,
            pins: Cell::new(0),
            bag: RefCell::new(VecDeque::new()),
            deferred: Cell::new(0),
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        let mut parts = PARTICIPANTS.lock().unwrap_or_else(|e| e.into_inner());
        parts.retain(|p| !Arc::ptr_eq(p, &self.participant));
        drop(parts);
        let mut bag = self.bag.borrow_mut();
        if !bag.is_empty() {
            // Update the hint while holding the orphan lock: a collector
            // that concurrently drains the list and resets the hint to
            // MAX is serialized against this append, so it can never
            // overwrite a hint for garbage it has not seen.
            let mut orphans = ORPHANS.lock().unwrap_or_else(|e| e.into_inner());
            ORPHAN_OLDEST.fetch_min(bag.front().expect("non-empty").epoch, Ordering::AcqRel);
            orphans.extend(bag.drain(..));
        }
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

/// Attempt to advance the global epoch; returns the (possibly new)
/// current epoch.
fn try_advance() -> u64 {
    let global = EPOCH.load(Ordering::SeqCst);
    fence(Ordering::SeqCst);
    {
        let parts = PARTICIPANTS.lock().unwrap_or_else(|e| e.into_inner());
        for p in parts.iter() {
            let s = p.state.load(Ordering::SeqCst);
            if s & 1 == 1 && (s >> 1) != global {
                return global;
            }
        }
    }
    let _ = EPOCH.compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst);
    EPOCH.load(Ordering::SeqCst)
}

/// Advance if possible, then free the garbage (local bag prefix plus
/// orphans) old enough to be unreachable.
fn collect(local: &Local) {
    let current = try_advance();
    let free = |g: Garbage| {
        // SAFETY: epoch rule — no thread pinned before the unlink can
        // still be pinned once the epoch advanced twice past the tag.
        unsafe { (g.dropper)(g.ptr) };
    };
    {
        // Move the eligible prefix out of the bag *before* running any
        // dropper: a dropper may itself defer garbage (recycling
        // closures, nested structures), which must not observe the bag
        // mid-borrow.
        let mut ready = Vec::new();
        {
            let mut bag = local.bag.borrow_mut();
            while bag.front().is_some_and(|g| g.epoch + 2 <= current) {
                ready.push(bag.pop_front().expect("checked front"));
            }
        }
        GC_COLLECTED.fetch_add(ready.len() as u64, Ordering::Relaxed);
        for g in ready {
            free(g);
        }
    }
    // Orphans: only pay for the lock when the hint says something could
    // actually be freed (thread exits are rare; this is usually a single
    // relaxed load).
    if ORPHAN_OLDEST.load(Ordering::Acquire).saturating_add(2) <= current {
        let mut orphans = ORPHANS.lock().unwrap_or_else(|e| e.into_inner());
        let mut keep = Vec::new();
        let mut take = Vec::new();
        let mut oldest = u64::MAX;
        for g in orphans.drain(..) {
            if g.epoch + 2 <= current {
                take.push(g);
            } else {
                oldest = oldest.min(g.epoch);
                keep.push(g);
            }
        }
        *orphans = keep;
        ORPHAN_OLDEST.store(oldest, Ordering::Release);
        drop(orphans);
        GC_COLLECTED.fetch_add(take.len() as u64, Ordering::Relaxed);
        for g in take {
            free(g);
        }
    }
}

/// Pin the current thread; shared nodes loaded through the returned
/// guard stay allocated until the guard (and every other guard that
/// could reach them) is dropped.
#[inline]
pub fn pin() -> Guard {
    let local = LOCAL.with(|l| {
        if l.pins.get() == 0 {
            // Publish the pin at the current epoch; re-read after a full
            // fence so a concurrent advance either sees the pin or is
            // itself seen (and the pin re-published at the new epoch).
            // The store itself can be relaxed — the SeqCst fence after it
            // globally orders it against the advancer's fenced scan
            // (crossbeam's own pin protocol).
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                l.participant.state.store((e << 1) | 1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        l.pins.set(l.pins.get() + 1);
        l as *const Local
    });
    Guard {
        local,
        _not_send: PhantomData,
    }
}

/// A pinned-thread token. Dropping the outermost guard unpins the
/// thread, allowing the global epoch to advance past it.
#[derive(Debug)]
pub struct Guard {
    /// The owning thread's `Local` — cached so the guard's hot methods
    /// (drop, repin, defer) skip the TLS lookup. Valid because `Guard`
    /// is `!Send` and cannot outlive the thread's TLS destruction while
    /// queue operations run.
    local: *const Local,
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Unpin and immediately re-pin the thread (when this is the
    /// outermost guard), letting the global epoch advance past garbage
    /// deferred earlier. Long-lived guards that batch many operations
    /// should call this periodically; pointers loaded before the repin
    /// must not be used afterwards.
    #[inline]
    pub fn repin(&mut self) {
        // SAFETY: guard is pinned to its creating thread (!Send).
        let l = unsafe { &*self.local };
        if l.pins.get() == 1 {
            l.participant.state.store(0, Ordering::Release);
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                l.participant.state.store((e << 1) | 1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
    }

    /// Schedule the pointed-to allocation for destruction once no pinned
    /// thread can still reach it.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Owned::new` / `Atomic::new`, must already be
    /// unlinked (unreachable for threads that pin later), and must not be
    /// deferred twice.
    #[inline]
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        debug_assert!(!ptr.is_null(), "cannot defer the null pointer");
        // Strip any tag bits: the allocator wants the real address.
        let (data, _) = decompose(ptr.raw);
        self.defer_garbage(Garbage {
            epoch: EPOCH.load(Ordering::SeqCst),
            ptr: data.cast::<u8>(),
            dropper: drop_box::<T>,
        });
    }

    /// Schedule an arbitrary closure to run once no pinned thread can
    /// still reach memory unlinked before this call — the general form of
    /// [`defer_destroy`](Self::defer_destroy), used e.g. to *recycle* a
    /// retired allocation into a free pool instead of freeing it.
    ///
    /// The closure runs at most once, on whichever thread performs the
    /// collection (hence `Send`), after two epoch advances.
    #[inline]
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.defer_garbage(Garbage {
            epoch: EPOCH.load(Ordering::SeqCst),
            ptr: Box::into_raw(Box::new(f)).cast::<u8>(),
            dropper: call_closure::<F>,
        });
    }

    /// The raw form of [`defer`](Self::defer): schedule `f(ptr)` after
    /// the grace period. Lets intrusive structures defer non-`'static`
    /// work (the callee recovers its context from the pointee itself).
    ///
    /// # Safety
    ///
    /// `ptr` must stay valid until `f` runs (i.e. be unreachable to
    /// threads that pin later), `f` must be safe to run once on any
    /// thread with that pointer, and the pair must not be deferred
    /// twice.
    #[inline]
    pub unsafe fn defer_with_raw(&self, ptr: *mut u8, f: unsafe fn(*mut u8)) {
        self.defer_garbage(Garbage {
            epoch: EPOCH.load(Ordering::SeqCst),
            ptr,
            dropper: f,
        });
    }

    #[inline]
    fn defer_garbage(&self, garbage: Garbage) {
        // SAFETY: guard is pinned to its creating thread (!Send).
        let l = unsafe { &*self.local };
        GC_DEFERRED.fetch_add(1, Ordering::Relaxed);
        l.bag.borrow_mut().push_back(garbage);
        let n = l.deferred.get() + 1;
        l.deferred.set(n);
        if n.is_multiple_of(COLLECT_EVERY) {
            collect(l);
        }
    }
}

impl Drop for Guard {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: guard is pinned to its creating thread (!Send).
        let l = unsafe { &*self.local };
        let n = l.pins.get() - 1;
        l.pins.set(n);
        if n == 0 {
            l.participant.state.store(0, Ordering::Release);
        }
    }
}

/// An atomic, nullable pointer to a heap `T`, loadable only under a
/// [`Guard`].
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Adopt an existing allocation (shared initialization, e.g. head and
    /// tail both pointing at one sentinel).
    pub fn from_raw(raw: *mut T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(raw),
        }
    }

    /// The raw pointer value — for single-threaded teardown walks only.
    pub fn load_raw(&self) -> *mut T {
        self.ptr.load(Ordering::Relaxed)
    }

    /// Load the current pointer under `_guard`'s protection.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _life: PhantomData,
        }
    }

    /// Unconditionally store `new`. Only sound for unpublished structures
    /// (e.g. initializing a node's links before its publishing CAS); on
    /// shared hot paths use [`compare_exchange`](Self::compare_exchange).
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.ptr.store(new.raw, ord);
    }

    /// Compare-and-swap `current` for `new`; on failure the observed
    /// pointer and the unconsumed `new` come back in the error.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'g, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_raw = new.into_raw();
        match self
            .ptr
            .compare_exchange(current.raw, new_raw, success, failure)
        {
            Ok(_) => Ok(Shared {
                raw: new_raw,
                _life: PhantomData,
            }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    raw: observed,
                    _life: PhantomData,
                },
                // SAFETY: `new_raw` came from `new.into_raw` above and was
                // not installed, so ownership is returned intact.
                new: unsafe { P::from_raw(new_raw) },
            }),
        }
    }
}

/// Failed [`Atomic::compare_exchange`]: the pointer that was found and
/// the new value, returned unconsumed.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// What the atomic actually held.
    pub current: Shared<'g, T>,
    /// The not-installed new value, ownership intact.
    pub new: P,
}

/// An owned heap allocation not yet published to other threads.
pub struct Owned<T> {
    raw: *mut T,
}

impl<T> Owned<T> {
    /// Allocate `value`.
    pub fn new(value: T) -> Self {
        Owned {
            raw: Box::into_raw(Box::new(value)),
        }
    }

    /// Publish: convert into a [`Shared`] usable under `_guard`.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let raw = self.raw;
        std::mem::forget(self);
        Shared {
            raw,
            _life: PhantomData,
        }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: an `Owned` still owns its allocation exclusively.
        drop(unsafe { Box::from_raw(self.raw) });
    }
}

/// A pointer loaded under a [`Guard`]; valid for the guard's lifetime.
pub struct Shared<'g, T> {
    raw: *mut T,
    _life: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            raw: std::ptr::null_mut(),
            _life: PhantomData,
        }
    }

    /// `true` if this is the null pointer (ignoring tag bits).
    pub fn is_null(&self) -> bool {
        decompose(self.raw).0.is_null()
    }

    /// The raw pointer value with tag bits stripped (for identity
    /// comparisons).
    pub fn as_raw(&self) -> *const T {
        decompose(self.raw).0
    }

    /// The tag stored in the pointer's alignment bits (0 when untagged).
    pub fn tag(&self) -> usize {
        decompose(self.raw).1
    }

    /// The same pointer with its tag bits replaced by `tag` (masked to
    /// the bits `T`'s alignment frees up; for the workspace's lock-free
    /// lists, tag 1 is the Harris deletion mark).
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        Shared {
            raw: compose(decompose(self.raw).0, tag),
            _life: PhantomData,
        }
    }

    /// Dereference without a null check (tag bits stripped).
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and must have been loaded under the
    /// guard that bounds `'g`.
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*decompose(self.raw).0 }
    }

    /// Dereference, mapping null to `None` (tag bits stripped).
    ///
    /// # Safety
    ///
    /// Non-null pointers must have been loaded under the guard that
    /// bounds `'g`.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        unsafe { decompose(self.raw).0.as_ref() }
    }
}

/// Pointer-like types an [`Atomic`] can install ([`Owned`] for fresh
/// allocations, [`Shared`] for already-published ones).
pub trait Pointer<T> {
    /// Surrender the raw pointer.
    fn into_raw(self) -> *mut T;

    /// Reclaim from a raw pointer previously produced by
    /// [`into_raw`](Pointer::into_raw).
    ///
    /// # Safety
    ///
    /// Must only be called with a pointer from `into_raw` whose ownership
    /// was not transferred elsewhere.
    unsafe fn from_raw(raw: *mut T) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_raw(self) -> *mut T {
        let raw = self.raw;
        std::mem::forget(self);
        raw
    }

    unsafe fn from_raw(raw: *mut T) -> Self {
        Owned { raw }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_raw(self) -> *mut T {
        self.raw
    }

    unsafe fn from_raw(raw: *mut T) -> Self {
        Shared {
            raw,
            _life: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct DropCounter(Arc<AtomicUsize>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn deferred_destruction_eventually_runs() {
        let drops = Arc::new(AtomicUsize::new(0));
        let n = 4 * COLLECT_EVERY;
        for _ in 0..n {
            let guard = pin();
            let a = Atomic::new(DropCounter(Arc::clone(&drops)));
            let shared = a.load(Ordering::Acquire, &guard);
            unsafe { guard.defer_destroy(shared) };
        }
        // Keep collecting from an unpinned state until the early bags age
        // out; every deferral above must eventually be dropped.
        for _ in 0..16 {
            let guard = pin();
            let a = Atomic::new(DropCounter(Arc::clone(&drops)));
            let shared = a.load(Ordering::Acquire, &guard);
            unsafe { guard.defer_destroy(shared) };
            drop(guard);
            LOCAL.with(collect);
        }
        assert!(
            drops.load(Ordering::SeqCst) >= n,
            "only {} of {n} deferred drops ran",
            drops.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pinned_thread_blocks_reclamation_of_its_epoch() {
        let guard = pin();
        let before = EPOCH.load(Ordering::SeqCst);
        // Our own pin participates: the epoch can advance at most once
        // past the epoch we pinned at, however often others try.
        for _ in 0..10 {
            try_advance();
        }
        let after = EPOCH.load(Ordering::SeqCst);
        assert!(
            after <= before + 1,
            "epoch ran from {before} to {after} past a pinned thread"
        );
        drop(guard);
    }

    #[test]
    fn cas_returns_ownership_on_failure() {
        let guard = pin();
        let a = Atomic::new(1u64);
        let current = a.load(Ordering::Acquire, &guard);
        let stale = Shared::null();
        match a.compare_exchange(
            stale,
            Owned::new(2u64),
            Ordering::AcqRel,
            Ordering::Acquire,
            &guard,
        ) {
            Ok(_) => panic!("CAS against a stale pointer must fail"),
            Err(e) => {
                assert_eq!(e.current.as_raw(), current.as_raw());
                drop(e.new); // Owned comes back and frees cleanly.
            }
        }
        unsafe { guard.defer_destroy(current) };
    }

    #[test]
    fn tags_ride_the_alignment_bits() {
        let guard = pin();
        let a = Atomic::new(7u64); // align 8 => 3 tag bits
        let p = a.load(Ordering::Acquire, &guard);
        assert_eq!(p.tag(), 0);
        let marked = p.with_tag(1);
        assert_eq!(marked.tag(), 1);
        assert_eq!(marked.as_raw(), p.as_raw());
        assert!(!marked.is_null());
        assert_eq!(unsafe { *marked.deref() }, 7);
        // CAS distinguishes tagged from untagged values of the same ptr.
        assert!(a
            .compare_exchange(marked, p, Ordering::AcqRel, Ordering::Acquire, &guard)
            .is_err());
        assert!(a
            .compare_exchange(p, marked, Ordering::AcqRel, Ordering::Acquire, &guard)
            .is_ok());
        assert_eq!(a.load(Ordering::Acquire, &guard).tag(), 1);
        // Tagged null is still null.
        assert!(Shared::<u64>::null().with_tag(1).is_null());
        unsafe { guard.defer_destroy(marked) }; // strips the tag internally
    }

    #[test]
    fn deferred_closures_eventually_run() {
        let ran = Arc::new(AtomicUsize::new(0));
        let n = 2 * COLLECT_EVERY;
        for _ in 0..n {
            let guard = pin();
            let ran = Arc::clone(&ran);
            guard.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..16 {
            let guard = pin();
            let ran2 = Arc::clone(&ran);
            guard.defer(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            });
            drop(guard);
            LOCAL.with(collect);
        }
        assert!(
            ran.load(Ordering::SeqCst) >= n,
            "only {} of {n} deferred closures ran",
            ran.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn concurrent_defer_storm_is_safe() {
        let drops = Arc::new(AtomicUsize::new(0));
        let threads = 4;
        let per = 8 * COLLECT_EVERY;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let drops = Arc::clone(&drops);
                s.spawn(move || {
                    for _ in 0..per {
                        let guard = pin();
                        let a = Atomic::new(DropCounter(Arc::clone(&drops)));
                        let shared = a.load(Ordering::Acquire, &guard);
                        unsafe { guard.defer_destroy(shared) };
                    }
                });
            }
        });
        // No assertion on the exact count (stragglers may sit in orphan
        // bags), only that a healthy majority was reclaimed and nothing
        // crashed or double-freed.
        assert!(drops.load(Ordering::SeqCst) > 0);
    }
}
