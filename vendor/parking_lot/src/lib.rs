//! Offline stand-in for the `parking_lot` crate: a [`Mutex`] with the
//! parking_lot API shape (no poisoning, `try_lock` returning `Option`),
//! implemented over `std::sync::Mutex`. Poison errors are swallowed by
//! design — parking_lot has no poisoning, and the workspace's queues rely
//! on that (a panicking worker must not wedge every other worker).

use std::sync::TryLockError;

/// Guard type: identical to the std guard, re-exported under the
/// parking_lot name.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_try_lock_roundtrip() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must not be reacquirable");
        }
        assert_eq!(*m.try_lock().expect("free lock"), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning, just works
        assert_eq!(*m.lock(), 1);
    }
}
