//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact* API surface it uses: [`RngCore`] /
//! [`Rng`] / [`SeedableRng`], [`rngs::SmallRng`], [`seq::SliceRandom`],
//! [`thread_rng`], `gen`, `gen_bool` and `gen_range` over integer and
//! float ranges. The generator behind [`rngs::SmallRng`] is
//! xoshiro256++ seeded via splitmix64 — the same family the real
//! `SmallRng` uses on 64-bit targets, so statistical quality matches
//! what the experiments assume. Streams differ from the real crate's,
//! which is fine: every consumer seeds explicitly and asserts
//! seed-independent properties.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full bit pattern.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that support uniform sampling (`Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draw one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` over its full natural domain
    /// (`[0, 1)` for floats, all bit patterns for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A fresh, non-deterministically seeded generator.
///
/// Seeded from the monotonic clock plus a process-wide counter; use
/// [`SeedableRng::seed_from_u64`] wherever reproducibility matters.
pub fn thread_rng() -> rngs::SmallRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::SmallRng::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1u64..=100);
            assert!((1..=100).contains(&v));
            let v = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hist = [0u32; 10];
        for _ in 0..100_000 {
            hist[rng.gen_range(0usize..10)] += 1;
        }
        for &h in &hist {
            assert!(
                (8_000..12_000).contains(&h),
                "bucket count {h} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
