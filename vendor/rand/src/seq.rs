//! Sequence-related random operations.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
