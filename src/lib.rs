//! # relaxed-schedulers
//!
//! A from-scratch Rust reproduction of Alistarh, Koval and Nadiradze,
//! *"Efficiency Guarantees for Parallel Incremental Algorithms under Relaxed
//! Schedulers"* (SPAA 2019, arXiv:2003.09363).
//!
//! Incremental algorithms — Dijkstra's SSSP, Delaunay mesh triangulation,
//! sorting by BST insertion — are classically driven by an exact priority
//! queue. Scalable parallel runtimes replace it with a **relaxed** scheduler
//! that may return any of the `k` highest-priority tasks. The paper proves
//! that the wasted work this relaxation causes is small
//! (`O(poly(k) log n)` extra steps for the incremental algorithms,
//! `n + O(k² d_max/w_min)` pops for SSSP) and exhibits an `Ω(log n)` lower
//! bound under the MultiQueue. This workspace implements the schedulers, the
//! model, the algorithms and the full experiment suite.
//!
//! ## Crates
//!
//! | crate | contents |
//! |-------|----------|
//! | [`queues`] | indexed binary heap, pairing heap, MultiQueue (sequential + concurrent + duplicate-insertion), SprayList, deterministic rotating k-queue, rank/fairness instrumentation |
//! | [`core`] | the `Q_k` scheduler model, Algorithm 1/2 executors with extra-step accounting, adversarial schedulers, the Section 4 transactional simulator, theorem formulas |
//! | [`graph`] | CSR graphs, random/road/social generators, DIMACS & SNAP loaders, Dijkstra / Δ-stepping / Bellman–Ford baselines |
//! | [`geometry`] | exact integer predicates, triangle mesh, Bowyer–Watson with conflict lists |
//! | [`algos`] | BST-insertion sorting, Delaunay, relaxed SSSP (sequential-model + concurrent), greedy MIS & coloring |
//!
//! ## Quickstart
//!
//! ```
//! use relaxed_schedulers::prelude::*;
//!
//! // A random graph like the paper's (scaled down).
//! let g = random_gnm(10_000, 100_000, 1..=100, 42);
//!
//! // Parallel SSSP via a MultiQueue with 2 queues per thread.
//! let stats = parallel_sssp(&g, 0, ParSsspConfig {
//!     threads: 4,
//!     queue_multiplier: 2,
//!     seed: 7,
//! });
//!
//! // Exact on the same graph: the relaxation overhead is executed / n.
//! let exact = dijkstra(&g, 0);
//! assert_eq!(stats.dist, exact.dist);
//! println!("overhead = {:.4}", stats.overhead());
//! ```

pub use rsched_algos as algos;
pub use rsched_core as core;
pub use rsched_geometry as geometry;
pub use rsched_graph as graph;
pub use rsched_queues as queues;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use rsched_algos::{
        parallel_delta_stepping, parallel_sssp, parallel_sssp_duplicates,
        parallel_sssp_spraylist, relaxed_sssp_seq,
        BnbStats, BstSort, ConcurrentBstSort, ConcurrentColoring, ConcurrentMis, DelaunayIncremental,
        GreedyColoring, GreedyMis, Knapsack, ParSsspConfig, ParSsspStats, SeqSsspStats,
    };
    pub use rsched_core::{
        run_exact, run_relaxed, run_relaxed_parallel, run_relaxed_traced, run_relaxed_with,
        AdversarialScheduler, AdversaryStrategy, ConcurrentIncremental, ExecStats,
        IncrementalAlgorithm, ParExecStats, TraceEntry,
    };
    pub use rsched_core::{run_transactional, TxConfig, TxStats, TxStrategy};
    pub use rsched_geometry::{delaunay, random_points, DelaunayState, Point};
    pub use rsched_graph::gen::{
        bucket_chain, bucket_chain_weights, complete_graph, grid_road, path_graph, power_law,
        random_gnm, rmat, star_graph,
    };
    pub use rsched_graph::{
        bellman_ford, delta_stepping, dijkstra, CsrGraph, GraphBuilder, SsspResult, Weight, INF,
    };
    pub use rsched_queues::{
        ConcurrentMultiQueue, ConcurrentSprayList, DecreaseKey, DuplicateMultiQueue, Exact,
        IndexedBinaryHeap, KLsmHandle, KLsmQueue, PairingHeap, PriorityQueue, RankStats, RankTracker, RelaxedQueue,
        RotatingKQueue, SimMultiQueue, SprayList, StickySession,
    };
}
