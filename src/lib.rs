//! # relaxed-schedulers
//!
//! A from-scratch Rust reproduction of Alistarh, Koval and Nadiradze,
//! *"Efficiency Guarantees for Parallel Incremental Algorithms under Relaxed
//! Schedulers"* (SPAA 2019, arXiv:2003.09363).
//!
//! Incremental algorithms — Dijkstra's SSSP, Delaunay mesh triangulation,
//! sorting by BST insertion — are classically driven by an exact priority
//! queue. Scalable parallel runtimes replace it with a **relaxed** scheduler
//! that may return any of the `k` highest-priority tasks. The paper proves
//! that the wasted work this relaxation causes is small
//! (`O(poly(k) log n)` extra steps for the incremental algorithms,
//! `n + O(k² d_max/w_min)` pops for SSSP) and exhibits an `Ω(log n)` lower
//! bound under the MultiQueue. This workspace implements the schedulers, the
//! model, the algorithms and the full experiment suite.
//!
//! ## Crates
//!
//! | crate | contents |
//! |-------|----------|
//! | [`queues`] | indexed binary heap, pairing heap, MultiQueue (sequential + concurrent + duplicate-insertion), SprayList, deterministic rotating k-queue, relaxed FIFO family (d-RA, d-CBO) over pluggable shard backends (mutex, Michael–Scott, segmented ring — the lock-free backends epoch-reclaimed), rank/fairness instrumentation plus a concurrent timestamp-based FIFO rank-error estimator |
//! | [`runtime`] | the sharded concurrent scheduling runtime: worker pool, `Scheduler` trait over relaxed queues, quiescence termination detection, per-worker stats, fork-join helper |
//! | [`core`] | the `Q_k` scheduler model, Algorithm 1/2 executors with extra-step accounting, adversarial schedulers, the Section 4 transactional simulator, theorem formulas |
//! | [`graph`] | CSR graphs, random/road/social generators, DIMACS & SNAP loaders, BFS / Dijkstra / Δ-stepping / Bellman–Ford baselines |
//! | [`geometry`] | exact integer predicates, triangle mesh, Bowyer–Watson with conflict lists |
//! | [`algos`] | BST-insertion sorting, Delaunay, relaxed SSSP (sequential-model + concurrent), relaxed-FIFO BFS, k-core peeling, greedy MIS & coloring |
//! | [`serve`] | the open-system serving front-end: length-prefixed binary wire protocol, TCP/Unix-socket connection loop, bounded-queue admission control, graceful drain, per-request sojourn histograms (`rsched-serve` binary) |
//!
//! ## Architecture: one runtime, many orders
//!
//! Every truly concurrent executor is a task handler over the
//! [`runtime`]'s worker pool ([`runtime::run`]): the pool owns the
//! threads, the pop→handle→re-queue loop, quiescence termination
//! detection and per-worker statistics, while the queue behind it decides
//! the scheduling order — relaxed *priority* (`ConcurrentMultiQueue`,
//! `ConcurrentSprayList`, `DuplicateMultiQueue`) for SSSP and the
//! iterative algorithms, relaxed *FIFO* (`DCboQueue`, `DRaQueue`) for
//! BFS frontiers, label propagation and k-core peeling, and the
//! **bucketed hybrid** (`BucketFifoQueue`: a relaxed FIFO of Δ-wide
//! buckets, each bucket a relaxed priority shard set) for barrier-free
//! Δ-stepping (`relaxed_delta_stepping`). The relaxed-FIFO shards
//! default to the lock-free segmented ring buffer in
//! `rsched_queues::lockfree` (Michael–Scott and the PR 1 mutex baseline
//! stay selectable through the `SubFifo` trait); the priority shards —
//! in the MultiQueue and inside every hybrid bucket — default to the
//! lock-free skiplist in `rsched_queues::skipshard`.
//!
//! Every worker owns a **session** (`Scheduler::Session`, built from the
//! `rsched_queues` worker-session layer): the amortized epoch pin, the
//! worker's shard-picker RNG, its owned *home shards* (drained before
//! choice-of-two stealing; `RSCHED_SHARDS_PER_WORKER`), the MultiQueue's
//! sticky peek cache, and a bounded spawn buffer that publishes batches
//! (`RSCHED_SPAWN_BATCH`) — one abstraction where earlier revisions had
//! `PinSession` threading, `StickySession` and thread-local picker RNGs.
//!
//! On top of the pool, [`runtime::service()`] keeps the workers resident
//! between submissions (external injectors + idle parking instead of the
//! run-to-quiescence loop), and the [`serve`] crate exposes that as a
//! long-lived network service: an open system where requests *arrive*
//! over a wire protocol at some rate, wait in the relaxed queue, execute,
//! and report their end-to-end sojourn time — the measurement regime
//! (open-loop arrivals, tail quantiles, admission control) that
//! closed-loop throughput benchmarks cannot express.
//!
//! ## Relaxed-FIFO BFS quickstart
//!
//! ```
//! use relaxed_schedulers::prelude::*;
//!
//! let g = random_gnm(10_000, 100_000, 1..=100, 42);
//!
//! // BFS over a d-CBO relaxed FIFO frontier with 8 shards.
//! let stats = parallel_bfs(&g, 0, ParSsspConfig {
//!     threads: 4,
//!     queue_multiplier: 2,
//!     seed: 7,
//! });
//!
//! // Relaxation reorders expansions but never changes the layering.
//! assert_eq!(stats.dist, bfs(&g, 0));
//! println!("overhead = {:.4}, steals = {}", stats.overhead(), stats.steals);
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use relaxed_schedulers::prelude::*;
//!
//! // A random graph like the paper's (scaled down).
//! let g = random_gnm(10_000, 100_000, 1..=100, 42);
//!
//! // Parallel SSSP via a MultiQueue with 2 queues per thread.
//! let stats = parallel_sssp(&g, 0, ParSsspConfig {
//!     threads: 4,
//!     queue_multiplier: 2,
//!     seed: 7,
//! });
//!
//! // Exact on the same graph: the relaxation overhead is executed / n.
//! let exact = dijkstra(&g, 0);
//! assert_eq!(stats.dist, exact.dist);
//! println!("overhead = {:.4}", stats.overhead());
//! ```

pub use rsched_algos as algos;
pub use rsched_core as core;
pub use rsched_geometry as geometry;
pub use rsched_graph as graph;
pub use rsched_queues as queues;
pub use rsched_runtime as runtime;
pub use rsched_serve as serve;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use rsched_algos::{
        kcore_sequential, label_components, parallel_bfs, parallel_delta_stepping, parallel_kcore,
        parallel_label_propagation, parallel_sssp, parallel_sssp_duplicates,
        parallel_sssp_spraylist, relaxed_delta_stepping, relaxed_sssp_seq, BnbStats, BstSort,
        ConcurrentBstSort, ConcurrentColoring, ConcurrentMis, DelaunayIncremental, GreedyColoring,
        GreedyMis, KcoreStats, Knapsack, LabelPropConfig, LabelPropStats, ParBfsStats,
        ParSsspConfig, ParSsspStats, SeqSsspStats,
    };
    pub use rsched_core::{
        run_exact, run_relaxed, run_relaxed_parallel, run_relaxed_traced, run_relaxed_with,
        AdversarialScheduler, AdversaryStrategy, ConcurrentIncremental, ExecStats,
        IncrementalAlgorithm, ParExecStats, TraceEntry,
    };
    pub use rsched_core::{run_transactional, TxConfig, TxStats, TxStrategy};
    pub use rsched_geometry::{delaunay, random_points, DelaunayState, Point};
    pub use rsched_graph::gen::{
        bucket_chain, bucket_chain_weights, complete_graph, grid_road, path_graph, power_law,
        random_gnm, rmat, star_graph,
    };
    pub use rsched_graph::{
        bellman_ford, bfs, delta_stepping, dijkstra, CsrGraph, GraphBuilder, SsspResult, Weight,
        INF,
    };
    pub use rsched_queues::{
        BucketFifoQueue, BucketSession, ConcurrentMultiQueue, ConcurrentRankEstimator,
        ConcurrentSprayList, DCboMsQueue, DCboMutexQueue, DCboQueue, DCboSegQueue, DRaMsQueue,
        DRaMutexQueue, DRaQueue, DRaSegQueue, DecreaseKey, DuplicateMultiQueue, Exact,
        FifoRankStats, FifoRankTracker, FifoSession, FlushReport, IndexedBinaryHeap, KLsmHandle,
        KLsmQueue, MqSession, MsQueue, MutexSub, PairingHeap, PinSession, PopSource, PriorityQueue,
        PushOutcome, QueueBuilder, RankStats, RankTracker, RelaxedFifo, RelaxedQueue,
        RotatingKQueue, SegRingQueue, SessionConfig, SessionPush, SimMultiQueue, SprayList,
        SubFifo,
    };
    pub use rsched_runtime::run as run_pool;
    pub use rsched_runtime::{
        map_chunks, ActiveCounter, PoolStats, RuntimeConfig, Scheduler, ShardedCounter,
        TaskOutcome, Worker, WorkerStats,
    };
}
