//! The incremental-algorithm execution framework of Section 3.
//!
//! The paper models an incremental algorithm as `n` tasks with unique labels
//! (lower label = higher priority), executed one by one against shared
//! state. Executing with an exact priority queue (Algorithm 1) performs
//! exactly `n` steps; executing with a `k`-relaxed queue (Algorithm 2) may
//! return tasks whose lower-label dependencies are unprocessed — each such
//! event costs an **extra step**, and the total number of extra steps is the
//! wasted work the paper bounds (Theorem 3.3: `O(poly(k) · log n)` in
//! expectation for algorithms with the Section 3.1 dependency properties).

use rsched_queues::RelaxedQueue;
use std::collections::BTreeSet;

/// An incremental algorithm in the paper's Section 3 sense: `n` tasks,
/// identified by their **label** `0..n` (the label *is* the priority; the
/// random permutation of randomized incremental algorithms is applied when
/// the instance is constructed), shared state updated by `process`.
pub trait IncrementalAlgorithm {
    /// Total number of tasks. Labels are `0..num_tasks()`.
    fn num_tasks(&self) -> usize;

    /// `true` iff every task that `task` depends on (all of which have
    /// smaller labels) has already been processed — Algorithm 2's
    /// `CheckDependencies`.
    fn deps_satisfied(&self, task: usize) -> bool;

    /// Execute `task` against the shared state. Only called when
    /// [`deps_satisfied`](IncrementalAlgorithm::deps_satisfied) is `true`.
    fn process(&mut self, task: usize);
}

/// Execution statistics of a (relaxed or exact) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scheduler interactions (`ApproxGetMin` calls) — the paper's steps.
    pub steps: u64,
    /// Tasks actually processed (equals `n` on completion).
    pub processed: u64,
    /// Steps wasted on tasks whose dependencies were unsatisfied:
    /// `steps − processed`, the paper's "extra steps".
    pub extra_steps: u64,
}

impl ExecStats {
    /// Wasted-work overhead ratio: `steps / processed` (1.0 = no waste).
    pub fn overhead(&self) -> f64 {
        if self.processed == 0 {
            return 1.0;
        }
        self.steps as f64 / self.processed as f64
    }
}

/// Algorithm 1: execute with an exact scheduler. Exactly `n` steps; the
/// top-priority task never has unprocessed dependencies (dependencies point
/// only to smaller labels).
pub fn run_exact<A: IncrementalAlgorithm>(alg: &mut A) -> ExecStats {
    let n = alg.num_tasks();
    for task in 0..n {
        debug_assert!(
            alg.deps_satisfied(task),
            "exact order reached task {task} with unsatisfied dependencies — \
             the algorithm's dependencies are not label-monotone"
        );
        alg.process(task);
    }
    ExecStats {
        steps: n as u64,
        processed: n as u64,
        extra_steps: 0,
    }
}

/// Algorithm 2: execute with any [`RelaxedQueue`] (MultiQueue, SprayList,
/// deterministic k-bounded, adversarial, or `Exact` as the `k = 1`
/// baseline).
///
/// Each scheduler interaction peeks a task; if its dependencies are
/// satisfied it is deleted and processed, otherwise the step is wasted and
/// the task remains queued — exactly the pseudocode of Algorithm 2.
///
/// # Examples
///
/// ```
/// use rsched_core::{run_relaxed, IncrementalAlgorithm};
/// use rsched_queues::SimMultiQueue;
///
/// /// Toy chain: task i depends on task i - 1.
/// struct Chain {
///     done: Vec<bool>,
/// }
/// impl IncrementalAlgorithm for Chain {
///     fn num_tasks(&self) -> usize {
///         self.done.len()
///     }
///     fn deps_satisfied(&self, t: usize) -> bool {
///         t == 0 || self.done[t - 1]
///     }
///     fn process(&mut self, t: usize) {
///         self.done[t] = true;
///     }
/// }
///
/// let mut alg = Chain { done: vec![false; 100] };
/// let mut q = SimMultiQueue::new(4, 7);
/// let stats = run_relaxed(&mut alg, &mut q);
/// assert_eq!(stats.processed, 100);
/// assert!(alg.done.iter().all(|&d| d));
/// // The chain is the worst case: most relaxed returns are blocked.
/// assert!(stats.extra_steps > 0);
/// ```
pub fn run_relaxed<A, Q>(alg: &mut A, queue: &mut Q) -> ExecStats
where
    A: IncrementalAlgorithm,
    Q: RelaxedQueue<u64>,
{
    let n = alg.num_tasks();
    for task in 0..n {
        queue.insert(task, task as u64);
    }
    let mut stats = ExecStats::default();
    while let Some((task, _)) = queue.peek_relaxed() {
        stats.steps += 1;
        if alg.deps_satisfied(task) {
            let deleted = queue.delete(task);
            debug_assert!(deleted);
            alg.process(task);
            stats.processed += 1;
        } else {
            stats.extra_steps += 1;
        }
    }
    debug_assert_eq!(stats.processed as usize, n);
    debug_assert_eq!(stats.steps, stats.processed + stats.extra_steps);
    stats
}

/// Algorithm 2 with a *caller-supplied adversary*: the scheduler is an
/// exact ordered set, and on every step `pick` chooses which element of the
/// top-`k` window to return — with full read access to the algorithm state,
/// so it can deliberately return blocked tasks. RankBound is enforced by
/// construction (the window is the top `min(k, len)`), Fairness by forcing
/// the window's first element after it has been skipped `k − 1` times.
///
/// This realizes the paper's "the scheduler may in fact be adversarial —
/// actively trying to get the algorithm to waste steps, up to \[the\] rank
/// inversion and fairness constraints".
pub fn run_relaxed_with<A, F>(alg: &mut A, k: usize, pick: F) -> ExecStats
where
    A: IncrementalAlgorithm,
    F: FnMut(&A, &[usize]) -> usize,
{
    run_relaxed_traced(alg, k, pick, |_| {})
}

/// One scheduler interaction in a traced run (see [`run_relaxed_traced`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The task the scheduler actually returned (after any fairness
    /// override of the adversary's pick).
    pub task: usize,
    /// Whether the task's dependencies were satisfied (it was processed) or
    /// the step was wasted.
    pub processed: bool,
}

/// [`run_relaxed_with`] that additionally reports every scheduler
/// interaction to `observe` — the exact sequence of returned tasks,
/// *including* fairness-forced returns the adversary did not choose. The
/// lemma-validation tests and schedule-trace experiments build on this.
pub fn run_relaxed_traced<A, F, O>(alg: &mut A, k: usize, mut pick: F, mut observe: O) -> ExecStats
where
    A: IncrementalAlgorithm,
    F: FnMut(&A, &[usize]) -> usize,
    O: FnMut(TraceEntry),
{
    assert!(k >= 1);
    let n = alg.num_tasks();
    let mut queue: BTreeSet<usize> = (0..n).collect();
    let mut stats = ExecStats::default();
    let mut current_top: Option<usize> = None;
    let mut skips = 0usize;
    let mut window: Vec<usize> = Vec::with_capacity(k);
    while !queue.is_empty() {
        window.clear();
        window.extend(queue.iter().take(k).copied());
        let top = window[0];
        if current_top != Some(top) {
            current_top = Some(top);
            skips = 0;
        }
        // Fairness: after k−1 skips the top must be returned.
        let chosen = if skips >= k - 1 {
            top
        } else {
            let idx = pick(alg, &window);
            assert!(idx < window.len(), "adversary picked outside the window");
            window[idx]
        };
        if chosen == top {
            skips = 0;
        } else {
            skips += 1;
        }
        stats.steps += 1;
        let ok = alg.deps_satisfied(chosen);
        observe(TraceEntry {
            task: chosen,
            processed: ok,
        });
        if ok {
            queue.remove(&chosen);
            if Some(chosen) == current_top {
                current_top = None;
            }
            alg.process(chosen);
            stats.processed += 1;
        } else {
            stats.extra_steps += 1;
        }
    }
    debug_assert_eq!(stats.processed as usize, n);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_queues::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue};

    /// Chain dependency: task i depends on i − 1 (worst case for relaxation).
    struct Chain {
        done: Vec<bool>,
        next: usize,
    }

    impl Chain {
        fn new(n: usize) -> Self {
            Self {
                done: vec![false; n],
                next: 0,
            }
        }
    }

    impl IncrementalAlgorithm for Chain {
        fn num_tasks(&self) -> usize {
            self.done.len()
        }
        fn deps_satisfied(&self, t: usize) -> bool {
            t == 0 || self.done[t - 1]
        }
        fn process(&mut self, t: usize) {
            assert_eq!(t, self.next, "chain must be processed in order");
            self.done[t] = true;
            self.next = t + 1;
        }
    }

    /// Fully independent tasks: relaxation can never waste a step.
    struct Independent {
        done: Vec<bool>,
    }

    impl IncrementalAlgorithm for Independent {
        fn num_tasks(&self) -> usize {
            self.done.len()
        }
        fn deps_satisfied(&self, _t: usize) -> bool {
            true
        }
        fn process(&mut self, t: usize) {
            assert!(!self.done[t]);
            self.done[t] = true;
        }
    }

    #[test]
    fn exact_run_is_n_steps() {
        let mut alg = Chain::new(50);
        let stats = run_exact(&mut alg);
        assert_eq!(stats.steps, 50);
        assert_eq!(stats.extra_steps, 0);
        assert_eq!(stats.overhead(), 1.0);
    }

    #[test]
    fn relaxed_with_exact_queue_matches_exact() {
        let mut alg = Chain::new(50);
        let mut q = Exact(IndexedBinaryHeap::new());
        let stats = run_relaxed(&mut alg, &mut q);
        assert_eq!(stats.steps, 50);
        assert_eq!(stats.extra_steps, 0);
    }

    #[test]
    fn independent_tasks_never_waste_steps() {
        let mut alg = Independent {
            done: vec![false; 200],
        };
        let mut q = SimMultiQueue::new(8, 3);
        let stats = run_relaxed(&mut alg, &mut q);
        assert_eq!(stats.steps, 200);
        assert_eq!(stats.extra_steps, 0);
        assert!(alg.done.iter().all(|&d| d));
    }

    #[test]
    fn chain_under_rotating_k_wastes_bounded_steps() {
        let n = 300;
        let k = 5;
        let mut alg = Chain::new(n);
        let mut q = RotatingKQueue::new(k);
        let stats = run_relaxed(&mut alg, &mut q);
        assert_eq!(stats.processed, n as u64);
        // For the chain, only the current head is processable: the rotating
        // scheduler returns it once per window cycle, so extra steps are at
        // most (k − 1) · n and at least ~n when k is small.
        assert!(stats.extra_steps <= ((k - 1) * n) as u64);
        assert!(stats.extra_steps > 0);
    }

    #[test]
    fn adversarial_maxrank_completes_and_charges() {
        let n = 200;
        let k = 4;
        let mut alg = Chain::new(n);
        // Always pick the worst allowed (last) window element.
        let stats = run_relaxed_with(&mut alg, k, |_, w| w.len() - 1);
        assert_eq!(stats.processed, n as u64);
        // The adversary wastes k−1 steps per processed head task at most.
        assert!(stats.extra_steps <= ((k - 1) * n) as u64);
        assert!(stats.extra_steps >= (n / 2) as u64, "adversary too weak");
    }

    #[test]
    fn adversarial_fairness_is_enforced() {
        // A pick function that *always* chooses the last element would
        // starve the head; fairness must force the head every k-th step, so
        // the run terminates.
        let n = 64;
        let k = 8;
        let mut alg = Chain::new(n);
        let stats = run_relaxed_with(&mut alg, k, |_, w| w.len() - 1);
        assert_eq!(stats.processed, n as u64);
        // Exactly: head processed every k-th step => steps ≈ k·n.
        assert!(stats.steps <= (k * n) as u64);
    }

    #[test]
    fn dependency_aware_adversary_is_worse_than_random() {
        let n = 400;
        let k = 6;
        // Dependency-aware: among the window, prefer a blocked task.
        let mut alg1 = Chain::new(n);
        let dep_stats = run_relaxed_with(&mut alg1, k, |alg, w| {
            w.iter().position(|&t| !alg.deps_satisfied(t)).unwrap_or(0)
        });
        // Benign: always pick the head (exact behaviour).
        let mut alg2 = Chain::new(n);
        let benign_stats = run_relaxed_with(&mut alg2, k, |_, _| 0);
        assert_eq!(benign_stats.extra_steps, 0);
        assert!(dep_stats.extra_steps > 0);
    }

    #[test]
    fn relaxed_with_k1_is_exact() {
        let n = 100;
        let mut alg = Chain::new(n);
        let stats = run_relaxed_with(&mut alg, 1, |_, _| 0);
        assert_eq!(stats.steps, n as u64);
        assert_eq!(stats.extra_steps, 0);
    }

    #[test]
    fn stats_accounting_consistent() {
        let mut alg = Chain::new(120);
        let mut q = SimMultiQueue::new(6, 11);
        let s = run_relaxed(&mut alg, &mut q);
        assert_eq!(s.steps, s.processed + s.extra_steps);
        assert!(s.overhead() >= 1.0);
    }
}
