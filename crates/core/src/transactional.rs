//! The transactional execution model of Section 4.
//!
//! Tasks run as transactions scheduled by a *transactional scheduler*; a
//! transaction **aborts iff it is executed concurrently with a transaction
//! it depends on** (conflicts are resolved in favour of the higher-priority,
//! i.e. lower-label, transaction). Interval contention — the number of
//! transactions concurrent with any one transaction — is bounded, and the
//! scheduler obeys transactional analogues of RankBound and Fairness.
//! Theorem 4.3 bounds the expected number of aborts by
//! `O(k²(C + k)² log n)` for incremental algorithms with the Section 3.1
//! dependency properties.
//!
//! [`run_transactional`] is a discrete-time simulator of this model:
//!
//! * time advances in steps; at each step, transactions whose execution
//!   interval ends attempt to **commit** (in label order), then the
//!   scheduler **dispenses** one available pending transaction, which runs
//!   for [`TxConfig::duration`] steps;
//! * a transaction is *available* iff at most `k` transactions with smaller
//!   labels are not yet committed (the paper's transactional RankBound),
//!   and the smallest pending label is force-dispensed after `k − 1`
//!   consecutive non-minimum dispenses (Fairness);
//! * a running transaction aborts when an ancestor (smaller-label
//!   dependency) commits during its interval, or when it attempts to commit
//!   while an ancestor is still running; aborted transactions re-enter the
//!   pending set and retry.
//!
//! The *interval contention* `C` of the run is measured and reported, so
//! experiments can compare abort counts against the Theorem 4.3 bound with
//! the empirical `C`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Dispense strategies for the transactional scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxStrategy {
    /// Uniformly random available transaction (benign relaxed scheduler).
    Random,
    /// Always the largest-label available transaction (adversarial).
    MaxLabel,
}

/// Configuration of a transactional run.
#[derive(Clone, Copy, Debug)]
pub struct TxConfig {
    /// Relaxation factor `k` of the transactional scheduler.
    pub k: usize,
    /// Execution interval length in steps; interval contention is
    /// `O(duration)` because one transaction starts per step.
    pub duration: usize,
    /// Dispense strategy.
    pub strategy: TxStrategy,
    /// RNG seed (used by [`TxStrategy::Random`]).
    pub seed: u64,
}

impl Default for TxConfig {
    fn default() -> Self {
        Self {
            k: 4,
            duration: 4,
            strategy: TxStrategy::Random,
            seed: 0,
        }
    }
}

/// Outcome statistics of a transactional run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Committed transactions (= `n` on completion).
    pub commits: u64,
    /// Aborted executions — the paper's wasted work (Theorem 4.3).
    pub aborts: u64,
    /// Scheduler dispenses (commits + aborts, by construction).
    pub dispenses: u64,
    /// Simulated time steps.
    pub steps: u64,
    /// Maximum observed interval contention: the largest number of other
    /// transactions concurrent with any single execution. This is the
    /// empirical `C` of Theorem 4.3.
    pub max_contention: usize,
}

#[derive(Clone, Copy, Debug)]
struct Running {
    task: usize,
    end: u64,
    /// Transactions that have overlapped this execution so far.
    contention: usize,
    /// Set when an ancestor committed during this interval.
    doomed: bool,
}

/// Simulate the Section 4 transactional model for `n` transactions with the
/// dependency oracle `deps(i, j)` (`true` iff transaction `j` depends on
/// transaction `i`; only queried for `i < j`).
///
/// # Examples
///
/// ```
/// use rsched_core::{run_transactional, TxConfig, TxStrategy};
///
/// // Chain dependencies: j depends on j - 1.
/// let stats = run_transactional(100, |i, j| j == i + 1, TxConfig {
///     k: 4,
///     duration: 3,
///     strategy: TxStrategy::Random,
///     seed: 7,
/// });
/// assert_eq!(stats.commits, 100);
/// // The chain forces aborts under concurrent speculative execution.
/// assert!(stats.aborts > 0);
/// ```
pub fn run_transactional<D>(n: usize, deps: D, cfg: TxConfig) -> TxStats
where
    D: Fn(usize, usize) -> bool,
{
    assert!(cfg.k >= 1 && cfg.duration >= 1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut pending: BTreeSet<usize> = (0..n).collect();
    let mut committed = vec![false; n];
    let mut n_committed = 0usize;
    let mut running: Vec<Running> = Vec::new();
    let mut stats = TxStats::default();
    let mut skips = 0usize; // consecutive dispenses that skipped the minimum
    let mut time = 0u64;
    while n_committed < n {
        // --- Phase 1: commit/abort transactions whose interval ends now,
        // in label order (higher priority commits first).
        let mut ending: Vec<usize> = running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.end == time)
            .map(|(i, _)| i)
            .collect();
        ending.sort_by_key(|&i| running[i].task);
        // Collect outcomes first (indices into `running`), then remove.
        let mut to_remove: Vec<usize> = Vec::new();
        for &ri in &ending {
            let r = running[ri];
            stats.max_contention = stats.max_contention.max(r.contention);
            // Abort if doomed, or if an ancestor is still running.
            let ancestor_running = running
                .iter()
                .any(|o| o.end != time && o.task < r.task && deps(o.task, r.task));
            if r.doomed || ancestor_running {
                stats.aborts += 1;
                pending.insert(r.task);
            } else {
                committed[r.task] = true;
                n_committed += 1;
                stats.commits += 1;
                // Doom running dependents of the committed transaction.
                let task = r.task;
                for o in running.iter_mut() {
                    if o.end != time && o.task > task && deps(task, o.task) {
                        o.doomed = true;
                    }
                }
            }
            to_remove.push(ri);
        }
        to_remove.sort_unstable_by(|a, b| b.cmp(a));
        for ri in to_remove {
            running.swap_remove(ri);
        }
        if n_committed == n {
            break;
        }
        // --- Phase 2: dispense one available pending transaction.
        if !pending.is_empty() {
            // Available: at most k non-committed transactions with smaller
            // label. Since non-committed = pending ∪ running, count both.
            let available: Vec<usize> = {
                let mut avail = Vec::new();
                for (smaller_pending, &t) in pending.iter().enumerate() {
                    // Count running transactions with label < t lazily.
                    let running_below = running.iter().filter(|r| r.task < t).count();
                    if smaller_pending + running_below < cfg.k {
                        avail.push(t);
                    } else {
                        break; // labels only grow; counts only grow
                    }
                }
                avail
            };
            if !available.is_empty() {
                let min_pending = available[0];
                let chosen = if skips >= cfg.k - 1 {
                    min_pending
                } else {
                    match cfg.strategy {
                        TxStrategy::Random => available[rng.gen_range(0..available.len())],
                        TxStrategy::MaxLabel => *available.last().expect("non-empty"),
                    }
                };
                if chosen == min_pending {
                    skips = 0;
                } else {
                    skips += 1;
                }
                pending.remove(&chosen);
                // Mutual contention accounting.
                let overlap = running.len();
                for o in running.iter_mut() {
                    o.contention += 1;
                }
                running.push(Running {
                    task: chosen,
                    end: time + cfg.duration as u64,
                    contention: overlap,
                    doomed: false,
                });
                stats.dispenses += 1;
            }
        }
        time += 1;
        stats.steps = time;
    }
    debug_assert_eq!(stats.dispenses, stats.commits + stats.aborts);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_transactions_never_abort() {
        let stats = run_transactional(200, |_, _| false, TxConfig::default());
        assert_eq!(stats.commits, 200);
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.dispenses, 200);
    }

    #[test]
    fn chain_commits_everything_despite_aborts() {
        let stats = run_transactional(
            150,
            |i, j| j == i + 1,
            TxConfig {
                k: 6,
                duration: 4,
                strategy: TxStrategy::MaxLabel,
                seed: 1,
            },
        );
        assert_eq!(stats.commits, 150);
        assert!(stats.aborts > 0, "speculative chain must abort sometimes");
        assert_eq!(stats.dispenses, stats.commits + stats.aborts);
    }

    #[test]
    fn k1_serializes_and_never_aborts() {
        // With k = 1 only the minimum uncommitted transaction is available,
        // and one transaction runs at a time once the pipeline drains; a
        // transaction's ancestors are committed before it is dispensed.
        let stats = run_transactional(
            100,
            |i, j| j == i + 1,
            TxConfig {
                k: 1,
                duration: 5,
                strategy: TxStrategy::Random,
                seed: 3,
            },
        );
        assert_eq!(stats.commits, 100);
        assert_eq!(stats.aborts, 0);
    }

    #[test]
    fn contention_is_bounded_by_duration() {
        let stats = run_transactional(
            300,
            |_, _| false,
            TxConfig {
                k: 64,
                duration: 7,
                strategy: TxStrategy::Random,
                seed: 5,
            },
        );
        // One start per step, interval = 7 steps: at most 7 others can start
        // during an interval and at most 7 were running at the start.
        assert!(
            stats.max_contention <= 14,
            "contention {}",
            stats.max_contention
        );
        assert!(
            stats.max_contention >= 5,
            "simulator should reach steady state"
        );
    }

    #[test]
    fn aborts_grow_with_k_on_chain() {
        let run = |k| {
            run_transactional(
                200,
                |i, j| j == i + 1,
                TxConfig {
                    k,
                    duration: 3,
                    strategy: TxStrategy::MaxLabel,
                    seed: 9,
                },
            )
            .aborts
        };
        let a2 = run(2);
        let a16 = run(16);
        assert!(
            a16 > a2,
            "more relaxation should cause more speculative aborts: k=2 -> {a2}, k=16 -> {a16}"
        );
    }

    #[test]
    fn random_dep_structure_completes() {
        // p_ij ~ C/i style dependencies: j depends on i iff hash(i,j) % i == 0.
        let deps = |i: usize, j: usize| {
            if i == 0 {
                return false;
            }
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(j as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h.is_multiple_of(i as u64 * 4)
        };
        let stats = run_transactional(
            400,
            deps,
            TxConfig {
                k: 8,
                duration: 4,
                strategy: TxStrategy::Random,
                seed: 11,
            },
        );
        assert_eq!(stats.commits, 400);
    }

    #[test]
    fn single_transaction() {
        let stats = run_transactional(1, |_, _| true, TxConfig::default());
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 0);
    }
}
