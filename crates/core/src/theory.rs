//! Closed-form bounds from the paper, as executable formulas.
//!
//! The benchmark harness prints these next to measured values so
//! EXPERIMENTS.md can record paper-vs-measured for every theorem. The
//! constants hidden in the big-O are not specified by the paper; the
//! formulas here return the *parametric part* (e.g. `k⁴ · ln n` for
//! Theorem 3.3), and experiments check **shape** (growth in each parameter)
//! rather than absolute constants, as the reproduction bands prescribe.

/// `H(n)` — the harmonic number, the Σ C/i factor in the Theorem 3.3 proof.
pub fn harmonic(n: usize) -> f64 {
    // Exact summation below 256; Euler–Maclaurin beyond.
    if n == 0 {
        return 0.0;
    }
    if n < 256 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        let nf = n as f64;
        nf.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// Theorem 3.3: expected extra steps of Algorithm 2 are `O(k⁴ log n)`.
/// Returns `k⁴ · ln n`.
pub fn thm33_extra_steps(k: usize, n: usize) -> f64 {
    (k as f64).powi(4) * (n.max(2) as f64).ln()
}

/// Lemma 3.2: a task can be charged at most `R_i ≤ k²` extra steps.
pub fn lemma32_charge_bound(k: usize) -> u64 {
    (k as u64).pow(2)
}

/// Theorem 4.3: expected aborts in the transactional model are
/// `O(k²(C + k)² log n)`. Returns `k²(C + k)² · ln n`.
pub fn thm43_aborts(k: usize, c: usize, n: usize) -> f64 {
    let k = k as f64;
    let c = c as f64;
    k * k * (c + k) * (c + k) * (n.max(2) as f64).ln()
}

/// Theorem 5.1: expected extra steps under a MultiQueue are `Ω(log n)`;
/// the proof gives the explicit constant `(1/8) · ln n` via
/// `Σ p_{i,i+1} · Pr[inv_{i,i+1}] ≥ Σ (1/i) · (1/8)`.
pub fn thm51_lower_bound(n: usize) -> f64 {
    harmonic(n.saturating_sub(1)) / 8.0
}

/// Claim 1: under a MultiQueue, consecutive-label tasks are inverted with
/// probability at least 1/8.
pub const CLAIM1_INVERSION_LOWER: f64 = 0.125;

/// Theorem 6.1: Algorithm 3 performs at most `n + O(k² · d_max / w_min)`
/// pops. Returns the parametric extra-pop term `k² · d_max / w_min`.
pub fn thm61_extra_pops(k: usize, dmax_over_wmin: f64) -> f64 {
    (k as f64) * (k as f64) * dmax_over_wmin
}

/// Nominal relaxation factor of a MultiQueue with `q` internal queues:
/// `k = O(q log q)` (PODC 2017). Returns `q · max(1, log₂ q)`.
pub fn multiqueue_k(q: usize) -> f64 {
    let qf = q as f64;
    qf * qf.log2().max(1.0)
}

/// Trivial upper bound the paper contrasts against: a `k`-relaxed scheduler
/// can always be charged `O(k · W)` wasted work on `W` total tasks.
pub fn trivial_bound(k: usize, w: usize) -> f64 {
    (k as f64) * (w as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        // H(10000) ≈ ln(10000) + γ ≈ 9.7876.
        assert!((harmonic(10_000) - 9.787_606_036_044_348).abs() < 1e-6);
        // Continuity across the exact/asymptotic switch at 256.
        let delta = harmonic(256) - harmonic(255);
        assert!(delta > 0.0 && delta < 1.0 / 255.0 + 1e-9);
    }

    #[test]
    fn bounds_are_monotone_in_parameters() {
        assert!(thm33_extra_steps(4, 1000) > thm33_extra_steps(2, 1000));
        assert!(thm33_extra_steps(4, 100_000) > thm33_extra_steps(4, 1000));
        assert!(thm43_aborts(4, 8, 1000) > thm43_aborts(2, 8, 1000));
        assert!(thm43_aborts(4, 16, 1000) > thm43_aborts(4, 8, 1000));
        assert!(thm61_extra_pops(8, 50.0) > thm61_extra_pops(4, 50.0));
        assert!(thm51_lower_bound(10_000) > thm51_lower_bound(100));
    }

    #[test]
    fn thm33_beats_trivial_bound_for_large_n() {
        // The paper's point: for n >> k, poly(k) log n << k n.
        let k = 16;
        let n = 1_000_000;
        assert!(thm33_extra_steps(k, n) < trivial_bound(k, n));
    }

    #[test]
    fn multiqueue_k_grows_superlinearly() {
        assert!(multiqueue_k(64) / multiqueue_k(32) > 2.0);
    }
}
