//! # rsched-core — the relaxed-scheduling model
//!
//! This crate implements the analytical model of Alistarh, Koval and
//! Nadiradze, *"Efficiency Guarantees for Parallel Incremental Algorithms
//! under Relaxed Schedulers"* (SPAA 2019):
//!
//! * [`executor`] — the paper's Section 3 framework: the
//!   [`IncrementalAlgorithm`] trait
//!   (tasks with labels, dependency checks, state updates), the exact
//!   executor (Algorithm 1) and the relaxed executor (Algorithm 2) with
//!   *extra-step* accounting — the paper's measure of wasted work;
//! * [`adversary`] — a `k`-relaxed scheduler that is **adversarial** up to
//!   the RankBound and Fairness constraints of Section 2, with pluggable
//!   strategies (always-worst-rank, random-in-window, maximal-inversion,
//!   and caller-supplied dependency-aware adversaries);
//! * [`transactional`] — the Section 4 model: tasks run as transactions
//!   with bounded interval contention `C`; a transaction aborts iff it runs
//!   concurrently with a transaction it depends on; abort counts are the
//!   wasted work;
//! * [`theory`] — the closed-form bounds of Theorems 3.3, 4.3, 5.1 and 6.1,
//!   used by the benchmark harness to print paper-vs-measured comparisons;
//! * [`parallel`] — the concurrent iterative execution model
//!   ([`ConcurrentIncremental`], [`run_relaxed_parallel`]), hosted on the
//!   shared `rsched-runtime` worker pool; the termination-detection
//!   utilities it used to own live in `rsched-runtime` now and are
//!   re-exported here.

pub mod adversary;
pub mod executor;
pub mod parallel;
pub mod theory;
pub mod transactional;

pub use adversary::{AdversarialScheduler, AdversaryStrategy};
pub use executor::{
    run_exact, run_relaxed, run_relaxed_traced, run_relaxed_with, ExecStats, IncrementalAlgorithm,
    TraceEntry,
};
pub use parallel::{run_relaxed_parallel, ActiveCounter, ConcurrentIncremental, ParExecStats};
pub use transactional::{run_transactional, TxConfig, TxStats, TxStrategy};
