//! An adversarial `k`-relaxed scheduler.
//!
//! The paper's upper bounds (Theorems 3.3, 4.3, 6.1) hold even when the
//! scheduler is *adversarial* — free to return any element it likes, subject
//! only to the two Section 2 constraints:
//!
//! * **RankBound**: the returned element is among the `k` smallest;
//! * **Fairness**: the current minimum is returned after at most `k`
//!   `ApproxGetMin` calls.
//!
//! [`AdversarialScheduler`] implements the [`RelaxedQueue`] interface over
//! an exact ordered set and lets a pluggable [`AdversaryStrategy`] pick any
//! element of the top-`k` window; the scheduler itself enforces Fairness by
//! overriding the strategy once the current minimum has been skipped `k − 1`
//! times. It supports `decrease_key`, so the sequential-model SSSP
//! (Algorithm 3) can run against a worst-case scheduler too.
//!
//! For adversaries that need to inspect the *algorithm state* (e.g. "prefer
//! returning blocked tasks"), use
//! [`run_relaxed_with`](crate::executor::run_relaxed_with), which threads
//! the state into the choice.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsched_queues::RelaxedQueue;
use std::collections::BTreeSet;

/// Built-in state-oblivious adversary strategies.
#[derive(Clone, Debug)]
pub enum AdversaryStrategy {
    /// Always return the worst allowed element (the `min(k, len)`-th
    /// smallest). Maximizes rank at every step.
    MaxRank,
    /// Return a uniformly random element of the window (seeded).
    RandomTopK(u64),
    /// Skip the minimum exactly `k − 1` times, then return it; meanwhile
    /// return the second-smallest. Maximizes the inversion count `inv(u)`
    /// of every element while keeping ranks low.
    MaxInversions,
}

enum StrategyState {
    MaxRank,
    RandomTopK(SmallRng),
    MaxInversions,
}

/// A `k`-relaxed scheduler that is adversarial up to RankBound and Fairness.
///
/// # Examples
///
/// ```
/// use rsched_core::{AdversarialScheduler, AdversaryStrategy};
/// use rsched_queues::RelaxedQueue;
///
/// let mut q = AdversarialScheduler::new(3, AdversaryStrategy::MaxRank);
/// for i in 0..10usize {
///     q.insert(i, i as u64);
/// }
/// // MaxRank returns the 3rd smallest while more than 3 remain...
/// assert_eq!(q.peek_relaxed(), Some((2, 2)));
/// assert_eq!(q.peek_relaxed(), Some((2, 2)));
/// // ...until Fairness forces the minimum (k - 1 = 2 skips allowed).
/// assert_eq!(q.peek_relaxed(), Some((0, 0)));
/// ```
pub struct AdversarialScheduler {
    set: BTreeSet<(u64, usize)>,
    prio_of: Vec<Option<u64>>,
    k: usize,
    strategy: StrategyState,
    current_top: Option<(u64, usize)>,
    skips: usize,
    /// Peeks and forced-fairness events, for diagnostics.
    pub forced_fair_returns: u64,
}

impl AdversarialScheduler {
    /// Create an adversarial scheduler with relaxation factor `k`.
    pub fn new(k: usize, strategy: AdversaryStrategy) -> Self {
        assert!(k >= 1);
        let strategy = match strategy {
            AdversaryStrategy::MaxRank => StrategyState::MaxRank,
            AdversaryStrategy::RandomTopK(seed) => {
                StrategyState::RandomTopK(SmallRng::seed_from_u64(seed))
            }
            AdversaryStrategy::MaxInversions => StrategyState::MaxInversions,
        };
        Self {
            set: BTreeSet::new(),
            prio_of: Vec::new(),
            k,
            strategy,
            current_top: None,
            skips: 0,
            forced_fair_returns: 0,
        }
    }

    /// The configured relaxation factor.
    pub fn k(&self) -> usize {
        self.k
    }

    fn ensure(&mut self, item: usize) {
        if item >= self.prio_of.len() {
            self.prio_of.resize(item + 1, None);
        }
    }

    fn sync_top(&mut self) {
        let top = self.set.first().copied();
        if top != self.current_top {
            self.current_top = top;
            self.skips = 0;
        }
    }
}

impl RelaxedQueue<u64> for AdversarialScheduler {
    fn insert(&mut self, item: usize, prio: u64) {
        self.ensure(item);
        assert!(self.prio_of[item].is_none(), "item {item} already present");
        self.prio_of[item] = Some(prio);
        self.set.insert((prio, item));
        self.sync_top();
    }

    fn peek_relaxed(&mut self) -> Option<(usize, u64)> {
        if self.set.is_empty() {
            return None;
        }
        self.sync_top();
        let window = self.k.min(self.set.len());
        let top = *self.set.first().expect("non-empty");
        // Fairness override: the minimum may be skipped at most k − 1 times.
        let chosen = if self.skips >= self.k - 1 {
            self.forced_fair_returns += 1;
            top
        } else {
            let idx = match &mut self.strategy {
                StrategyState::MaxRank => window - 1,
                StrategyState::RandomTopK(rng) => rng.gen_range(0..window),
                StrategyState::MaxInversions => 1.min(window - 1),
            };
            *self.set.iter().nth(idx).expect("index within window")
        };
        if chosen == top {
            self.skips = 0;
        } else {
            self.skips += 1;
        }
        Some((chosen.1, chosen.0))
    }

    fn delete(&mut self, item: usize) -> bool {
        let Some(Some(prio)) = self.prio_of.get(item).copied() else {
            return false;
        };
        self.set.remove(&(prio, item));
        self.prio_of[item] = None;
        self.sync_top();
        true
    }

    fn decrease_key(&mut self, item: usize, prio: u64) -> bool {
        let Some(Some(old)) = self.prio_of.get(item).copied() else {
            return false;
        };
        if prio >= old {
            return false;
        }
        self.set.remove(&(old, item));
        self.set.insert((prio, item));
        self.prio_of[item] = Some(prio);
        self.sync_top();
        true
    }

    fn contains(&self, item: usize) -> bool {
        self.prio_of.get(item).is_some_and(|p| p.is_some())
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn relaxation_factor(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_queues::{RankTracker, RelaxedQueue};

    fn drain<Q: RelaxedQueue<u64>>(q: &mut Q) -> Vec<usize> {
        let mut order = Vec::new();
        while let Some((item, _)) = q.peek_relaxed() {
            q.delete(item);
            order.push(item);
        }
        order
    }

    #[test]
    fn maxrank_respects_rank_and_fairness_bounds() {
        let k = 5;
        let mut q = RankTracker::new(AdversarialScheduler::new(k, AdversaryStrategy::MaxRank));
        for i in 0..500usize {
            q.insert(i, i as u64);
        }
        drain(&mut q);
        let s = q.stats();
        assert!(s.max_rank <= k, "RankBound violated: {}", s.max_rank);
        assert!(
            s.max_inv <= (k - 1) as u64,
            "Fairness violated: {}",
            s.max_inv
        );
        // MaxRank is a genuine adversary: mean rank close to k.
        assert!(s.mean_rank() > (k as f64) * 0.5);
    }

    #[test]
    fn random_topk_respects_bounds() {
        let k = 9;
        let mut q = RankTracker::new(AdversarialScheduler::new(
            k,
            AdversaryStrategy::RandomTopK(13),
        ));
        for i in 0..400usize {
            q.insert(i, (i as u64 * 31) % 401);
        }
        drain(&mut q);
        let s = q.stats();
        assert!(s.max_rank <= k);
        assert!(s.max_inv <= (k - 1) as u64);
    }

    #[test]
    fn max_inversions_maximizes_inv() {
        let k = 6;
        let mut q = RankTracker::new(AdversarialScheduler::new(
            k,
            AdversaryStrategy::MaxInversions,
        ));
        for i in 0..100usize {
            q.insert(i, i as u64);
        }
        drain(&mut q);
        let s = q.stats();
        assert!(
            s.max_inv == (k - 1) as u64,
            "inv should hit k-1, got {}",
            s.max_inv
        );
        assert!(s.max_rank <= k);
    }

    #[test]
    fn all_items_eventually_returned() {
        let mut q = AdversarialScheduler::new(4, AdversaryStrategy::MaxRank);
        for i in 0..50usize {
            q.insert(i, (50 - i) as u64);
        }
        let mut order = drain(&mut q);
        order.sort_unstable();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn decrease_key_resets_fairness_episode() {
        let mut q = AdversarialScheduler::new(3, AdversaryStrategy::MaxRank);
        for i in 0..10usize {
            q.insert(i, 100 + i as u64);
        }
        q.peek_relaxed();
        // New global minimum appears: the skip counter applies to it afresh,
        // and within k peeks it must be returned.
        assert!(q.decrease_key(9, 1));
        let mut returned = false;
        for _ in 0..3 {
            if let Some((item, _)) = q.peek_relaxed() {
                if item == 9 {
                    returned = true;
                    break;
                }
            }
        }
        assert!(returned, "new minimum not returned within k peeks");
    }

    #[test]
    fn k1_is_exact() {
        let mut q = AdversarialScheduler::new(1, AdversaryStrategy::MaxRank);
        for (i, p) in [5u64, 2, 9, 1].into_iter().enumerate() {
            q.insert(i, p);
        }
        assert_eq!(drain(&mut q), vec![3, 1, 0, 2]);
    }
}
