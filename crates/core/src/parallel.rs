//! Utilities for the truly concurrent executors (Section 7 experiments).
//!
//! Relaxed concurrent queues cannot give a linearizable emptiness check
//! (`pop` returning `None` races with concurrent pushes), so parallel task
//! loops use an [`ActiveCounter`]: the count of *elements queued plus tasks
//! being processed*. A worker that sees an empty queue may only terminate
//! once the counter reaches zero — at that instant no task is queued and no
//! running task can produce one, so the system is quiescent for good.

use crossbeam::utils::Backoff;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rsched_queues::ConcurrentMultiQueue;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Termination-detection counter for concurrent task pools.
///
/// Protocol:
/// 1. call [`task_added`](ActiveCounter::task_added) **before** pushing a
///    task to the queue;
/// 2. after popping a task, process it (pushing any children, each preceded
///    by its own `task_added`), then call
///    [`task_done`](ActiveCounter::task_done);
/// 3. a worker whose pop returned `None` calls
///    [`wait_or_quiescent`](ActiveCounter::wait_or_quiescent); `true` means
///    globally done, `false` means "retry popping".
///
/// # Examples
///
/// ```
/// use rsched_core::ActiveCounter;
///
/// let c = ActiveCounter::new();
/// c.task_added();
/// assert!(!c.is_quiescent());
/// c.task_done();
/// assert!(c.is_quiescent());
/// ```
#[derive(Debug, Default)]
pub struct ActiveCounter {
    active: AtomicUsize,
}

impl ActiveCounter {
    /// A counter starting at zero (quiescent).
    pub fn new() -> Self {
        Self {
            active: AtomicUsize::new(0),
        }
    }

    /// Announce a task about to be queued.
    #[inline]
    pub fn task_added(&self) {
        self.active.fetch_add(1, Ordering::AcqRel);
    }

    /// Announce completion of a popped task (after its children, if any,
    /// were announced and queued).
    #[inline]
    pub fn task_done(&self) {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "task_done without matching task_added");
    }

    /// `true` iff no tasks are queued or in flight.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        self.active.load(Ordering::Acquire) == 0
    }

    /// Back off briefly; returns `true` if the pool is quiescent (caller
    /// should terminate), `false` to retry popping.
    #[inline]
    pub fn wait_or_quiescent(&self, backoff: &Backoff) -> bool {
        if self.is_quiescent() {
            return true;
        }
        backoff.snooze();
        false
    }
}

/// A cache-padded set of per-thread counters summed on demand — cheap
/// statistics aggregation for the concurrent executors (task counts, wasted
/// pops) without cross-thread contention on a single atomic.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[crossbeam::utils::CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// One shard per thread.
    pub fn new(threads: usize) -> Self {
        Self {
            shards: (0..threads.max(1))
                .map(|_| crossbeam::utils::CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Increment thread `tid`'s shard by `by`.
    #[inline]
    pub fn add(&self, tid: usize, by: u64) {
        self.shards[tid].fetch_add(by, Ordering::Relaxed);
    }

    /// Sum over all shards (exact once threads are joined).
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }
}

/// A thread-safe incremental algorithm: the concurrent counterpart of
/// [`IncrementalAlgorithm`](crate::executor::IncrementalAlgorithm) for the
/// parallel execution model the paper sketches in Section 4.
///
/// `process(task)` is called at most once per task, and only after
/// `deps_satisfied(task)` returned `true`; implementations synchronize their
/// state with atomics — the contract is that all writes of `process(u)`
/// happen-before any `deps_satisfied(v)` that observes `u` as processed
/// (publish the processed flag with `Release`, read it with `Acquire`).
pub trait ConcurrentIncremental: Sync {
    /// Total number of tasks; labels are `0..num_tasks()`.
    fn num_tasks(&self) -> usize;

    /// `true` iff every smaller-label dependency of `task` is processed.
    fn deps_satisfied(&self, task: usize) -> bool;

    /// Execute `task` (its dependencies are processed and stable).
    fn process(&self, task: usize);
}

/// Statistics of a concurrent relaxed execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParExecStats {
    /// Total pops from the relaxed scheduler.
    pub steps: u64,
    /// Tasks processed (= n on completion).
    pub processed: u64,
    /// Pops of blocked tasks, which were re-queued — the concurrent
    /// analogue of the paper's extra steps.
    pub extra_steps: u64,
    /// Worker wall-clock time.
    pub wall: Duration,
}

impl ParExecStats {
    /// `steps / processed` (1.0 = no waste).
    pub fn overhead(&self) -> f64 {
        if self.processed == 0 {
            1.0
        } else {
            self.steps as f64 / self.processed as f64
        }
    }
}

/// Concurrent Algorithm 2: worker threads pull tasks from a keyed
/// [`ConcurrentMultiQueue`] in relaxed label order; a popped task whose
/// dependencies are unsatisfied is re-queued and the step counted as
/// wasted.
///
/// Unlike the sequential model — where a blocked task stays in the queue —
/// a concurrent pop must physically remove the element, so blocked tasks
/// are re-inserted at their original priority. Termination uses quiescence
/// detection over queued-plus-in-flight tasks.
///
/// # Examples
///
/// ```
/// use rsched_core::parallel::{run_relaxed_parallel, ConcurrentIncremental};
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// // Independent tasks: every pop processes.
/// struct Tasks {
///     done: Vec<AtomicBool>,
/// }
/// impl ConcurrentIncremental for Tasks {
///     fn num_tasks(&self) -> usize {
///         self.done.len()
///     }
///     fn deps_satisfied(&self, _t: usize) -> bool {
///         true
///     }
///     fn process(&self, t: usize) {
///         self.done[t].store(true, Ordering::Release);
///     }
/// }
///
/// let alg = Tasks { done: (0..100).map(|_| AtomicBool::new(false)).collect() };
/// let stats = run_relaxed_parallel(&alg, 4, 2, 7);
/// assert_eq!(stats.processed, 100);
/// assert_eq!(stats.extra_steps, 0);
/// ```
pub fn run_relaxed_parallel<A: ConcurrentIncremental>(
    alg: &A,
    threads: usize,
    queue_multiplier: usize,
    seed: u64,
) -> ParExecStats {
    assert!(threads >= 1 && queue_multiplier >= 1);
    let n = alg.num_tasks();
    let queue = ConcurrentMultiQueue::<u64>::with_universe(threads * queue_multiplier, n);
    let counter = ActiveCounter::new();
    for task in 0..n {
        counter.task_added();
        queue.push(task, task as u64);
    }
    let steps = ShardedCounter::new(threads);
    let extra = ShardedCounter::new(threads);
    let processed = ShardedCounter::new(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let queue = &queue;
            let counter = &counter;
            let steps = &steps;
            let extra = &extra;
            let processed = &processed;
            scope.spawn(move || {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0xA5A5));
                let backoff = Backoff::new();
                // Separate backoff for blocked pops: when the queue front is
                // dominated by blocked tasks, a worker would otherwise spin
                // pop→re-queue→pop on the same elements while the worker
                // holding their dependency makes progress. Real relaxed
                // runtimes back off in this situation; without it the
                // extra-step count measures spinning, not scheduling.
                let blocked = Backoff::new();
                loop {
                    match queue.pop(&mut rng) {
                        Some((task, prio)) => {
                            backoff.reset();
                            steps.add(tid, 1);
                            if alg.deps_satisfied(task) {
                                alg.process(task);
                                processed.add(tid, 1);
                                counter.task_done();
                                blocked.reset();
                            } else {
                                extra.add(tid, 1);
                                // Re-queue at the original priority. Count
                                // the new element before inserting so the
                                // quiescence check cannot fire in between.
                                counter.task_added();
                                queue.push(task, prio);
                                counter.task_done();
                                blocked.snooze();
                            }
                        }
                        None => {
                            if counter.wait_or_quiescent(&backoff) {
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let stats = ParExecStats {
        steps: steps.sum(),
        processed: processed.sum(),
        extra_steps: extra.sum(),
        wall,
    };
    debug_assert_eq!(stats.processed as usize, n);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_roundtrip() {
        let c = ActiveCounter::new();
        assert!(c.is_quiescent());
        c.task_added();
        c.task_added();
        c.task_done();
        assert!(!c.is_quiescent());
        c.task_done();
        assert!(c.is_quiescent());
    }

    #[test]
    fn sharded_counter_sums() {
        let c = ShardedCounter::new(4);
        c.add(0, 5);
        c.add(3, 7);
        c.add(0, 1);
        assert_eq!(c.sum(), 13);
    }

    struct AtomicChain {
        done: Vec<std::sync::atomic::AtomicBool>,
    }

    impl ConcurrentIncremental for AtomicChain {
        fn num_tasks(&self) -> usize {
            self.done.len()
        }
        fn deps_satisfied(&self, t: usize) -> bool {
            t == 0 || self.done[t - 1].load(Ordering::Acquire)
        }
        fn process(&self, t: usize) {
            let was = self.done[t].swap(true, Ordering::AcqRel);
            assert!(!was, "task {t} processed twice");
        }
    }

    #[test]
    fn parallel_chain_processes_each_task_once_in_order() {
        let n = 400;
        let alg = AtomicChain {
            done: (0..n).map(|_| std::sync::atomic::AtomicBool::new(false)).collect(),
        };
        let stats = run_relaxed_parallel(&alg, 4, 2, 3);
        assert_eq!(stats.processed, n as u64);
        assert_eq!(stats.steps, stats.processed + stats.extra_steps);
        assert!(alg.done.iter().all(|d| d.load(Ordering::Acquire)));
        // A chain forces heavy re-queueing under relaxation.
        assert!(stats.extra_steps > 0);
    }

    #[test]
    fn parallel_single_thread_single_queue_is_exact_order() {
        let n = 200;
        let alg = AtomicChain {
            done: (0..n).map(|_| std::sync::atomic::AtomicBool::new(false)).collect(),
        };
        let stats = run_relaxed_parallel(&alg, 1, 1, 0);
        assert_eq!(stats.processed, n as u64);
        assert_eq!(stats.extra_steps, 0, "exact order never blocks");
    }

    #[test]
    fn termination_protocol_under_threads() {
        // A synthetic task pool: each task spawns children until a depth
        // budget runs out; termination detection must not fire early and
        // must fire eventually.
        let queue: Arc<crossbeam::queue::SegQueue<u32>> = Arc::new(crossbeam::queue::SegQueue::new());
        let counter = Arc::new(ActiveCounter::new());
        let processed = Arc::new(AtomicU64::new(0));
        counter.task_added();
        queue.push(6); // depth-6 binary tree => 2^7 - 1 = 127 tasks
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let counter = Arc::clone(&counter);
                let processed = Arc::clone(&processed);
                std::thread::spawn(move || {
                    let backoff = Backoff::new();
                    loop {
                        match queue.pop() {
                            Some(depth) => {
                                backoff.reset();
                                if depth > 0 {
                                    counter.task_added();
                                    queue.push(depth - 1);
                                    counter.task_added();
                                    queue.push(depth - 1);
                                }
                                processed.fetch_add(1, Ordering::Relaxed);
                                counter.task_done();
                            }
                            None => {
                                if counter.wait_or_quiescent(&backoff) {
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(processed.load(Ordering::Acquire), 127);
        assert!(counter.is_quiescent());
        assert!(queue.pop().is_none());
    }
}
