//! The concurrent execution model (Section 7 experiments), now hosted on
//! the shared [`rsched-runtime`](rsched_runtime) worker pool.
//!
//! This module used to own its own thread pool, termination detection and
//! statistics plumbing; all of that machinery lives in `rsched-runtime`
//! today (see [`ActiveCounter`], [`ShardedCounter`], [`rsched_runtime::run`])
//! and is re-exported here for compatibility. What remains local is the
//! *model*: the [`ConcurrentIncremental`] trait and the relaxed iterative
//! executor [`run_relaxed_parallel`], which is a task handler over the
//! runtime — pop a label, process it if its dependencies are satisfied,
//! otherwise report it blocked and let the runtime re-queue it.

pub use rsched_runtime::{ActiveCounter, ShardedCounter};

use rsched_queues::QueueBuilder;
use rsched_runtime::{run, RuntimeConfig, TaskOutcome};
use std::time::Duration;

/// A thread-safe incremental algorithm: the concurrent counterpart of
/// [`IncrementalAlgorithm`](crate::executor::IncrementalAlgorithm) for the
/// parallel execution model the paper sketches in Section 4.
///
/// `process(task)` is called at most once per task, and only after
/// `deps_satisfied(task)` returned `true`; implementations synchronize their
/// state with atomics — the contract is that all writes of `process(u)`
/// happen-before any `deps_satisfied(v)` that observes `u` as processed
/// (publish the processed flag with `Release`, read it with `Acquire`).
pub trait ConcurrentIncremental: Sync {
    /// Total number of tasks; labels are `0..num_tasks()`.
    fn num_tasks(&self) -> usize;

    /// `true` iff every smaller-label dependency of `task` is processed.
    fn deps_satisfied(&self, task: usize) -> bool;

    /// Execute `task` (its dependencies are processed and stable).
    fn process(&self, task: usize);
}

/// Statistics of a concurrent relaxed execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParExecStats {
    /// Total pops from the relaxed scheduler.
    pub steps: u64,
    /// Tasks processed (= n on completion).
    pub processed: u64,
    /// Pops of blocked tasks, which were re-queued — the concurrent
    /// analogue of the paper's extra steps.
    pub extra_steps: u64,
    /// Worker wall-clock time.
    pub wall: Duration,
}

impl ParExecStats {
    /// `steps / processed` (1.0 = no waste).
    pub fn overhead(&self) -> f64 {
        if self.processed == 0 {
            1.0
        } else {
            self.steps as f64 / self.processed as f64
        }
    }
}

/// Concurrent Algorithm 2: worker threads pull tasks from a keyed
/// [`ConcurrentMultiQueue`] in relaxed label order; a popped task whose
/// dependencies are unsatisfied is re-queued and the step counted as
/// wasted.
///
/// Unlike the sequential model — where a blocked task stays in the queue —
/// a concurrent pop must physically remove the element, so blocked tasks
/// are re-inserted at their original priority ([`TaskOutcome::Blocked`]);
/// termination uses the runtime's quiescence detection over
/// queued-plus-in-flight tasks.
///
/// # Examples
///
/// ```
/// use rsched_core::parallel::{run_relaxed_parallel, ConcurrentIncremental};
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// // Independent tasks: every pop processes.
/// struct Tasks {
///     done: Vec<AtomicBool>,
/// }
/// impl ConcurrentIncremental for Tasks {
///     fn num_tasks(&self) -> usize {
///         self.done.len()
///     }
///     fn deps_satisfied(&self, _t: usize) -> bool {
///         true
///     }
///     fn process(&self, t: usize) {
///         self.done[t].store(true, Ordering::Release);
///     }
/// }
///
/// let alg = Tasks { done: (0..100).map(|_| AtomicBool::new(false)).collect() };
/// let stats = run_relaxed_parallel(&alg, 4, 2, 7);
/// assert_eq!(stats.processed, 100);
/// assert_eq!(stats.extra_steps, 0);
/// ```
pub fn run_relaxed_parallel<A: ConcurrentIncremental>(
    alg: &A,
    threads: usize,
    queue_multiplier: usize,
    seed: u64,
) -> ParExecStats {
    assert!(threads >= 1 && queue_multiplier >= 1);
    let n = alg.num_tasks();
    let queue = QueueBuilder::new(threads * queue_multiplier)
        .universe(n)
        .multiqueue::<u64>();
    let stats = run(
        &queue,
        RuntimeConfig {
            threads,
            seed,
            ..RuntimeConfig::default()
        },
        (0..n).map(|task| (task, task as u64)),
        |_, task, _| {
            if alg.deps_satisfied(task) {
                alg.process(task);
                TaskOutcome::Executed
            } else {
                TaskOutcome::Blocked
            }
        },
    );
    let stats = ParExecStats {
        steps: stats.total.pops,
        processed: stats.total.executed,
        extra_steps: stats.total.extra,
        wall: stats.wall,
    };
    debug_assert_eq!(stats.processed as usize, n);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    struct AtomicChain {
        done: Vec<std::sync::atomic::AtomicBool>,
    }

    impl ConcurrentIncremental for AtomicChain {
        fn num_tasks(&self) -> usize {
            self.done.len()
        }
        fn deps_satisfied(&self, t: usize) -> bool {
            t == 0 || self.done[t - 1].load(Ordering::Acquire)
        }
        fn process(&self, t: usize) {
            let was = self.done[t].swap(true, Ordering::AcqRel);
            assert!(!was, "task {t} processed twice");
        }
    }

    #[test]
    fn parallel_chain_processes_each_task_once_in_order() {
        let n = 400;
        let alg = AtomicChain {
            done: (0..n)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
        };
        let stats = run_relaxed_parallel(&alg, 4, 2, 3);
        assert_eq!(stats.processed, n as u64);
        assert_eq!(stats.steps, stats.processed + stats.extra_steps);
        assert!(alg.done.iter().all(|d| d.load(Ordering::Acquire)));
        // A chain forces heavy re-queueing under relaxation.
        assert!(stats.extra_steps > 0);
    }

    #[test]
    fn parallel_single_thread_single_queue_is_exact_order() {
        let n = 200;
        let alg = AtomicChain {
            done: (0..n)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
        };
        let stats = run_relaxed_parallel(&alg, 1, 1, 0);
        assert_eq!(stats.processed, n as u64);
        assert_eq!(stats.extra_steps, 0, "exact order never blocks");
    }
}
