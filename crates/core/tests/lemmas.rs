//! Executable checks of the paper's intermediate lemmas — the structural
//! facts the Theorem 3.3 charging argument rests on. These run the real
//! executor against worst-case admissible adversaries, record the exact
//! schedule via `run_relaxed_traced`, and verify the lemma statements
//! offline.

use rsched_core::{run_relaxed_traced, IncrementalAlgorithm, TraceEntry};

/// Chain algorithm (task i depends on i−1): maximal dependency pressure.
struct Chain {
    done: Vec<bool>,
}

impl Chain {
    fn new(n: usize) -> Self {
        Self {
            done: vec![false; n],
        }
    }
}

impl IncrementalAlgorithm for Chain {
    fn num_tasks(&self) -> usize {
        self.done.len()
    }
    fn deps_satisfied(&self, t: usize) -> bool {
        t == 0 || self.done[t - 1]
    }
    fn process(&mut self, t: usize) {
        self.done[t] = true;
    }
}

/// Record the exact schedule under a given adversary.
fn trace_of(
    n: usize,
    k: usize,
    mut pick: impl FnMut(&Chain, &[usize]) -> usize,
) -> Vec<TraceEntry> {
    let mut trace = Vec::new();
    let mut alg = Chain::new(n);
    run_relaxed_traced(&mut alg, k, &mut pick, |e| trace.push(e));
    trace
}

/// Lemma 3.2: for any label `i`, the scheduler returns tasks with label
/// `> i` at most `k²` times before task `i` is processed (`R_i ≤ k²`).
#[test]
fn lemma_32_charge_bound_holds() {
    let n = 1200;
    for k in [2usize, 3, 5, 8] {
        for adversary in 0..2 {
            let trace = trace_of(n, k, |alg, w| {
                if adversary == 0 {
                    w.len() - 1 // MaxRank
                } else {
                    // Dependency-aware: return a blocked task if possible.
                    w.iter().position(|&t| !alg.deps_satisfied(t)).unwrap_or(0)
                }
            });
            // processed_at[i] = step index at which task i was processed.
            let mut processed_at = vec![u64::MAX; n];
            for (step, e) in trace.iter().enumerate() {
                if e.processed {
                    processed_at[e.task] = step as u64;
                }
            }
            assert!(processed_at.iter().all(|&s| s != u64::MAX));
            // R_i = returns of labels > i strictly before processed_at[i].
            let mut r = vec![0u64; n];
            for (step, e) in trace.iter().enumerate() {
                // Only labels i < e.task with processed_at[i] > step count.
                // Checking all i is O(n) per step; restrict to the chain
                // head window: unprocessed labels below e.task form the
                // contiguous range [head, e.task) at any step, and only
                // those i accumulate charge. The head at `step` is the
                // number of processed entries among trace[..step].
                let head = trace[..step].iter().filter(|x| x.processed).count();
                for i in head..e.task.min(head + 2 * k * k) {
                    if processed_at[i] > step as u64 {
                        r[i] += 1;
                    }
                }
            }
            let max_r = r.iter().max().copied().unwrap_or(0);
            assert!(
                max_r <= (k * k) as u64,
                "adversary {adversary}, k = {k}: max R_i = {max_r} > k² = {}",
                k * k
            );
        }
    }
}

/// Lemma 3.1 (consequence): the scheduler never returns a label `2k²` or
/// more ahead of the smallest unprocessed label.
#[test]
fn lemma_31_rank_window_holds() {
    let n = 1500;
    for k in [2usize, 4, 6, 10] {
        let trace = trace_of(n, k, |_, w| w.len() - 1);
        let mut head = 0usize; // smallest unprocessed label (chain ⇒ prefix)
        for e in &trace {
            assert!(
                e.task < head + 2 * k * k,
                "k = {k}: returned label {} with head {head} (gap ≥ 2k² = {})",
                e.task,
                2 * k * k
            );
            if e.processed {
                assert_eq!(e.task, head, "chain must process in order");
                head += 1;
            }
        }
        assert_eq!(head, n);
    }
}

/// Fairness consequence used throughout Section 3: the smallest unprocessed
/// task is processed within k steps of becoming processable, so the chain
/// run takes at most k·n steps total.
#[test]
fn fairness_gives_kn_total_steps_on_chain() {
    let n = 1000;
    for k in [2usize, 5, 9] {
        let trace = trace_of(n, k, |_, w| w.len() - 1);
        assert!(
            trace.len() <= k * n,
            "k = {k}: {} steps exceeds k·n = {}",
            trace.len(),
            k * n
        );
        // And between consecutive processings there are at most k−1 wasted
        // steps (each head task's inv ≤ k−1).
        let mut wasted_run = 0usize;
        for e in &trace {
            if e.processed {
                wasted_run = 0;
            } else {
                wasted_run += 1;
                assert!(
                    wasted_run < k,
                    "k = {k}: {wasted_run} consecutive wasted steps"
                );
            }
        }
    }
}
