//! Minimal JSON for the bench harness — no external crates vendored.
//!
//! Two consumers share this module: `bench_compare` loads artifact
//! files (arrays of flat records), and `serve_latency` loads the
//! committed diurnal rate trace (a nested object with an array of
//! numbers). The parser therefore handles the full JSON value grammar
//! the repo's files use — objects, arrays, strings, numbers, booleans,
//! null — but stays deliberately small: no streaming, no unicode
//! escapes beyond what the artifacts emit, inputs are trusted files
//! from this repository or produced by these benches.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// `self[key]` for objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// A flat artifact record: one object whose values are scalars.
pub type Record = BTreeMap<String, Value>;

/// Parse one JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage after document"));
    }
    Ok(v)
}

/// Parse an artifact file: a JSON array of flat objects — the framing
/// every sweep writes via `RSCHED_JSON_OUT`.
pub fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    match parse(text)? {
        Value::Arr(items) => items
            .into_iter()
            .map(|item| match item {
                Value::Obj(o) => Ok(o),
                other => Err(format!("expected an object record, got {other:?}")),
            })
            .collect(),
        other => Err(format!("expected a top-level array, got {other:?}")),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The repo's files never escape anything beyond these.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(self.fail(&format!("unsupported escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn literal(&mut self, lit: &str, val: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.fail(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Value::Num)
                    .ok_or_else(|| self.fail("malformed number"))
            }
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut obj = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            obj.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(obj));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            arr.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(arr));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_roundtrip() {
        let v = parse(r#"{"a": 1.5, "b": "x", "c": [1, 2, {"d": true}], "e": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        let arr = v.get("c").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn record_arrays_parse() {
        let recs = parse_records(r#"[{"queue": "mq", "threads": 4}, {"queue": "dra"}]"#).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("threads").and_then(Value::as_f64), Some(4.0));
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"k": }"#,
            "tru",
            "[1] extra",
            r#"{"k" 1}"#,
            "nul",
            "--3",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
