//! **THM51** — Theorem 5.1 / Claim 1: under a (benign) MultiQueue, the
//! expected extra steps of BST sorting and Delaunay triangulation are
//! `Ω(log n)`, via consecutive-label inversions happening with probability
//! ≥ 1/8.
//!
//! Two measurements:
//! * Claim 1 directly: the frequency with which the MultiQueue returns task
//!   `i + 1` before task `i`;
//! * the extra-step counts vs `(1/8) ln n`, averaged over seeds.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin thm51_lower_bound
//! ```

use rsched_algos::{BstSort, DelaunayIncremental};
use rsched_bench::{fmt, Scale, Table};
use rsched_core::run_relaxed;
use rsched_core::theory;
use rsched_queues::{RelaxedQueue, SimMultiQueue};

/// Measure Pr[inv_{i,i+1}]: drain a MultiQueue of n ordered tasks and count
/// consecutive-label inversions.
fn claim1_frequency(n: usize, queues: usize, trials: u64) -> f64 {
    let mut inversions = 0u64;
    let mut pairs = 0u64;
    for seed in 0..trials {
        let mut q = SimMultiQueue::new(queues, seed * 7 + 1);
        for i in 0..n {
            q.insert(i, i as u64);
        }
        let mut pos = vec![0usize; n];
        let mut t = 0usize;
        while let Some((item, _)) = q.pop_relaxed() {
            pos[item] = t;
            t += 1;
        }
        for i in 0..n - 1 {
            pairs += 1;
            if pos[i + 1] < pos[i] {
                inversions += 1;
            }
        }
    }
    inversions as f64 / pairs as f64
}

fn main() {
    let scale = Scale::from_env();
    println!("== Theorem 5.1: MultiQueue lower bound Ω(log n) ({scale:?}) ==\n");

    println!("-- Claim 1: Pr[task i+1 returned before task i] >= 1/8 --");
    let table = Table::new("thm51_claim1", &["queues", "measured", "paper_lb"]);
    for queues in [2usize, 4, 8, 16, 32] {
        let freq = claim1_frequency(2000, queues, 20);
        table.row(&[
            queues.to_string(),
            format!("{freq:.4}"),
            format!("{:.4}", theory::CLAIM1_INVERSION_LOWER),
        ]);
    }

    let (ns, trials) = match scale {
        Scale::Small => (vec![500usize, 2000, 8000, 32000], 10u64),
        _ => (vec![500usize, 4000, 32000, 256_000], 20u64),
    };

    println!("\n-- BST sorting: extra steps vs (1/8) ln n, MultiQueue q=8 --");
    let table = Table::new("thm51_sort", &["n", "avg_extra", "paper_lb"]);
    for &n in &ns {
        let mut total = 0u64;
        for seed in 0..trials {
            let mut alg = BstSort::random(n, 99);
            total += run_relaxed(&mut alg, &mut SimMultiQueue::new(8, seed)).extra_steps;
        }
        table.row(&[
            fmt::count(n as u64),
            format!("{:.1}", total as f64 / trials as f64),
            format!("{:.1}", theory::thm51_lower_bound(n)),
        ]);
    }

    println!("\n-- Delaunay: extra steps vs (1/8) ln n, MultiQueue q=8 --");
    let del_ns: Vec<usize> = ns.iter().map(|&n| (n / 4).max(250)).collect();
    let table = Table::new("thm51_delaunay", &["n", "avg_extra", "paper_lb"]);
    for &n in &del_ns {
        let mut total = 0u64;
        for seed in 0..trials.min(5) {
            let mut alg = DelaunayIncremental::random(n, 1 << 20, 99);
            total += run_relaxed(&mut alg, &mut SimMultiQueue::new(8, seed)).extra_steps;
        }
        table.row(&[
            fmt::count(n as u64),
            format!("{:.1}", total as f64 / trials.min(5) as f64),
            format!("{:.1}", theory::thm51_lower_bound(n)),
        ]);
    }

    println!(
        "\nExpected shape: measured inversion frequency >= 0.125 for every \
         queue count >= 2, and average extra steps exceeding the (1/8) ln n \
         lower-bound curve while growing with n."
    );
}
