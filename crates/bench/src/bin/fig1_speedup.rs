//! **FIG1-SPD** — Figure 1 (right column): wall-clock speedup of parallel
//! SSSP over sequential Dijkstra, vs thread count.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin fig1_speedup
//! ```

use rsched_algos::{parallel_delta_stepping, parallel_sssp, ParSsspConfig};
use rsched_bench::{experiment_graphs, fmt, thread_sweep, Scale, Table};
use rsched_graph::dijkstra;
use std::time::{Duration, Instant};

fn main() {
    let scale = Scale::from_env();
    println!("== Figure 1 (right): SSSP speedup vs threads ({scale:?}) ==\n");
    const REPS: usize = 3;
    for (name, g) in experiment_graphs(scale) {
        // Sequential baseline wall time (best of REPS).
        let mut seq_time = Duration::MAX;
        let exact = {
            let mut out = None;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let r = dijkstra(&g, 0);
                seq_time = seq_time.min(t0.elapsed());
                out = Some(r);
            }
            out.expect("ran at least once")
        };
        println!(
            "\n-- {name}: sequential Dijkstra {} --",
            fmt::secs(seq_time)
        );
        let table = Table::new(
            &format!("fig1_speedup_{name}"),
            &["engine", "threads", "queues", "wall", "speedup"],
        );
        // Δ heuristic: an eighth of the max weight, floored at the mean.
        let delta = rsched_graph::analysis::weight_stats(&g)
            .map(|(_, wmax, _)| (wmax / 8).max(100))
            .unwrap_or(100);
        for threads in thread_sweep() {
            // Bucket-synchronous baseline: parallel delta-stepping.
            let mut best_ds = Duration::MAX;
            for _ in 0..REPS {
                let r = parallel_delta_stepping(&g, 0, delta, threads);
                assert_eq!(r.dist, exact.dist);
                best_ds = best_ds.min(r.wall);
            }
            table.row(&[
                "delta".into(),
                threads.to_string(),
                "-".into(),
                fmt::secs(best_ds),
                format!("{:.2}x", seq_time.as_secs_f64() / best_ds.as_secs_f64()),
            ]);
            let mut best = Duration::MAX;
            for rep in 0..REPS {
                let stats = parallel_sssp(
                    &g,
                    0,
                    ParSsspConfig {
                        threads,
                        queue_multiplier: 2,
                        seed: 2000 + rep as u64,
                    },
                );
                assert_eq!(stats.dist, exact.dist);
                best = best.min(stats.wall);
            }
            table.row(&[
                "relaxed".into(),
                threads.to_string(),
                (2 * threads).to_string(),
                fmt::secs(best),
                format!("{:.2}x", seq_time.as_secs_f64() / best.as_secs_f64()),
            ]);
        }
    }
    println!(
        "\nExpected shape (paper): near-linear scaling at low thread counts, \
         flattening as socket/memory effects dominate. Single-thread relaxed \
         runs are slower than plain Dijkstra (scheduler overhead) — the paper's \
         speedups are also relative to a sequential baseline."
    );
}
