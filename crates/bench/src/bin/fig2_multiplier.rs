//! **FIG2-MULT** — Figure 2: relaxation overhead vs queue multiplier.
//!
//! The number of MultiQueue internal queues is `multiplier × threads`, and
//! the average relaxation factor is proportional to the queue count (PODC
//! 2017); sweeping the multiplier at fixed thread count reproduces the
//! paper's Figure 2 panels.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin fig2_multiplier
//! ```

use rsched_algos::{parallel_sssp, ParSsspConfig};
use rsched_bench::{experiment_graphs, fmt, Scale, Table};
use rsched_graph::{dijkstra, INF};

fn main() {
    let scale = Scale::from_env();
    let max_threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    // One panel per thread count, like the paper's Figure 2; counts beyond
    // the host's cores run oversubscribed, which still scales the
    // relaxation factor (queues = multiplier x threads).
    let thread_counts: Vec<usize> = [4usize, 8, 16]
        .into_iter()
        .filter(|&t| t <= max_threads.max(8))
        .collect();
    println!("== Figure 2: overhead vs queue multiplier ({scale:?}) ==");
    const REPS: usize = 3;
    let graphs = experiment_graphs(scale);
    for &threads in &thread_counts {
        println!("\n-- {threads} threads (one Figure 2 panel) --");
        let table = Table::new(
            &format!("fig2_mult_t{threads}"),
            &["multiplier", "queues", "random", "road", "social"],
        );
        for multiplier in [1usize, 2, 3, 4, 6, 8] {
            let mut cells = vec![multiplier.to_string(), (multiplier * threads).to_string()];
            for (_, g) in &graphs {
                let exact = dijkstra(g, 0);
                let reachable = exact.dist.iter().filter(|&&d| d != INF).count() as u64;
                let mut executed = 0u64;
                for rep in 0..REPS {
                    let stats = parallel_sssp(
                        g,
                        0,
                        ParSsspConfig {
                            threads,
                            queue_multiplier: multiplier,
                            seed: 3000 + rep as u64,
                        },
                    );
                    assert_eq!(stats.dist, exact.dist);
                    executed += stats.executed;
                }
                let overhead = (executed / REPS as u64) as f64 / reachable as f64;
                cells.push(fmt::overhead(overhead));
            }
            table.row(&cells);
        }
    }
    println!(
        "\nExpected shape (paper): overheads grow with the multiplier only on \
         the road graph; random and social stay near 1.0x throughout."
    );
}
