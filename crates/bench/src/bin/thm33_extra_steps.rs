//! **THM33** — Theorem 3.3 shape validation: the expected extra steps of
//! Algorithm 2 are `O(poly(k) · log n)` for BST-insertion sorting and
//! Delaunay triangulation.
//!
//! Two sweeps per algorithm:
//! * `n` grows at fixed `k` → extra steps should grow ~logarithmically (and
//!   stay far below the trivial `k · n` bound);
//! * `k` grows at fixed `n` → extra steps grow polynomially in `k`.
//!
//! The scheduler is the *dependency-aware adversary* (the paper's bounds
//! hold for any scheduler within RankBound/Fairness), with the MultiQueue
//! as the benign comparison.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin thm33_extra_steps
//! ```

use rsched_algos::{BstSort, DelaunayIncremental};
use rsched_bench::{fmt, Scale, Table};
use rsched_core::theory;
use rsched_core::{run_relaxed, run_relaxed_with, IncrementalAlgorithm};
use rsched_queues::SimMultiQueue;

fn adversarial_extra<A: IncrementalAlgorithm>(alg: &mut A, k: usize) -> u64 {
    run_relaxed_with(alg, k, |a, w| {
        w.iter().position(|&t| !a.deps_satisfied(t)).unwrap_or(0)
    })
    .extra_steps
}

fn multiqueue_extra<A: IncrementalAlgorithm>(alg: &mut A, q: usize, seed: u64) -> u64 {
    run_relaxed(alg, &mut SimMultiQueue::new(q, seed)).extra_steps
}

fn main() {
    let scale = Scale::from_env();
    let (ns, del_ns, ks) = match scale {
        Scale::Small => (
            vec![1000usize, 4000, 16000, 64000],
            vec![500usize, 1000, 2000, 4000],
            vec![2usize, 4, 8, 16],
        ),
        _ => (
            vec![1000usize, 8000, 64000, 512_000],
            vec![1000usize, 4000, 16000, 64000],
            vec![2usize, 4, 8, 16, 32],
        ),
    };
    println!("== Theorem 3.3: extra steps = O(poly(k) log n) ({scale:?}) ==\n");

    println!("-- BST sorting: sweep n at k = 8 --");
    let table = Table::new(
        "thm33_sort_n",
        &["n", "adv_extra", "mq_extra", "k4_ln_n", "trivial_kn"],
    );
    for &n in &ns {
        let mut a = BstSort::random(n, 7);
        let adv = adversarial_extra(&mut a, 8);
        let mut b = BstSort::random(n, 7);
        let mq = multiqueue_extra(&mut b, 8, 3);
        table.row(&[
            fmt::count(n as u64),
            fmt::count(adv),
            fmt::count(mq),
            format!("{:.0}", theory::thm33_extra_steps(8, n)),
            fmt::count(8 * n as u64),
        ]);
    }

    println!("\n-- BST sorting: sweep k at n = 16000 --");
    let n = 16000;
    let table = Table::new("thm33_sort_k", &["k", "adv_extra", "k4_ln_n"]);
    for &k in &ks {
        let mut a = BstSort::random(n, 7);
        let adv = adversarial_extra(&mut a, k);
        table.row(&[
            k.to_string(),
            fmt::count(adv),
            format!("{:.0}", theory::thm33_extra_steps(k, n)),
        ]);
    }

    println!("\n-- Delaunay: sweep n at k = 8 --");
    let table = Table::new(
        "thm33_del_n",
        &["n", "adv_extra", "mq_extra", "k4_ln_n", "trivial_kn"],
    );
    for &n in &del_ns {
        let mut a = DelaunayIncremental::random(n, 1 << 20, 7);
        let adv = adversarial_extra(&mut a, 8);
        let mut b = DelaunayIncremental::random(n, 1 << 20, 7);
        let mq = multiqueue_extra(&mut b, 8, 3);
        table.row(&[
            fmt::count(n as u64),
            fmt::count(adv),
            fmt::count(mq),
            format!("{:.0}", theory::thm33_extra_steps(8, n)),
            fmt::count(8 * n as u64),
        ]);
    }

    println!("\n-- Delaunay: sweep k at n = 2000 --");
    let n = 2000;
    let table = Table::new("thm33_del_k", &["k", "adv_extra", "k4_ln_n"]);
    for &k in &ks {
        let mut a = DelaunayIncremental::random(n, 1 << 20, 7);
        let adv = adversarial_extra(&mut a, k);
        table.row(&[
            k.to_string(),
            fmt::count(adv),
            format!("{:.0}", theory::thm33_extra_steps(k, n)),
        ]);
    }

    println!(
        "\nExpected shape: extra steps grow slowly (log-like) in n at fixed k, \
         polynomially in k at fixed n, and always sit far below the trivial \
         k·n bound — the theorem's point that relaxation waste is negligible \
         for n >> k."
    );
}
