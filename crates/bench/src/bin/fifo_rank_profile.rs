//! **FIFO-RANK** — ops-and-prefill sweep of d-RA / d-CBO rank errors.
//!
//! The relaxed-FIFO analogue of `rank_profile`, following the methodology
//! of the choice-of-two relaxation simulations (SNIPPETS.md §3): prefill
//! the queue with `prefill` items, run `ops` mixed operations (alternating
//! enqueue/dequeue so the fill level stays near the prefill), and record
//! the empirical rank-error distribution per `(queue, subqueues, prefill,
//! ops)` cell. Results print as one JSON object per line (prefixed
//! `json,`) so the perf trajectory can be collected with `grep '^json,'`.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin fifo_rank_profile
//! RSCHED_SCALE=medium cargo run -p rsched-bench --release --bin fifo_rank_profile
//! ```

use rsched_bench::Scale;
use rsched_queues::fifo::{FifoRankStats, FifoRankTracker, RelaxedFifo};
use rsched_queues::QueueBuilder;
use std::time::Instant;

/// Prefill, then run `ops` alternating enqueue/dequeue operations.
fn sweep<Q: RelaxedFifo<(u64, u64)>>(queue: Q, prefill: usize, ops: usize) -> (FifoRankStats, f64) {
    let mut q = FifoRankTracker::new(queue);
    let mut next = 0u64;
    for _ in 0..prefill {
        q.enqueue(next);
        next += 1;
    }
    let start = Instant::now();
    for op in 0..ops {
        if op % 2 == 0 {
            q.enqueue(next);
            next += 1;
        } else {
            let _ = q.dequeue();
        }
    }
    let wall = start.elapsed().as_secs_f64();
    while q.dequeue().is_some() {}
    (q.into_parts().1, wall)
}

fn main() {
    let scale = Scale::from_env();
    let (ops_list, prefill_list): (&[usize], &[usize]) = match scale {
        Scale::Small => (&[10_000, 50_000], &[100, 1_000, 10_000]),
        _ => (
            &[100_000, 500_000, 1_000_000],
            &[100, 1_000, 10_000, 100_000],
        ),
    };
    let subqueues = [2usize, 4, 8, 16, 32];
    println!("== d-RA / d-CBO FIFO rank-error sweep (scale {scale:?}) ==");
    for &q in &subqueues {
        for &prefill in prefill_list {
            for &ops in ops_list {
                let (dra, dra_wall) = sweep(QueueBuilder::new(q).seed(7).d_ra(), prefill, ops);
                let (dcbo, dcbo_wall) = sweep(QueueBuilder::new(q).seed(7).d_cbo(), prefill, ops);
                for (name, s, wall) in [("d-ra", &dra, dra_wall), ("d-cbo", &dcbo, dcbo_wall)] {
                    println!(
                        "json,{{\"queue\":\"{name}\",\"subqueues\":{q},\"prefill\":{prefill},\
                         \"ops\":{ops},\"dequeues\":{},\"mean_error\":{:.4},\"p99_error\":{},\
                         \"max_error\":{},\"exact_fraction\":{:.4},\"ops_wall_s\":{wall:.6}}}",
                        s.dequeues,
                        s.mean_error(),
                        s.error_quantile(0.99),
                        s.max_error,
                        s.exact_fraction(),
                    );
                }
            }
        }
    }
}
