//! **FIG1-OVH** — Figure 1 (left column): relaxation overhead of parallel
//! SSSP vs thread count, on the random / road / social graphs.
//!
//! Overhead = tasks executed by the relaxed concurrent run divided by tasks
//! executed by the exact sequential scheduler (= reachable vertices).
//! Queues = 2 × threads, exactly as in the paper.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin fig1_overhead
//! RSCHED_SCALE=paper cargo run -p rsched-bench --release --bin fig1_overhead
//! ```

use rsched_algos::{parallel_sssp, ParSsspConfig};
use rsched_bench::{experiment_graphs, fmt, thread_sweep, Scale, Table};
use rsched_graph::{dijkstra, INF};

fn main() {
    let scale = Scale::from_env();
    println!("== Figure 1 (left): SSSP relaxation overhead vs threads ({scale:?}) ==\n");
    const REPS: usize = 3;
    for (name, g) in experiment_graphs(scale) {
        let exact = dijkstra(&g, 0);
        let reachable = exact.dist.iter().filter(|&&d| d != INF).count() as u64;
        println!(
            "\n-- {name}: n = {}, m = {}, sequential tasks = {} --",
            fmt::count(g.num_vertices() as u64),
            fmt::count(g.num_edges() as u64),
            fmt::count(reachable)
        );
        let table = Table::new(
            &format!("fig1_overhead_{name}"),
            &["threads", "queues", "executed", "stale", "overhead"],
        );
        for threads in thread_sweep() {
            let mut executed = 0u64;
            let mut stale = 0u64;
            for rep in 0..REPS {
                let stats = parallel_sssp(
                    &g,
                    0,
                    ParSsspConfig {
                        threads,
                        queue_multiplier: 2,
                        seed: 1000 + rep as u64,
                    },
                );
                assert_eq!(stats.dist, exact.dist, "{name}: wrong distances");
                executed += stats.executed;
                stale += stats.stale;
            }
            let executed = executed / REPS as u64;
            let stale = stale / REPS as u64;
            table.row(&[
                threads.to_string(),
                (2 * threads).to_string(),
                fmt::count(executed),
                fmt::count(stale),
                fmt::overhead(executed as f64 / reachable as f64),
            ]);
        }
    }
    println!(
        "\nExpected shape (paper): random and social stay within ~1% of 1.0x at \
         all thread counts; road shows visibly higher overhead, growing with \
         the queue count."
    );
}
