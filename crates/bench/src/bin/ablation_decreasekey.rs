//! **ABL-DK** — the DecreaseKey ablation from the paper's Section 6
//! discussion: Theorem 6.1's argument "would not hold if we didn't have the
//! DecreaseKey operation: if we insert multiple copies of vertices ... there
//! might exist outdated copies".
//!
//! Runs the concurrent SSSP twice on each experiment graph — once over the
//! keyed MultiQueue with `push_or_decrease`, once over the
//! duplicate-insertion MultiQueue — and compares total pops, stale pops and
//! the overhead.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin ablation_decreasekey
//! ```

use rsched_algos::{parallel_sssp, parallel_sssp_duplicates, ParSsspConfig};
use rsched_bench::{experiment_graphs, fmt, Scale, Table};
use rsched_graph::{dijkstra, INF};

fn main() {
    let scale = Scale::from_env();
    let threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .clamp(4, 8);
    println!("== DecreaseKey ablation ({scale:?}, {threads} threads, 2x queues) ==\n");
    const REPS: usize = 3;
    for (name, g) in experiment_graphs(scale) {
        let exact = dijkstra(&g, 0);
        let reachable = exact.dist.iter().filter(|&&d| d != INF).count() as u64;
        println!(
            "\n-- {name}: sequential tasks = {} --",
            fmt::count(reachable)
        );
        let table = Table::new(
            &format!("abl_dk_{name}"),
            &["variant", "pops", "stale", "executed", "overhead"],
        );
        let run = |label: &str, dup: bool| {
            let mut pops = 0u64;
            let mut stale = 0u64;
            let mut executed = 0u64;
            for rep in 0..REPS {
                let cfg = ParSsspConfig {
                    threads,
                    queue_multiplier: 2,
                    seed: 4000 + rep as u64,
                };
                let stats = if dup {
                    parallel_sssp_duplicates(&g, 0, cfg)
                } else {
                    parallel_sssp(&g, 0, cfg)
                };
                assert_eq!(stats.dist, exact.dist);
                pops += stats.pops;
                stale += stats.stale;
                executed += stats.executed;
            }
            table.row(&[
                label.to_string(),
                fmt::count(pops / REPS as u64),
                fmt::count(stale / REPS as u64),
                fmt::count(executed / REPS as u64),
                fmt::overhead((executed / REPS as u64) as f64 / reachable as f64),
            ]);
        };
        run("decrease_key", false);
        run("duplicates", true);
    }
    println!(
        "\nExpected shape: the duplicate-insertion variant pops strictly more \
         (outdated copies become stale pops); the gap is largest on the road \
         graph, whose long relaxation chains update distances many times."
    );
}
