//! **BENCH-COMPARE** — the CI perf-regression gate.
//!
//! Diffs a fresh contention-benchmark artifact against a committed
//! baseline snapshot (`ci/baselines/*.json`), in the spirit of the
//! practical-progress measurement methodology of *Are Lock-Free
//! Concurrent Algorithms Practically Wait-Free?*: what CI guards is not
//! an absolute number (runners differ wildly) but that the measured
//! *shape* of a queue's scaling has not collapsed relative to the
//! recorded trajectory.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! Both files are JSON arrays of flat records, the framing every
//! contention sweep writes via `RSCHED_JSON_OUT`. Records pair up on
//! their identity axes (`queue`, `backend`, `threads`, plus any of
//! `shards_per_worker`, `spawn_batch`, `stickiness`, `delta` present in
//! the baseline). The gate fails when:
//!
//! * a baseline cell has no matching fresh cell, or a fresh record is
//!   missing a field its baseline record carries (schema regression);
//! * a fresh record is missing any of the **required telemetry tails**
//!   (`retry_p99`, `retry_p999`, `steal_p99`, `steal_p999`,
//!   `flush_merge_ratio`, `gc_collected`) — every contention sweep
//!   emits them, so their absence means the instrumentation window
//!   broke;
//! * a record's **conservation fields** are inconsistent — pops must
//!   not exceed ops, home/steal counts must not exceed pops,
//!   `merge_fraction` must match `merges / (inserts + merges)`,
//!   `flush_merge_ratio` must match `flush_merged / flush_published`,
//!   and the retry quantiles must be monotone
//!   (`retry_p50 <= retry_p99 <= retry_p999 <= retry_max`);
//! * throughput (`pops_per_sec`) regressed beyond the tolerance
//!   (`RSCHED_COMPARE_TOL`, default 0.40 — generous on purpose) in
//!   **both** views: raw, and normalized by each run's own best cell.
//!   Requiring both keeps the gate meaningful across heterogeneous
//!   hosts: raw-only would flag every slower runner, normalized-only
//!   would miss a uniform collapse;
//! * the per-op CAS-retry tail (`retry_p99`) *grew* beyond
//!   `(1/(1-tol))²` (≈2.8× at the default tolerance) in both the raw
//!   and the self-normalized view (+1-smoothed so empty-tail cells
//!   divide cleanly). The histogram buckets are log₂, so one bucket of
//!   drift passes and two consecutive buckets fail — the tail gate
//!   guards progress per operation the same way the throughput gate
//!   guards operations per second;
//! * the **extreme tails** (`retry_p999`, `steal_p999`) inflated
//!   beyond the *cubed* tolerance limit (≈4.6× default) in both views,
//!   whenever the baseline cell carries them. This is the
//!   practically-wait-free invariant of the paper as a CI gate: in the
//!   steady states we snapshot, p999 per-op retries sit at 0–1, so a
//!   cell whose extreme tail grows by three log₂ buckets has left the
//!   practically-wait-free regime even if its mean throughput held.
//!
//! **Serving artifacts** (`serve_latency`; recognised by the
//! `arrival_process` axis) ride the same machinery with their own
//! metrics: identity adds `arrival_process` / `offered_rate` /
//! `clients` / `work_ns` / `mode` / `deadline_budget`; throughput is
//! `accepted_per_sec`; the required fields are the sojourn quantiles
//! (`lat_p50/p99/p999`) and the deadline `miss_rate`; conservation
//! demands `accepted + rejected == submitted`, `completed == accepted`,
//! `deadline_met + deadline_misses == completed`, a `miss_rate`
//! consistent with `deadline_misses / completed`, and monotone latency
//! and tardiness quantiles; and the tail gate runs on the end-to-end
//! `lat_p999` with the *cubed* tolerance limit (≈4.6× default) — more
//! than two log₂ buckets of p999 sojourn inflation fails the merge.
//!
//! The **miss-rate gate**: when a baseline serving cell carries
//! `miss_rate`, the fresh cell's rate may not inflate beyond the cubed
//! limit in both the raw and the run-peak-normalized view, each
//! +0.02-smoothed so all-met baselines (rate 0) divide cleanly and
//! noise near zero doesn't trip the gate. A scheduling change that
//! makes deadline traffic miss materially more often fails the merge
//! even if throughput and sojourn tails held.
//!
//! Exit code 0 = pass, 1 = regression, 2 = usage/parse error.

use rsched_bench::env_f64;
use rsched_bench::json::{self, Record, Value as Val};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn load(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let records = json::parse_records(&text).map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path}: no records"));
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------

/// Identity axes, in match order. A key only participates if the
/// baseline record carries it, so old baselines keep working when a
/// sweep grows a new axis.
const KEY_FIELDS: &[&str] = &[
    "queue",
    "backend",
    "threads",
    "shards_per_worker",
    "spawn_batch",
    "stickiness",
    "delta",
    "mix",
    "trace",
    "arrival_process",
    "offered_rate",
    "clients",
    "work_ns",
    "mode",
    "deadline_budget",
];

fn cell_key(rec: &Record) -> String {
    KEY_FIELDS
        .iter()
        .filter_map(|&k| match rec.get(k) {
            Some(Val::Str(s)) => Some(format!("{k}={s}")),
            Some(Val::Num(x)) => Some(format!("{k}={x}")),
            Some(Val::Bool(b)) => Some(format!("{k}={b}")),
            Some(_) => None,
            // `trace` grew after the committed baselines were
            // snapshotted: absent means untraced, so default it to 0
            // instead of dropping the axis — old baselines keep pairing
            // with fresh untraced records, while traced records
            // (`trace=1`) still never pair with an untraced baseline.
            None if k == "trace" => Some(format!("{k}=0")),
            None => None,
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Telemetry tail fields every fresh contention record must carry: one
/// progress-histogram quantile per instrumented axis plus the flush and
/// epoch-GC evidence. A sweep that stops emitting any of these has lost
/// its instrumentation window, which is itself a regression.
const REQUIRED_TAILS: &[&str] = &[
    "retry_p99",
    "retry_p999",
    "steal_p99",
    "steal_p999",
    "flush_merge_ratio",
    "gc_collected",
];

/// The extreme-tail fields gated with the cubed tolerance limit — the
/// practically-wait-free invariant. Only gated when the *baseline*
/// record carries the field, so pre-p999 baselines keep passing.
const EXTREME_TAILS: &[&str] = &["retry_p999", "steal_p999"];

/// The fields every open-system serving record must carry: the sojourn
/// latency quantiles and the accepted-throughput metric. A serving
/// sweep that stops emitting them has lost exactly the tail evidence
/// the open-system methodology exists to capture.
const REQUIRED_SERVE: &[&str] = &[
    "lat_p50",
    "lat_p99",
    "lat_p999",
    "accepted_per_sec",
    "offered_rate",
    "miss_rate",
];

/// +0.02 smoothing for miss-rate ratios: an all-met cell (rate 0)
/// divides cleanly, and sub-2% noise can't produce scary ratios.
const MISS_SMOOTH: f64 = 0.02;

/// Serving records (from `serve_latency`) carry the arrival-process
/// axis; contention records never do. The two kinds gate on different
/// metrics, so they are peak-normalized separately.
fn is_serve(rec: &Record) -> bool {
    rec.contains_key("arrival_process")
}

/// Throughput metric of a record's kind: operations per second for the
/// closed-loop sweeps, *accepted* requests per second for the open
/// system (offered rate is a knob, accepted rate is the achievement).
fn metric_of(serve: bool) -> &'static str {
    if serve {
        "accepted_per_sec"
    } else {
        "pops_per_sec"
    }
}

/// Tail metric of a record's kind: per-op CAS retries for contention
/// sweeps, p999 end-to-end sojourn for serving sweeps.
fn tail_metric_of(serve: bool) -> &'static str {
    if serve {
        "lat_p999"
    } else {
        "retry_p99"
    }
}

/// The internal-consistency checks every record must satisfy — the
/// "conservation fields" of the gate. Returns a violation description.
fn conservation_violation(rec: &Record) -> Option<String> {
    let num = |k: &str| rec.get(k).and_then(Val::as_f64);
    for (k, v) in rec {
        if let Val::Num(x) = v {
            if !x.is_finite() || *x < 0.0 {
                return Some(format!("field {k} is {x}"));
            }
        }
    }
    if let (Some(pops), Some(ops)) = (num("pops"), num("ops")) {
        if pops > ops {
            return Some(format!("pops {pops} exceeds ops {ops}"));
        }
    }
    if let (Some(h), Some(s), Some(pops)) = (num("home_hits"), num("steals"), num("pops")) {
        if h + s > pops {
            return Some(format!("home_hits {h} + steals {s} exceed pops {pops}"));
        }
    }
    if let (Some(frac), Some(ins), Some(mrg)) =
        (num("merge_fraction"), num("inserts"), num("merges"))
    {
        let want = if ins + mrg == 0.0 {
            0.0
        } else {
            mrg / (ins + mrg)
        };
        if (frac - want).abs() > 0.01 {
            return Some(format!(
                "merge_fraction {frac} inconsistent with merges/(inserts+merges) = {want:.4}"
            ));
        }
    }
    if let (Some(ratio), Some(pub_), Some(mrg)) = (
        num("flush_merge_ratio"),
        num("flush_published"),
        num("flush_merged"),
    ) {
        let want = if pub_ == 0.0 { 0.0 } else { mrg / pub_ };
        if (ratio - want).abs() > 0.01 {
            return Some(format!(
                "flush_merge_ratio {ratio} inconsistent with flush_merged/flush_published = {want:.4}"
            ));
        }
    }
    if let (Some(p50), Some(p99), Some(p999), Some(max)) = (
        num("retry_p50"),
        num("retry_p99"),
        num("retry_p999"),
        num("retry_max"),
    ) {
        if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
            return Some(format!(
                "retry quantiles not monotone: p50 {p50}, p99 {p99}, p999 {p999}, max {max}"
            ));
        }
    }
    // Serving-record conservation: every submit is answered exactly
    // once, every accepted request completes exactly once.
    if let (Some(sub), Some(acc), Some(rej)) = (num("submitted"), num("accepted"), num("rejected"))
    {
        if (acc + rej - sub).abs() > 0.5 {
            return Some(format!(
                "accepted {acc} + rejected {rej} does not conserve submitted {sub}"
            ));
        }
    }
    if let (Some(acc), Some(comp)) = (num("accepted"), num("completed")) {
        if (comp - acc).abs() > 0.5 {
            return Some(format!("completed {comp} does not match accepted {acc}"));
        }
    }
    if let (Some(p50), Some(p99), Some(p999), Some(max)) = (
        num("lat_p50"),
        num("lat_p99"),
        num("lat_p999"),
        num("lat_max"),
    ) {
        if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
            return Some(format!(
                "latency quantiles not monotone: p50 {p50}, p99 {p99}, p999 {p999}, max {max}"
            ));
        }
    }
    // Deadline conservation: every deadline-carrying completion got
    // exactly one verdict, and the reported rate matches the counts.
    if let (Some(met), Some(miss), Some(comp)) = (
        num("deadline_met"),
        num("deadline_misses"),
        num("completed"),
    ) {
        if (met + miss - comp).abs() > 0.5 {
            return Some(format!(
                "deadline_met {met} + deadline_misses {miss} does not conserve completed {comp}"
            ));
        }
    }
    if let (Some(rate), Some(miss), Some(comp)) =
        (num("miss_rate"), num("deadline_misses"), num("completed"))
    {
        let want = if comp == 0.0 { 0.0 } else { miss / comp };
        if (rate - want).abs() > 0.01 {
            return Some(format!(
                "miss_rate {rate} inconsistent with deadline_misses/completed = {want:.4}"
            ));
        }
    }
    if let (Some(p99), Some(p999), Some(max)) = (
        num("tardiness_p99"),
        num("tardiness_p999"),
        num("tardiness_max"),
    ) {
        if !(p99 <= p999 && p999 <= max) {
            return Some(format!(
                "tardiness quantiles not monotone: p99 {p99}, p999 {p999}, max {max}"
            ));
        }
    }
    None
}

/// Best value of `metric` among a run's records of one kind, for the
/// self-normalized comparison view. Kinds are normalized separately —
/// a serving artifact's accepted/s and a contention artifact's pops/s
/// live on unrelated scales.
fn run_peak(records: &[Record], serve: bool, metric: &str) -> f64 {
    records
        .iter()
        .filter(|r| is_serve(r) == serve)
        .filter_map(|r| r.get(metric).and_then(Val::as_f64))
        .fold(0.0, f64::max)
}

/// Per-kind peak set: throughput and tail peaks of both runs.
struct KindPeaks {
    base: f64,
    fresh: f64,
    base_tail: f64,
    fresh_tail: f64,
}

fn kind_peaks(baseline: &[Record], fresh: &[Record], serve: bool) -> KindPeaks {
    KindPeaks {
        base: run_peak(baseline, serve, metric_of(serve)),
        fresh: run_peak(fresh, serve, metric_of(serve)),
        base_tail: run_peak(baseline, serve, tail_metric_of(serve)),
        fresh_tail: run_peak(fresh, serve, tail_metric_of(serve)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let tol = env_f64("RSCHED_COMPARE_TOL", 0.40).clamp(0.0, 0.99);
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_compare: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let mut fresh_by_key: BTreeMap<String, &Record> = BTreeMap::new();
    for rec in &fresh {
        fresh_by_key.insert(cell_key(rec), rec);
    }
    let peaks = [
        kind_peaks(&baseline, &fresh, false),
        kind_peaks(&baseline, &fresh, true),
    ];
    let mut failures: Vec<String> = Vec::new();
    for serve in [false, true] {
        let p = &peaks[serve as usize];
        if baseline.iter().any(|r| is_serve(r) == serve) {
            if p.base <= 0.0 {
                eprintln!(
                    "bench_compare: baseline has no positive {}",
                    metric_of(serve)
                );
                return ExitCode::from(2);
            }
            if p.fresh <= 0.0 {
                failures.push(format!(
                    "fresh run has no positive {} at all",
                    metric_of(serve)
                ));
            }
        }
    }
    println!(
        "bench_compare: {} baseline cells vs {} fresh cells, tolerance {:.0}%",
        baseline.len(),
        fresh.len(),
        tol * 100.0,
    );
    for rec in &fresh {
        if let Some(why) = conservation_violation(rec) {
            failures.push(format!("fresh cell [{}]: {why}", cell_key(rec)));
        }
        // Contention sweeps must keep their telemetry tails, serving
        // sweeps their sojourn quantiles.
        let required = if is_serve(rec) {
            REQUIRED_SERVE
        } else {
            REQUIRED_TAILS
        };
        for &field in required {
            if !rec.contains_key(field) {
                failures.push(format!(
                    "fresh cell [{}]: missing required field {field}",
                    cell_key(rec)
                ));
            }
        }
    }
    for base in &baseline {
        let key = cell_key(base);
        let serve = is_serve(base);
        let metric = metric_of(serve);
        let p = &peaks[serve as usize];
        let Some(fresh_rec) = fresh_by_key.get(&key) else {
            failures.push(format!("cell [{key}] missing from the fresh run"));
            continue;
        };
        for field in base.keys() {
            if !fresh_rec.contains_key(field) {
                failures.push(format!("cell [{key}]: fresh record lost field {field}"));
            }
        }
        let (Some(b), Some(f)) = (
            base.get(metric).and_then(Val::as_f64),
            fresh_rec.get(metric).and_then(Val::as_f64),
        ) else {
            failures.push(format!("cell [{key}]: no {metric} to compare"));
            continue;
        };
        let raw_ratio = if b > 0.0 { f / b } else { 1.0 };
        let norm_ratio = if b > 0.0 && p.fresh > 0.0 {
            (f / p.fresh) / (b / p.base)
        } else {
            1.0
        };
        let mut verdict = if raw_ratio < 1.0 - tol && norm_ratio < 1.0 - tol {
            failures.push(format!(
                "cell [{key}]: {metric} regressed {b:.0} -> {f:.0} \
                 (raw x{raw_ratio:.2}, normalized x{norm_ratio:.2})"
            ));
            "FAIL"
        } else {
            "ok"
        };
        // The tail gate works in growth ratios (bigger = worse), with
        // +1 smoothing so empty tails divide cleanly; the limits stem
        // from the throughput tolerance because the histogram buckets
        // are log₂. Per-op CAS retries (contention) get the squared
        // limit: one bucket of drift passes, two fail. The end-to-end
        // p999 sojourn (serving) gets the cubed limit — ≈4.6× at the
        // default tolerance, so two log₂ buckets of drift pass and
        // anything beyond (>2 buckets of inflation) fails: sojourn
        // compounds scheduler, socket and generator jitter, and only a
        // shape-level collapse should stop the merge.
        let tail_metric = tail_metric_of(serve);
        let tail_limit = (1.0 / (1.0 - tol)).powi(if serve { 3 } else { 2 });
        if let (Some(bt), Some(ft)) = (
            base.get(tail_metric).and_then(Val::as_f64),
            fresh_rec.get(tail_metric).and_then(Val::as_f64),
        ) {
            let raw_growth = (ft + 1.0) / (bt + 1.0);
            let norm_growth =
                ((ft + 1.0) / (p.fresh_tail + 1.0)) / ((bt + 1.0) / (p.base_tail + 1.0));
            if raw_growth > tail_limit && norm_growth > tail_limit {
                failures.push(format!(
                    "cell [{key}]: {tail_metric} tail inflated {bt:.0} -> {ft:.0} \
                     (raw x{raw_growth:.2}, normalized x{norm_growth:.2}, \
                     limit x{tail_limit:.2})"
                ));
                verdict = "FAIL(tail)";
            }
        }
        // The miss-rate gate (serving cells whose baseline carries
        // one): smoothed growth in both the raw and the
        // peak-normalized view beyond the cubed limit fails — a
        // scheduling change may not inflate deadline misses even if
        // throughput and sojourn held.
        if serve {
            if let (Some(bm), Some(fm)) = (
                base.get("miss_rate").and_then(Val::as_f64),
                fresh_rec.get("miss_rate").and_then(Val::as_f64),
            ) {
                let limit = (1.0 / (1.0 - tol)).powi(3);
                let bp = run_peak(&baseline, true, "miss_rate");
                let fp = run_peak(&fresh, true, "miss_rate");
                let raw_growth = (fm + MISS_SMOOTH) / (bm + MISS_SMOOTH);
                let norm_growth = ((fm + MISS_SMOOTH) / (fp + MISS_SMOOTH))
                    / ((bm + MISS_SMOOTH) / (bp + MISS_SMOOTH));
                if raw_growth > limit && norm_growth > limit {
                    failures.push(format!(
                        "cell [{key}]: miss_rate inflated {bm:.4} -> {fm:.4} \
                         (raw x{raw_growth:.2}, normalized x{norm_growth:.2}, \
                         limit x{limit:.2})"
                    ));
                    verdict = "FAIL(miss)";
                }
            }
        }
        // The extreme-tail gates (contention cells only): p999 per-op
        // retries and steal rounds, cubed limit. Peak-normalized per
        // metric so a host whose whole run shifted a bucket still
        // passes; a single cell leaving the practically-wait-free
        // regime does not.
        if !serve {
            let limit = (1.0 / (1.0 - tol)).powi(3);
            for &extreme in EXTREME_TAILS {
                let (Some(bt), Some(ft)) = (
                    base.get(extreme).and_then(Val::as_f64),
                    fresh_rec.get(extreme).and_then(Val::as_f64),
                ) else {
                    continue;
                };
                let bp = run_peak(&baseline, false, extreme);
                let fp = run_peak(&fresh, false, extreme);
                let raw_growth = (ft + 1.0) / (bt + 1.0);
                let norm_growth = ((ft + 1.0) / (fp + 1.0)) / ((bt + 1.0) / (bp + 1.0));
                if raw_growth > limit && norm_growth > limit {
                    failures.push(format!(
                        "cell [{key}]: {extreme} tail inflated {bt:.0} -> {ft:.0} \
                         (raw x{raw_growth:.2}, normalized x{norm_growth:.2}, \
                         limit x{limit:.2})"
                    ));
                    verdict = "FAIL(tail)";
                }
            }
        }
        println!("  [{key}] {b:>12.0} -> {f:>12.0}  raw x{raw_ratio:.2} norm x{norm_ratio:.2}  {verdict}");
    }
    if failures.is_empty() {
        println!(
            "bench_compare: PASS ({} cells within tolerance)",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_compare: FAIL: {f}");
        }
        ExitCode::from(1)
    }
}
