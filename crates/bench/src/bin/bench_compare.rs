//! **BENCH-COMPARE** — the CI perf-regression gate.
//!
//! Diffs a fresh contention-benchmark artifact against a committed
//! baseline snapshot (`ci/baselines/*.json`), in the spirit of the
//! practical-progress measurement methodology of *Are Lock-Free
//! Concurrent Algorithms Practically Wait-Free?*: what CI guards is not
//! an absolute number (runners differ wildly) but that the measured
//! *shape* of a queue's scaling has not collapsed relative to the
//! recorded trajectory.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! Both files are JSON arrays of flat records, the framing every
//! contention sweep writes via `RSCHED_JSON_OUT`. Records pair up on
//! their identity axes (`queue`, `backend`, `threads`, plus any of
//! `shards_per_worker`, `spawn_batch`, `stickiness`, `delta` present in
//! the baseline). The gate fails when:
//!
//! * a baseline cell has no matching fresh cell, or a fresh record is
//!   missing a field its baseline record carries (schema regression);
//! * a fresh record is missing any of the **required telemetry tails**
//!   (`retry_p99`, `steal_p99`, `flush_merge_ratio`, `gc_collected`) —
//!   every contention sweep emits them, so their absence means the
//!   instrumentation window broke;
//! * a record's **conservation fields** are inconsistent — pops must
//!   not exceed ops, home/steal counts must not exceed pops,
//!   `merge_fraction` must match `merges / (inserts + merges)`,
//!   `flush_merge_ratio` must match `flush_merged / flush_published`,
//!   and the retry quantiles must be monotone
//!   (`retry_p50 <= retry_p99 <= retry_p999 <= retry_max`);
//! * throughput (`pops_per_sec`) regressed beyond the tolerance
//!   (`RSCHED_COMPARE_TOL`, default 0.40 — generous on purpose) in
//!   **both** views: raw, and normalized by each run's own best cell.
//!   Requiring both keeps the gate meaningful across heterogeneous
//!   hosts: raw-only would flag every slower runner, normalized-only
//!   would miss a uniform collapse;
//! * the per-op CAS-retry tail (`retry_p99`) *grew* beyond
//!   `(1/(1-tol))²` (≈2.8× at the default tolerance) in both the raw
//!   and the self-normalized view (+1-smoothed so empty-tail cells
//!   divide cleanly). The histogram buckets are log₂, so one bucket of
//!   drift passes and two consecutive buckets fail — the tail gate
//!   guards progress per operation the same way the throughput gate
//!   guards operations per second.
//!
//! Exit code 0 = pass, 1 = regression, 2 = usage/parse error.

use rsched_bench::env_f64;
use std::collections::BTreeMap;
use std::process::ExitCode;

// ---------------------------------------------------------------------
// Minimal JSON parsing (the artifacts are arrays of flat objects with
// string / number / bool values; external JSON crates are not vendored).
// ---------------------------------------------------------------------

/// A flat JSON value as the artifacts use them.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Bool(bool),
}

impl Val {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(x) => Some(*x),
            _ => None,
        }
    }
}

type Record = BTreeMap<String, Val>;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The artifacts never escape anything beyond these.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(self.fail(&format!("unsupported escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Val::Num)
                    .ok_or_else(|| self.fail("malformed number"))
            }
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, val: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.fail(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Record, String> {
        self.expect(b'{')?;
        let mut rec = Record::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(rec);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            rec.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(rec);
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array_of_objects(&mut self) -> Result<Vec<Record>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.object()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }
}

fn load(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut p = Parser::new(&text);
    let records = p.array_of_objects().map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path}: no records"));
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------

/// Identity axes, in match order. A key only participates if the
/// baseline record carries it, so old baselines keep working when a
/// sweep grows a new axis.
const KEY_FIELDS: &[&str] = &[
    "queue",
    "backend",
    "threads",
    "shards_per_worker",
    "spawn_batch",
    "stickiness",
    "delta",
    "mix",
];

fn cell_key(rec: &Record) -> String {
    KEY_FIELDS
        .iter()
        .filter_map(|&k| {
            rec.get(k).map(|v| match v {
                Val::Str(s) => format!("{k}={s}"),
                Val::Num(x) => format!("{k}={x}"),
                Val::Bool(b) => format!("{k}={b}"),
            })
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Telemetry tail fields every fresh contention record must carry: one
/// progress-histogram quantile per instrumented axis plus the flush and
/// epoch-GC evidence. A sweep that stops emitting any of these has lost
/// its instrumentation window, which is itself a regression.
const REQUIRED_TAILS: &[&str] = &[
    "retry_p99",
    "steal_p99",
    "flush_merge_ratio",
    "gc_collected",
];

/// The internal-consistency checks every record must satisfy — the
/// "conservation fields" of the gate. Returns a violation description.
fn conservation_violation(rec: &Record) -> Option<String> {
    let num = |k: &str| rec.get(k).and_then(Val::as_f64);
    for (k, v) in rec {
        if let Val::Num(x) = v {
            if !x.is_finite() || *x < 0.0 {
                return Some(format!("field {k} is {x}"));
            }
        }
    }
    if let (Some(pops), Some(ops)) = (num("pops"), num("ops")) {
        if pops > ops {
            return Some(format!("pops {pops} exceeds ops {ops}"));
        }
    }
    if let (Some(h), Some(s), Some(pops)) = (num("home_hits"), num("steals"), num("pops")) {
        if h + s > pops {
            return Some(format!("home_hits {h} + steals {s} exceed pops {pops}"));
        }
    }
    if let (Some(frac), Some(ins), Some(mrg)) =
        (num("merge_fraction"), num("inserts"), num("merges"))
    {
        let want = if ins + mrg == 0.0 {
            0.0
        } else {
            mrg / (ins + mrg)
        };
        if (frac - want).abs() > 0.01 {
            return Some(format!(
                "merge_fraction {frac} inconsistent with merges/(inserts+merges) = {want:.4}"
            ));
        }
    }
    if let (Some(ratio), Some(pub_), Some(mrg)) = (
        num("flush_merge_ratio"),
        num("flush_published"),
        num("flush_merged"),
    ) {
        let want = if pub_ == 0.0 { 0.0 } else { mrg / pub_ };
        if (ratio - want).abs() > 0.01 {
            return Some(format!(
                "flush_merge_ratio {ratio} inconsistent with flush_merged/flush_published = {want:.4}"
            ));
        }
    }
    if let (Some(p50), Some(p99), Some(p999), Some(max)) = (
        num("retry_p50"),
        num("retry_p99"),
        num("retry_p999"),
        num("retry_max"),
    ) {
        if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
            return Some(format!(
                "retry quantiles not monotone: p50 {p50}, p99 {p99}, p999 {p999}, max {max}"
            ));
        }
    }
    None
}

/// Best throughput of a run, for the self-normalized comparison view.
fn run_peak(records: &[Record], metric: &str) -> f64 {
    records
        .iter()
        .filter_map(|r| r.get(metric).and_then(Val::as_f64))
        .fold(0.0, f64::max)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let tol = env_f64("RSCHED_COMPARE_TOL", 0.40).clamp(0.0, 0.99);
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_compare: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let metric = "pops_per_sec";
    let mut fresh_by_key: BTreeMap<String, &Record> = BTreeMap::new();
    for rec in &fresh {
        fresh_by_key.insert(cell_key(rec), rec);
    }
    let base_peak = run_peak(&baseline, metric);
    let fresh_peak = run_peak(&fresh, metric);
    if base_peak <= 0.0 || fresh_peak <= 0.0 {
        eprintln!("bench_compare: no {metric} found in one of the runs");
        return ExitCode::from(2);
    }
    // The retry-tail gate works in growth ratios (bigger = worse), with
    // +1 smoothing so empty tails divide cleanly; the limit is the
    // squared throughput tolerance because the histogram buckets are
    // log₂ — one bucket of drift passes, two consecutive buckets fail.
    let tail_metric = "retry_p99";
    let base_tail_peak = run_peak(&baseline, tail_metric);
    let fresh_tail_peak = run_peak(&fresh, tail_metric);
    let tail_limit = (1.0 / (1.0 - tol)).powi(2);
    let mut failures: Vec<String> = Vec::new();
    println!(
        "bench_compare: {} baseline cells vs {} fresh cells, tolerance {:.0}%, \
         peaks {base_peak:.0} -> {fresh_peak:.0} {metric}",
        baseline.len(),
        fresh.len(),
        tol * 100.0,
    );
    for rec in &fresh {
        if let Some(why) = conservation_violation(rec) {
            failures.push(format!("fresh cell [{}]: {why}", cell_key(rec)));
        }
        for &tail in REQUIRED_TAILS {
            if !rec.contains_key(tail) {
                failures.push(format!(
                    "fresh cell [{}]: missing required telemetry tail {tail}",
                    cell_key(rec)
                ));
            }
        }
    }
    for base in &baseline {
        let key = cell_key(base);
        let Some(fresh_rec) = fresh_by_key.get(&key) else {
            failures.push(format!("cell [{key}] missing from the fresh run"));
            continue;
        };
        for field in base.keys() {
            if !fresh_rec.contains_key(field) {
                failures.push(format!("cell [{key}]: fresh record lost field {field}"));
            }
        }
        let (Some(b), Some(f)) = (
            base.get(metric).and_then(Val::as_f64),
            fresh_rec.get(metric).and_then(Val::as_f64),
        ) else {
            failures.push(format!("cell [{key}]: no {metric} to compare"));
            continue;
        };
        let raw_ratio = if b > 0.0 { f / b } else { 1.0 };
        let norm_ratio = if b > 0.0 {
            (f / fresh_peak) / (b / base_peak)
        } else {
            1.0
        };
        let mut verdict = if raw_ratio < 1.0 - tol && norm_ratio < 1.0 - tol {
            failures.push(format!(
                "cell [{key}]: {metric} regressed {b:.0} -> {f:.0} \
                 (raw x{raw_ratio:.2}, normalized x{norm_ratio:.2})"
            ));
            "FAIL"
        } else {
            "ok"
        };
        if let (Some(bt), Some(ft)) = (
            base.get(tail_metric).and_then(Val::as_f64),
            fresh_rec.get(tail_metric).and_then(Val::as_f64),
        ) {
            let raw_growth = (ft + 1.0) / (bt + 1.0);
            let norm_growth =
                ((ft + 1.0) / (fresh_tail_peak + 1.0)) / ((bt + 1.0) / (base_tail_peak + 1.0));
            if raw_growth > tail_limit && norm_growth > tail_limit {
                failures.push(format!(
                    "cell [{key}]: {tail_metric} tail inflated {bt:.0} -> {ft:.0} \
                     (raw x{raw_growth:.2}, normalized x{norm_growth:.2}, \
                     limit x{tail_limit:.2})"
                ));
                verdict = "FAIL(tail)";
            }
        }
        println!("  [{key}] {b:>12.0} -> {f:>12.0}  raw x{raw_ratio:.2} norm x{norm_ratio:.2}  {verdict}");
    }
    if failures.is_empty() {
        println!(
            "bench_compare: PASS ({} cells within tolerance)",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_compare: FAIL: {f}");
        }
        ExitCode::from(1)
    }
}
