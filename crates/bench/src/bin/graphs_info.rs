//! Structural properties of the experiment graphs — the facts the paper
//! uses to explain Figure 1 (diameter, weight variance, degree skew),
//! measured for our generated substitutes at each scale.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin graphs_info
//! ```

use rsched_bench::{experiment_graphs, fmt, Scale, Table};
use rsched_graph::analysis;

fn main() {
    let scale = Scale::from_env();
    println!("== experiment graph properties ({scale:?}) ==\n");
    let table = Table::new(
        "graphs_info",
        &[
            "graph",
            "n",
            "m",
            "diam>=",
            "wmin",
            "wmax",
            "w_cv",
            "deg_max",
            "dmax/wmin",
        ],
    );
    for (name, g) in experiment_graphs(scale) {
        let d = analysis::hop_diameter_estimate(&g, 2);
        let (wmin, wmax, cv) = analysis::weight_stats(&g).expect("graph has edges");
        let deg = analysis::degree_stats(&g);
        let ratio = analysis::dmax_over_wmin(&g, 0).unwrap_or(0.0);
        table.row(&[
            name.to_string(),
            fmt::count(g.num_vertices() as u64),
            fmt::count(g.num_edges() as u64),
            d.to_string(),
            wmin.to_string(),
            wmax.to_string(),
            format!("{cv:.2}"),
            deg.max.to_string(),
            format!("{ratio:.0}"),
        ]);
    }
    println!(
        "\nPaper's measured diameters: random 6, LiveJournal 16, USA road \
         network 6261. The shapes to compare: road diameter and weight \
         variance dwarf the other two; social has the extreme degree skew."
    );
}
