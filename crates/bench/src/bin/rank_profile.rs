//! **EXT-RANK** — empirical rank/fairness profile of every relaxed queue.
//!
//! Figure 2's x-axis rests on the PODC 2017 result that a MultiQueue's
//! average relaxation factor is proportional to its queue count. This
//! experiment measures it directly: mean rank, 99th-percentile rank, max
//! rank and max inversion count of each scheduler on a uniform drain
//! workload, via the `RankTracker` instrumentation.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin rank_profile
//! ```

use rsched_bench::{Scale, Table};
use rsched_queues::{
    Exact, IndexedBinaryHeap, RankTracker, RelaxedQueue, RotatingKQueue, SimMultiQueue, SprayList,
};

/// Fill with n ordered items, then drain with peek+delete, returning stats.
fn profile<Q: RelaxedQueue<u64>>(queue: Q, n: usize) -> rsched_queues::RankStats {
    let mut q = RankTracker::new(queue);
    for i in 0..n {
        q.insert(i, i as u64);
    }
    while let Some((item, _)) = q.peek_relaxed() {
        q.delete(item);
    }
    q.into_parts().1
}

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Small => 20_000usize,
        _ => 200_000,
    };
    println!("== empirical rank / fairness profiles (n = {n}) ==\n");
    let table = Table::new(
        "rank_profile",
        &[
            "scheduler",
            "nominal_k",
            "mean_rank",
            "p99_rank",
            "max_rank",
            "max_inv",
        ],
    );
    let row = |name: &str, k: usize, s: rsched_queues::RankStats| {
        table.row(&[
            name.to_string(),
            k.to_string(),
            format!("{:.2}", s.mean_rank()),
            s.rank_quantile(0.99).to_string(),
            s.max_rank.to_string(),
            s.max_inv.to_string(),
        ]);
    };
    row("exact", 1, profile(Exact(IndexedBinaryHeap::new()), n));
    for k in [4usize, 16, 64] {
        row(
            &format!("rotating_k{k}"),
            k,
            profile(RotatingKQueue::new(k), n),
        );
    }
    for q in [2usize, 4, 8, 16, 32, 64] {
        let mq = SimMultiQueue::new(q, 7);
        let k = mq.relaxation_factor();
        row(&format!("multiqueue_q{q}"), k, profile(mq, n));
    }
    for p in [2usize, 8, 32] {
        let sl = SprayList::new(p, 7);
        let k = sl.relaxation_factor();
        row(&format!("spraylist_p{p}"), k, profile(sl, n));
    }
    println!(
        "\nExpected shape: exact = all ranks 1; rotating max_rank == k and \
         max_inv == k−1 exactly; MultiQueue mean rank grows ~linearly with \
         the queue count and stays well under the O(q log q) nominal k; \
         SprayList ranks spread over the spray window."
    );
}
