//! **BUCKET-CONTENTION** — multithreaded throughput sweep of the
//! bucketed relaxed-FIFO hybrid across priority-shard backends.
//!
//! For every `(backend ∈ {mutexheap, skiplist, fc}) × threads` cell,
//! `threads` workers hammer one shared [`BucketFifoQueue`] with the
//! **Δ-stepping workload**: alternating `push_or_decrease` of a random
//! item at a full-distance priority just above the worker's advancing
//! front, and an oldest-bucket-first relaxed pop — the operation mix
//! `relaxed_delta_stepping` issues while its distance frontier sweeps
//! forward through the Δ-wide buckets. Every worker drives the queue
//! through its [`BucketSession`] (amortized epoch pin, home shard
//! columns, per-bucket-grouped spawn batching), so the sweep exercises
//! exactly the runtime's session path — this is the workload that runs
//! FIFO relaxation (across buckets) and priority relaxation (inside a
//! bucket) at the same time.
//!
//! Results print as one JSON object per line (prefixed `json,`); set
//! `RSCHED_JSON_OUT=<path>` to also write the full run as a JSON array
//! (the CI `BENCH_bucket_contention.json` artifact). Env knobs match
//! the sibling sweeps: `RSCHED_THREADS`, `RSCHED_SCALE`, `RSCHED_REPS`,
//! `RSCHED_SHARD_MULT` / `RSCHED_SHARDS` (priority shards per bucket),
//! `RSCHED_PREFILL` / `RSCHED_UNIVERSE`, `RSCHED_SHARDS_PER_WORKER` /
//! `RSCHED_SPAWN_BATCH`, plus `RSCHED_DELTA` for the bucket width
//! (default 1024 against priority steps of 0..1000 — a couple of live
//! buckets at any moment, with the front sweeping through hundreds over
//! a run).
//!
//! ```text
//! cargo run -p rsched-bench --release --bin bucket_contention
//! RSCHED_THREADS=8,16 RSCHED_DELTA=64 RSCHED_SPAWN_BATCH=8 \
//!     cargo run -p rsched-bench --release --bin bucket_contention
//! ```
//!
//! [`BucketSession`]: rsched_queues::BucketSession

use rsched_bench::{
    env_opt_usize, env_thread_list, env_usize, session_knobs, telemetry_json_fields,
    write_json_artifact, Scale,
};
use rsched_queues::{
    telemetry, BucketFifoQueue, FcHeapSub, FlushReport, MutexHeapSub, PopSource, PushOutcome,
    QueueBuilder, SessionConfig, SkipShard, SubPriority, TelemetrySnapshot,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

struct Trial {
    wall_s: f64,
    ops: u64,
    pops: u64,
    home_hits: u64,
    steals: u64,
    inserts: u64,
    merges: u64,
    buckets: u64,
    telemetry: TelemetrySnapshot,
}

/// Per-worker conservation bookkeeping over session outcomes (same
/// net-insert rule as `mq_contention`: [`PushOutcome::net_new`]).
#[derive(Default)]
struct Accounting {
    pushes: u64,
    net: i64,
}

impl Accounting {
    fn push(&mut self, out: PushOutcome) {
        self.pushes += 1;
        self.net += out.net_new();
    }

    fn flush(&mut self, rep: FlushReport) {
        self.net -= rep.merged as i64;
    }

    fn inserts(&self) -> u64 {
        self.net as u64
    }

    fn merges(&self) -> u64 {
        self.pushes - self.net as u64
    }
}

/// Run one contention cell: `threads` workers, each `ops_per_thread`
/// operations of the Δ-stepping mix against `queue`, through sessions.
fn trial<S: SubPriority<u64>>(
    queue: &BucketFifoQueue<S>,
    threads: usize,
    ops_per_thread: usize,
    prefill: usize,
    universe: usize,
    session_cfg: SessionConfig,
) -> Trial {
    use rand::Rng;
    let prefill_inserts = {
        let mut acct = Accounting::default();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0xB0C4);
        let mut session = queue.session(&SessionConfig::unaffine(0xB0C4));
        for _ in 0..prefill {
            let item = rng.gen_range(0..universe);
            acct.push(queue.push_session(item, rng.gen_range(0..1_000), &mut session));
        }
        acct.flush(queue.flush_session(&mut session));
        acct.inserts()
    };
    // Telemetry window = the contended phase only: reset after the
    // single-threaded prefill, capture before the drain below.
    telemetry::reset();
    let barrier = Barrier::new(threads);
    let pops = AtomicU64::new(0);
    let home_hits = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let merges = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (barrier, pops, home_hits, steals, inserts, merges, queue) = (
                &barrier, &pops, &home_hits, &steals, &inserts, &merges, &queue,
            );
            scope.spawn(move || {
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                    tid as u64 * 0x9E37 + 1,
                );
                let mut acct = Accounting::default();
                let (mut my_pops, mut my_homes, mut my_steals) = (0u64, 0u64, 0u64);
                // The worker's advancing distance front, as in
                // Δ-stepping: new priorities land just above the last
                // popped distance, so the live window of buckets sweeps
                // forward through the directory.
                let mut front = 0u64;
                let mut session = queue.session(&SessionConfig {
                    tid,
                    workers: threads,
                    seed: tid as u64 * 0x5E55 + 7,
                    ..session_cfg
                });
                barrier.wait();
                for op in 0..ops_per_thread {
                    if op % 2 == 0 {
                        let item = rng.gen_range(0..universe);
                        let prio = front + rng.gen_range(0..1_000u64);
                        acct.push(queue.push_session(item, prio, &mut session));
                    } else if let Some(((_, d), src)) = queue.pop_session(&mut session) {
                        my_pops += 1;
                        match src {
                            PopSource::Home => my_homes += 1,
                            PopSource::Steal => my_steals += 1,
                            PopSource::Shared => {}
                        }
                        front = front.max(d);
                    }
                }
                // Forced flush: parked pushes must publish before the
                // conservation accounting below.
                acct.flush(queue.flush_session(&mut session));
                pops.fetch_add(my_pops, Ordering::Relaxed);
                home_hits.fetch_add(my_homes, Ordering::Relaxed);
                steals.fetch_add(my_steals, Ordering::Relaxed);
                inserts.fetch_add(acct.inserts(), Ordering::Relaxed);
                merges.fetch_add(acct.merges(), Ordering::Relaxed);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let snapshot = telemetry::capture();
    let buckets = queue.buckets_allocated() as u64;
    // Drain (outside the timed phase) and check conservation: every
    // insert that reported "net-new" must come out exactly once.
    let mut drain = queue.session(&SessionConfig::unaffine(0));
    let mut drained = 0u64;
    while queue.pop_session(&mut drain).is_some() {
        drained += 1;
    }
    let popped = pops.load(Ordering::Relaxed);
    let inserted = prefill_inserts + inserts.load(Ordering::Relaxed);
    assert_eq!(
        inserted,
        popped + drained,
        "conservation violated: {inserted} in, {popped} + {drained} out"
    );
    Trial {
        wall_s,
        ops: (threads * ops_per_thread) as u64,
        pops: popped,
        home_hits: home_hits.load(Ordering::Relaxed),
        steals: steals.load(Ordering::Relaxed),
        inserts: inserts.load(Ordering::Relaxed),
        merges: merges.load(Ordering::Relaxed),
        buckets,
        telemetry: snapshot,
    }
}

fn main() {
    let scale = Scale::from_env();
    let ops_per_thread = match scale {
        Scale::Small => 100_000usize,
        Scale::Medium => 400_000,
        Scale::Paper => 1_000_000,
    };
    let prefill = env_usize("RSCHED_PREFILL", 4_096);
    let universe = env_usize("RSCHED_UNIVERSE", 1 << 16).max(1);
    let reps = env_usize("RSCHED_REPS", 8).clamp(1, 16);
    let delta = env_usize("RSCHED_DELTA", 1024).max(1) as u64;
    let shard_mult = env_usize("RSCHED_SHARD_MULT", 2).clamp(1, 8);
    let shards_override = env_opt_usize("RSCHED_SHARDS");
    let (shards_per_worker, spawn_batch) = session_knobs();
    let session_cfg = SessionConfig {
        shards_per_worker,
        spawn_batch,
        ..SessionConfig::default()
    };
    let threads_sweep = env_thread_list(&[1, 2, 4, 8, 16, 32, 64]);
    println!(
        "== bucket-hybrid contention sweep (scale {scale:?}, {ops_per_thread} ops/thread, \
         Δ-stepping workload, Δ {delta}, universe {universe}, prefill {prefill}, \
         best of {reps}, threads {threads_sweep:?}, shards/worker {shards_per_worker}, \
         spawn batch {spawn_batch}) ==",
    );
    let mut records: Vec<String> = Vec::new();
    for &threads in &threads_sweep {
        // Two priority shards per thread in every bucket, mirroring the
        // MultiQueue's queue_multiplier = 2 configuration — but capped:
        // the advancing front touches thousands of buckets over a run
        // and every bucket owns a full shard set (bucket memory is not
        // yet reclaimed mid-run, see ROADMAP), so an uncapped
        // shards×buckets product OOMs deep-oversubscription sweeps.
        let shards = shards_override.unwrap_or((shard_mult * threads).clamp(2, 16));
        type Cell<'a> = (&'a str, Box<dyn Fn() -> Trial>);
        let makes: Vec<Cell<'_>> = vec![
            (
                "mutexheap",
                Box::new(move || {
                    let q: BucketFifoQueue<MutexHeapSub<u64>> =
                        QueueBuilder::new(shards).delta(delta).bucket_fifo_on();
                    trial(&q, threads, ops_per_thread, prefill, universe, session_cfg)
                }),
            ),
            (
                "skiplist",
                Box::new(move || {
                    let q: BucketFifoQueue<SkipShard<u64>> =
                        QueueBuilder::new(shards).delta(delta).bucket_fifo_on();
                    trial(&q, threads, ops_per_thread, prefill, universe, session_cfg)
                }),
            ),
            (
                "fc",
                Box::new(move || {
                    let q: BucketFifoQueue<FcHeapSub<u64>> =
                        QueueBuilder::new(shards).delta(delta).bucket_fifo_on();
                    trial(&q, threads, ops_per_thread, prefill, universe, session_cfg)
                }),
            ),
        ];
        // Interleave the repetitions round-robin so background-load
        // drift on the host hits every cell equally; keep each cell's
        // best run.
        let mut best: Vec<Option<Trial>> = makes.iter().map(|_| None).collect();
        for _rep in 0..reps {
            for (slot, (_, make)) in best.iter_mut().zip(&makes) {
                let t = make();
                let better = slot
                    .as_ref()
                    .is_none_or(|b| t.pops as f64 / t.wall_s > b.pops as f64 / b.wall_s);
                if better {
                    *slot = Some(t);
                }
            }
        }
        for ((backend, _), t) in makes.iter().zip(best) {
            let t = t.expect("reps >= 1");
            let record = format!(
                "{{\"queue\":\"bucket\",\"backend\":\"{backend}\",\"threads\":{threads},\
                 \"shards\":{shards},\"delta\":{delta},\"prefill\":{prefill},\
                 \"universe\":{universe},\
                 \"shards_per_worker\":{shards_per_worker},\"spawn_batch\":{spawn_batch},\
                 \"stickiness\":1,\
                 \"ops\":{},\"wall_s\":{:.6},\"ops_per_sec\":{:.1},\"pops\":{},\
                 \"pops_per_sec\":{:.1},\"home_hits\":{},\"home_fraction\":{:.4},\
                 \"steals\":{},\"steal_fraction\":{:.4},\"buckets_touched\":{},\
                 \"inserts\":{},\"merges\":{},\"merge_fraction\":{:.4},{},\
                 \"floor_p50\":{},\"floor_p99\":{},\"seg_installs\":{},\
                 \"registry_probes\":{}}}",
                t.ops,
                t.wall_s,
                t.ops as f64 / t.wall_s,
                t.pops,
                t.pops as f64 / t.wall_s,
                t.home_hits,
                if t.pops == 0 {
                    0.0
                } else {
                    t.home_hits as f64 / t.pops as f64
                },
                t.steals,
                if t.pops == 0 {
                    0.0
                } else {
                    t.steals as f64 / t.pops as f64
                },
                t.buckets,
                t.inserts,
                t.merges,
                if t.inserts + t.merges == 0 {
                    0.0
                } else {
                    t.merges as f64 / (t.inserts + t.merges) as f64
                },
                telemetry_json_fields(&t.telemetry),
                t.telemetry.floor.p50,
                t.telemetry.floor.p99,
                t.telemetry.seg_installs,
                t.telemetry.registry_probes,
            );
            println!("json,{record}");
            records.push(record);
        }
    }
    write_json_artifact(&records);
}
