//! **MQ-CONTENTION** — multithreaded throughput sweep of the concurrent
//! MultiQueue across priority-shard backends.
//!
//! For every `(backend ∈ {mutexheap, skiplist, fc}) × threads` cell,
//! `threads` workers hammer one shared [`ConcurrentMultiQueue`] with the
//! **SSSP-pop workload**: alternating `push_or_decrease` of a random
//! item at a priority just above the worker's advancing distance front,
//! and a two-choice relaxed `pop` — the operation mix Algorithm 3 of the
//! paper issues while the distance frontier advances, including the
//! decrease-key hits a keyed MultiQueue exists for. Every worker drives
//! the queue through its [`MqSession`]: the amortized epoch pin, the
//! sticky peek cache and the spawn buffer (`RSCHED_SPAWN_BATCH`), so
//! the sweep exercises exactly the runtime's session path. This is the
//! experiment behind the lock-free-priority-shards claim: the mutex
//! backend pays a lock per peek and convoys when a holder is preempted,
//! while the skiplist backend peeks racily and claims with one CAS, so a
//! preempted thread costs only its own progress.
//!
//! The interesting read-out is the **regime crossover**, so the default
//! sweep deliberately runs deep into oversubscription. At low thread
//! counts an uncontended ~30ns critical section never convoys and the
//! mutex-heap's smaller constants win; as threads exceed cores the mutex
//! baseline's throughput collapses (preempted holders, futex sleeps)
//! while the skiplist's stays nearly flat, and it takes the lead — on a
//! single-core host around 32–64 workers, earlier the more cores are
//! contending. CI validates that the crossover exists at some measured
//! thread count ≥ 8. The `fc` backend (flat-combining over the same
//! sequential heap the mutex backend locks) attacks the convoy from the
//! other side: waiters publish ops instead of sleeping on the lock, and
//! one combiner batch-applies them — its combiner batch-size histogram
//! (`batch_p50/p99`) and claim fan-out land in the same JSON record.
//!
//! Results print as one JSON object per line (prefixed `json,`); set
//! `RSCHED_JSON_OUT=<path>` to also write the full run as a JSON array
//! (what CI uploads as the `BENCH_mq_contention.json` artifact).
//! `RSCHED_THREADS=1,2,4,8` overrides the thread sweep, `RSCHED_SCALE`
//! (small/medium/paper) the per-thread operation count, `RSCHED_REPS`
//! the repetitions per cell (best run reported, suppressing scheduler
//! noise on oversubscribed hosts), `RSCHED_SHARD_MULT` the
//! shards-per-thread ratio (default 2, the paper's Figure 1
//! configuration), `RSCHED_SHARDS` an absolute shard count,
//! `RSCHED_PREFILL` / `RSCHED_UNIVERSE` the queue's starting depth and
//! item-id range, and the session axes ride on `RSCHED_STICKINESS` — a
//! comma-separated *sweep list* (e.g. `1,4,16`): every listed
//! peek-cache-reuse budget runs as its own cell, so the
//! stickiness-vs-throughput trade on the SSSP workload lands in the
//! JSON — plus `RSCHED_SPAWN_BATCH` and `RSCHED_SHARDS_PER_WORKER`
//! (recorded for artifact uniformity; keyed placement itself has no
//! home shards).
//!
//! ```text
//! cargo run -p rsched-bench --release --bin mq_contention
//! RSCHED_THREADS=8,16 RSCHED_SPAWN_BATCH=8 \
//!     cargo run -p rsched-bench --release --bin mq_contention
//! ```
//!
//! [`MqSession`]: rsched_queues::MqSession

use rsched_bench::{
    env_opt_usize, env_thread_list, env_usize, env_usize_list, session_knobs,
    telemetry_json_fields, write_json_artifact, Scale,
};
use rsched_queues::{
    telemetry, ConcurrentMultiQueue, FcHeapSub, FlushReport, MqSession, MutexHeapSub, PopSource,
    PushOutcome, QueueBuilder, SessionConfig, SkipShard, SubPriority, TelemetrySnapshot,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// The operations the sweep needs, unified over every shard backend.
/// All traffic flows through the worker session.
trait ContendedMq: Sync {
    fn open(&self, cfg: &SessionConfig) -> MqSession<u64>;
    fn push_or_dec(&self, item: usize, prio: u64, s: &mut MqSession<u64>) -> PushOutcome;
    fn pop(&self, s: &mut MqSession<u64>) -> Option<((usize, u64), PopSource)>;
    fn flush(&self, s: &mut MqSession<u64>) -> FlushReport;
}

impl<S: SubPriority<u64>> ContendedMq for ConcurrentMultiQueue<u64, S> {
    fn open(&self, cfg: &SessionConfig) -> MqSession<u64> {
        self.session(cfg)
    }

    fn push_or_dec(&self, item: usize, prio: u64, s: &mut MqSession<u64>) -> PushOutcome {
        self.push_session(item, prio, s)
    }

    fn pop(&self, s: &mut MqSession<u64>) -> Option<((usize, u64), PopSource)> {
        self.pop_session(s)
    }

    fn flush(&self, s: &mut MqSession<u64>) -> FlushReport {
        self.flush_session(s)
    }
}

struct Trial {
    wall_s: f64,
    ops: u64,
    pops: u64,
    cache_hits: u64,
    inserts: u64,
    merges: u64,
    telemetry: TelemetrySnapshot,
}

/// Per-worker conservation bookkeeping over session outcomes, split
/// into inserts/merges for the JSON record; the net-insert rule itself
/// is [`PushOutcome::net_new`].
#[derive(Default)]
struct Accounting {
    pushes: u64,
    net: i64,
}

impl Accounting {
    fn push(&mut self, out: PushOutcome) {
        self.pushes += 1;
        self.net += out.net_new();
    }

    fn flush(&mut self, rep: FlushReport) {
        self.net -= rep.merged as i64;
    }

    fn inserts(&self) -> u64 {
        self.net as u64
    }

    fn merges(&self) -> u64 {
        self.pushes - self.net as u64
    }
}

/// Run one contention cell: `threads` workers, each `ops_per_thread`
/// operations of the SSSP-pop mix against `queue`, through sessions.
fn trial<Q: ContendedMq>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    prefill: usize,
    universe: usize,
    session_cfg: SessionConfig,
) -> Trial {
    use rand::Rng;
    let prefill_inserts = {
        let mut acct = Accounting::default();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0x55_59);
        let mut session = queue.open(&SessionConfig::unaffine(0x55_59));
        for _ in 0..prefill {
            let item = rng.gen_range(0..universe);
            acct.push(queue.push_or_dec(item, rng.gen_range(0..1_000), &mut session));
        }
        acct.flush(queue.flush(&mut session));
        acct.inserts()
    };
    // Measured telemetry window: prefill discarded, drain excluded.
    telemetry::reset();
    let barrier = Barrier::new(threads);
    let pops = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let merges = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (barrier, pops, cache_hits, inserts, merges, queue) =
                (&barrier, &pops, &cache_hits, &inserts, &merges, &queue);
            scope.spawn(move || {
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                    tid as u64 * 0x9E37 + 1,
                );
                let mut acct = Accounting::default();
                let (mut my_pops, mut my_cache_hits) = (0u64, 0u64);
                // The worker's advancing "distance front", as in SSSP:
                // new priorities land just above the last popped one.
                let mut front = 0u64;
                let mut session = queue.open(&SessionConfig {
                    tid,
                    workers: threads,
                    seed: tid as u64 * 0x5E55 + 7,
                    ..session_cfg
                });
                barrier.wait();
                for op in 0..ops_per_thread {
                    if op % 2 == 0 {
                        let item = rng.gen_range(0..universe);
                        let prio = front + rng.gen_range(0..1_000u64);
                        acct.push(queue.push_or_dec(item, prio, &mut session));
                    } else if let Some(((_, d), src)) = queue.pop(&mut session) {
                        my_pops += 1;
                        if src == PopSource::Home {
                            my_cache_hits += 1;
                        }
                        front = front.max(d);
                    }
                }
                // Forced flush: parked pushes must publish before the
                // conservation accounting below.
                acct.flush(queue.flush(&mut session));
                pops.fetch_add(my_pops, Ordering::Relaxed);
                cache_hits.fetch_add(my_cache_hits, Ordering::Relaxed);
                inserts.fetch_add(acct.inserts(), Ordering::Relaxed);
                merges.fetch_add(acct.merges(), Ordering::Relaxed);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let snapshot = telemetry::capture();
    // Drain (outside the timed phase) and check conservation: every
    // insert that reported "net-new" must come out exactly once.
    let mut drain = queue.open(&SessionConfig::unaffine(0));
    let mut drained = 0u64;
    while queue.pop(&mut drain).is_some() {
        drained += 1;
    }
    let popped = pops.load(Ordering::Relaxed);
    let inserted = prefill_inserts + inserts.load(Ordering::Relaxed);
    assert_eq!(
        inserted,
        popped + drained,
        "conservation violated: {inserted} in, {popped} + {drained} out"
    );
    Trial {
        wall_s,
        ops: (threads * ops_per_thread) as u64,
        pops: popped,
        cache_hits: cache_hits.load(Ordering::Relaxed),
        inserts: inserts.load(Ordering::Relaxed),
        merges: merges.load(Ordering::Relaxed),
        telemetry: snapshot,
    }
}

fn main() {
    let scale = Scale::from_env();
    let ops_per_thread = match scale {
        Scale::Small => 100_000usize,
        Scale::Medium => 400_000,
        Scale::Paper => 1_000_000,
    };
    let prefill = env_usize("RSCHED_PREFILL", 4_096);
    let universe = env_usize("RSCHED_UNIVERSE", 1 << 16).max(1);
    let reps = env_usize("RSCHED_REPS", 8).clamp(1, 16);
    let shard_mult = env_usize("RSCHED_SHARD_MULT", 2).clamp(1, 8);
    let shards_override = env_opt_usize("RSCHED_SHARDS");
    let (shards_per_worker, spawn_batch) = session_knobs();
    // Stickiness is a *sweep* axis (`RSCHED_STICKINESS=1,4,...`): the
    // peek cache trades rank slack for peek traffic, and the SSSP-pop
    // workload shows that trade as throughput + merge-fraction shifts
    // per stickiness value in the JSON, not just as the drain
    // displacement `ablation_stickiness` measures.
    let mut stickiness_sweep = env_usize_list("RSCHED_STICKINESS", &[1]);
    // Sanitize before the sweep is used as a cell identity axis: the
    // session clamps stickiness to >= 1, so a raw 0 would emit a cell
    // labelled differently from what actually ran.
    for s in &mut stickiness_sweep {
        *s = (*s).max(1);
    }
    stickiness_sweep.dedup();
    // Deep oversubscription on purpose: the crossover is the result.
    let threads_sweep = env_thread_list(&[1, 2, 4, 8, 16, 32, 64]);
    println!(
        "== MultiQueue contention sweep (scale {scale:?}, {ops_per_thread} ops/thread, \
         SSSP-pop workload, universe {universe}, prefill {prefill}, best of {reps}, \
         threads {threads_sweep:?}, spawn batch {spawn_batch}, \
         stickiness {stickiness_sweep:?}) ==",
    );
    let mut records: Vec<String> = Vec::new();
    for &threads in &threads_sweep {
        // Two shards per thread: the paper's Figure 1 MultiQueue
        // configuration (queue_multiplier = 2).
        let shards = shards_override.unwrap_or((shard_mult * threads).max(2));
        type Cell<'a> = (&'a str, usize, Box<dyn Fn() -> Trial>);
        let mut makes: Vec<Cell<'_>> = Vec::new();
        for &stickiness in &stickiness_sweep {
            let session_cfg = SessionConfig {
                shards_per_worker,
                spawn_batch,
                stickiness: stickiness.max(1),
                ..SessionConfig::default()
            };
            makes.push((
                "mutexheap",
                stickiness,
                Box::new(move || {
                    let q: ConcurrentMultiQueue<u64, MutexHeapSub<u64>> =
                        QueueBuilder::new(shards).universe(universe).multiqueue_on();
                    trial(&q, threads, ops_per_thread, prefill, universe, session_cfg)
                }),
            ));
            makes.push((
                "skiplist",
                stickiness,
                Box::new(move || {
                    let q: ConcurrentMultiQueue<u64, SkipShard<u64>> =
                        QueueBuilder::new(shards).universe(universe).multiqueue_on();
                    trial(&q, threads, ops_per_thread, prefill, universe, session_cfg)
                }),
            ));
            makes.push((
                "fc",
                stickiness,
                Box::new(move || {
                    let q: ConcurrentMultiQueue<u64, FcHeapSub<u64>> =
                        QueueBuilder::new(shards).universe(universe).multiqueue_on();
                    trial(&q, threads, ops_per_thread, prefill, universe, session_cfg)
                }),
            ));
        }
        // Interleave the repetitions round-robin so background-load
        // drift on the host hits every cell equally; keep each cell's
        // best run.
        let mut best: Vec<Option<Trial>> = makes.iter().map(|_| None).collect();
        for _rep in 0..reps {
            for (slot, (_, _, make)) in best.iter_mut().zip(&makes) {
                let t = make();
                let better = slot
                    .as_ref()
                    .is_none_or(|b| t.pops as f64 / t.wall_s > b.pops as f64 / b.wall_s);
                if better {
                    *slot = Some(t);
                }
            }
        }
        for ((backend, stickiness, _), t) in makes.iter().zip(best) {
            let t = t.expect("reps >= 1");
            let record = format!(
                "{{\"queue\":\"multiqueue\",\"backend\":\"{backend}\",\"threads\":{threads},\
                 \"shards\":{shards},\"prefill\":{prefill},\"universe\":{universe},\
                 \"shards_per_worker\":{shards_per_worker},\"spawn_batch\":{spawn_batch},\
                 \"stickiness\":{stickiness},\
                 \"ops\":{},\"wall_s\":{:.6},\"ops_per_sec\":{:.1},\"pops\":{},\
                 \"pops_per_sec\":{:.1},\"cache_hits\":{},\"inserts\":{},\"merges\":{},\
                 \"merge_fraction\":{:.4},{},\"registry_probes\":{}}}",
                t.ops,
                t.wall_s,
                t.ops as f64 / t.wall_s,
                t.pops,
                t.pops as f64 / t.wall_s,
                t.cache_hits,
                t.inserts,
                t.merges,
                if t.inserts + t.merges == 0 {
                    0.0
                } else {
                    t.merges as f64 / (t.inserts + t.merges) as f64
                },
                telemetry_json_fields(&t.telemetry),
                t.telemetry.registry_probes,
            );
            println!("json,{record}");
            records.push(record);
        }
    }
    write_json_artifact(&records);
}
