//! **MQ-CONTENTION** — multithreaded throughput sweep of the concurrent
//! MultiQueue across priority-shard backends.
//!
//! For every `(backend ∈ {mutexheap, skiplist}) × threads` cell,
//! `threads` workers hammer one shared [`ConcurrentMultiQueue`] with the
//! **SSSP-pop workload**: alternating `push_or_decrease` of a random
//! item at a priority just above the worker's advancing distance front,
//! and a two-choice relaxed `pop` — the operation mix Algorithm 3 of the
//! paper issues while the distance frontier advances, including the
//! decrease-key hits a keyed MultiQueue exists for. This is the
//! experiment behind the lock-free-priority-shards claim: the mutex
//! backend pays a lock per peek and convoys when a holder is preempted,
//! while the skiplist backend peeks racily and claims with one CAS, so a
//! preempted thread costs only its own progress.
//!
//! The interesting read-out is the **regime crossover**, so the default
//! sweep deliberately runs deep into oversubscription. At low thread
//! counts an uncontended ~30ns critical section never convoys and the
//! mutex-heap's smaller constants win; as threads exceed cores the mutex
//! baseline's throughput collapses (preempted holders, futex sleeps)
//! while the skiplist's stays nearly flat, and it takes the lead — on a
//! single-core host around 32–64 workers, earlier the more cores are
//! contending. CI validates that the crossover exists at some measured
//! thread count ≥ 8.
//!
//! Results print as one JSON object per line (prefixed `json,`); set
//! `RSCHED_JSON_OUT=<path>` to also write the full run as a JSON array
//! (what CI uploads as the `BENCH_mq_contention.json` artifact).
//! `RSCHED_THREADS=1,2,4,8` overrides the thread sweep, `RSCHED_SCALE`
//! (small/medium/paper) the per-thread operation count, `RSCHED_REPS`
//! the repetitions per cell (best run reported, suppressing scheduler
//! noise on oversubscribed hosts), `RSCHED_SHARD_MULT` the
//! shards-per-thread ratio (default 2, the paper's Figure 1
//! configuration), `RSCHED_SHARDS` an absolute shard count, and
//! `RSCHED_PREFILL` / `RSCHED_UNIVERSE` the queue's starting depth and
//! item-id range.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin mq_contention
//! RSCHED_THREADS=8,16 RSCHED_SCALE=medium \
//!     cargo run -p rsched-bench --release --bin mq_contention
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsched_bench::{env_thread_list, env_usize, write_json_artifact, Scale};
use rsched_queues::{ConcurrentMultiQueue, MutexHeapSub, PinSession, SkipShard, SubPriority};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// The operations the sweep needs, unified over every shard backend.
trait ContendedMq: Sync {
    /// Returns `true` when a net-new element entered the queue.
    fn push_or_dec(&self, item: usize, prio: u64, rng: &mut SmallRng, session: &PinSession)
        -> bool;
    fn pop(&self, rng: &mut SmallRng, session: &PinSession) -> Option<(usize, u64)>;
    /// Amortized epoch pin, inert for the mutex backend.
    fn session(&self) -> PinSession;
}

impl<S: SubPriority<u64>> ContendedMq for ConcurrentMultiQueue<u64, S> {
    fn push_or_dec(
        &self,
        item: usize,
        prio: u64,
        _rng: &mut SmallRng,
        session: &PinSession,
    ) -> bool {
        self.push_or_decrease_in(item, prio, session)
    }

    fn pop(&self, rng: &mut SmallRng, session: &PinSession) -> Option<(usize, u64)> {
        self.pop_in(rng, session)
    }

    fn session(&self) -> PinSession {
        self.pin_session()
    }
}

struct Trial {
    wall_s: f64,
    ops: u64,
    pops: u64,
    inserts: u64,
    merges: u64,
}

/// Run one contention cell: `threads` workers, each `ops_per_thread`
/// operations of the SSSP-pop mix against `queue`.
fn trial<Q: ContendedMq>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    prefill: usize,
    universe: usize,
) -> Trial {
    let mut prefill_inserts = 0u64;
    {
        let mut rng = SmallRng::seed_from_u64(0x55_59);
        let session = PinSession::none();
        for _ in 0..prefill {
            let item = rng.gen_range(0..universe);
            if queue.push_or_dec(item, rng.gen_range(0..1_000), &mut rng, &session) {
                prefill_inserts += 1;
            }
        }
    }
    let barrier = Barrier::new(threads);
    let pops = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let merges = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (barrier, pops, inserts, merges, queue) =
                (&barrier, &pops, &inserts, &merges, &queue);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(tid as u64 * 0x9E37 + 1);
                let (mut my_pops, mut my_inserts, mut my_merges) = (0u64, 0u64, 0u64);
                // The worker's advancing "distance front", as in SSSP:
                // new priorities land just above the last popped one.
                let mut front = 0u64;
                let mut session = queue.session();
                barrier.wait();
                for op in 0..ops_per_thread {
                    session.tick();
                    if op % 2 == 0 {
                        let item = rng.gen_range(0..universe);
                        let prio = front + rng.gen_range(0..1_000u64);
                        if queue.push_or_dec(item, prio, &mut rng, &session) {
                            my_inserts += 1;
                        } else {
                            my_merges += 1;
                        }
                    } else if let Some((_, d)) = queue.pop(&mut rng, &session) {
                        my_pops += 1;
                        front = front.max(d);
                    }
                }
                pops.fetch_add(my_pops, Ordering::Relaxed);
                inserts.fetch_add(my_inserts, Ordering::Relaxed);
                merges.fetch_add(my_merges, Ordering::Relaxed);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    // Drain (outside the timed phase) and check conservation: every
    // insert that reported "net-new" must come out exactly once.
    let mut rng = SmallRng::seed_from_u64(0);
    let session = PinSession::none();
    let mut drained = 0u64;
    while queue.pop(&mut rng, &session).is_some() {
        drained += 1;
    }
    let popped = pops.load(Ordering::Relaxed);
    let inserted = prefill_inserts + inserts.load(Ordering::Relaxed);
    assert_eq!(
        inserted,
        popped + drained,
        "conservation violated: {inserted} in, {popped} + {drained} out"
    );
    Trial {
        wall_s,
        ops: (threads * ops_per_thread) as u64,
        pops: popped,
        inserts: inserts.load(Ordering::Relaxed),
        merges: merges.load(Ordering::Relaxed),
    }
}

fn main() {
    let scale = Scale::from_env();
    let ops_per_thread = match scale {
        Scale::Small => 100_000usize,
        Scale::Medium => 400_000,
        Scale::Paper => 1_000_000,
    };
    let prefill = env_usize("RSCHED_PREFILL", 4_096);
    let universe = env_usize("RSCHED_UNIVERSE", 1 << 16).max(1);
    let reps = env_usize("RSCHED_REPS", 8).clamp(1, 16);
    let shard_mult = env_usize("RSCHED_SHARD_MULT", 2).clamp(1, 8);
    let shards_override = std::env::var("RSCHED_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    // Deep oversubscription on purpose: the crossover is the result.
    let threads_sweep = env_thread_list(&[1, 2, 4, 8, 16, 32, 64]);
    println!(
        "== MultiQueue contention sweep (scale {scale:?}, {ops_per_thread} ops/thread, \
         SSSP-pop workload, universe {universe}, prefill {prefill}, best of {reps}, \
         threads {threads_sweep:?}) ==",
    );
    let mut records: Vec<String> = Vec::new();
    for &threads in &threads_sweep {
        // Two shards per thread: the paper's Figure 1 MultiQueue
        // configuration (queue_multiplier = 2).
        let shards = shards_override.unwrap_or((shard_mult * threads).max(2));
        type Cell<'a> = (&'a str, Box<dyn Fn() -> Trial>);
        let makes: Vec<Cell<'_>> = vec![
            (
                "mutexheap",
                Box::new(move || {
                    let q: ConcurrentMultiQueue<u64, MutexHeapSub<u64>> =
                        ConcurrentMultiQueue::with_backend_universe(shards, universe);
                    trial(&q, threads, ops_per_thread, prefill, universe)
                }),
            ),
            (
                "skiplist",
                Box::new(move || {
                    let q: ConcurrentMultiQueue<u64, SkipShard<u64>> =
                        ConcurrentMultiQueue::with_backend_universe(shards, universe);
                    trial(&q, threads, ops_per_thread, prefill, universe)
                }),
            ),
        ];
        // Interleave the repetitions round-robin so background-load
        // drift on the host hits every cell equally; keep each cell's
        // best run.
        let mut best: Vec<Option<Trial>> = makes.iter().map(|_| None).collect();
        for _rep in 0..reps {
            for (slot, (_, make)) in best.iter_mut().zip(&makes) {
                let t = make();
                let better = slot
                    .as_ref()
                    .is_none_or(|b| t.pops as f64 / t.wall_s > b.pops as f64 / b.wall_s);
                if better {
                    *slot = Some(t);
                }
            }
        }
        for ((backend, _), t) in makes.iter().zip(best) {
            let t = t.expect("reps >= 1");
            let record = format!(
                "{{\"queue\":\"multiqueue\",\"backend\":\"{backend}\",\"threads\":{threads},\
                 \"shards\":{shards},\"prefill\":{prefill},\"universe\":{universe},\
                 \"ops\":{},\"wall_s\":{:.6},\"ops_per_sec\":{:.1},\"pops\":{},\
                 \"pops_per_sec\":{:.1},\"inserts\":{},\"merges\":{},\"merge_fraction\":{:.4}}}",
                t.ops,
                t.wall_s,
                t.ops as f64 / t.wall_s,
                t.pops,
                t.pops as f64 / t.wall_s,
                t.inserts,
                t.merges,
                if t.inserts + t.merges == 0 {
                    0.0
                } else {
                    t.merges as f64 / (t.inserts + t.merges) as f64
                },
            );
            println!("json,{record}");
            records.push(record);
        }
    }
    write_json_artifact(&records);
}
