//! **ABL-STICK** — MultiQueue stickiness ablation.
//!
//! The MultiQueue paper proposes letting each thread reuse its sampled
//! queue pair for several consecutive pops ("batching"), trading a little
//! relaxation quality for fewer random choices and cache misses. This
//! ablation measures the quality side: drain throughput workload, rank
//! statistics per stickiness level.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin ablation_stickiness
//! ```

use rsched_bench::{Scale, Table};
use rsched_queues::ConcurrentMultiQueue;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Small => 200_000usize,
        _ => 2_000_000,
    };
    let nqueues = 16;
    println!("== stickiness ablation: {nqueues}-queue MultiQueue, {n} elements ==\n");
    let table = Table::new(
        "abl_stick",
        &[
            "stickiness",
            "drain_ms",
            "mean_rank_proxy",
            "max_rank_proxy",
        ],
    );
    for stickiness in [1usize, 2, 4, 8, 16, 64] {
        let q: ConcurrentMultiQueue<u64> = ConcurrentMultiQueue::new(nqueues);
        for i in 0..n {
            q.push_or_decrease(i, i as u64);
        }
        // Single-threaded drain so the pop order is a clean relaxation
        // signal: the "rank proxy" of the t-th pop is prio − t, the
        // displacement from the exact order.
        let mut session = q.sticky_session(stickiness, 42);
        let start = Instant::now();
        let mut t = 0u64;
        let mut sum_disp = 0u64;
        let mut max_disp = 0u64;
        while let Some((_, prio)) = session.pop() {
            let disp = prio.saturating_sub(t);
            sum_disp += disp;
            max_disp = max_disp.max(disp);
            t += 1;
        }
        let elapsed = start.elapsed();
        assert_eq!(t, n as u64);
        table.row(&[
            stickiness.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", sum_disp as f64 / n as f64),
            max_disp.to_string(),
        ]);
    }
    println!(
        "\nExpected shape: displacement (relaxation) grows with stickiness \
         while drain time falls or stays flat — the trade the MultiQueue \
         paper describes. Stickiness 1 is the plain two-choice MultiQueue."
    );
}
