//! **ABL-STICK** — MultiQueue session ablation: stickiness × spawn batch.
//!
//! The MultiQueue paper proposes letting each thread reuse scheduling
//! state across several consecutive pops ("batching"), trading a little
//! relaxation quality for fewer random choices and cache misses. The
//! workspace's [`MqSession`] realizes this two ways: the **sticky peek
//! cache** (reuse the losing shard's observed *minimum* for up to
//! `stickiness − 1` consecutive pops) and the **spawn buffer** (park up
//! to `spawn_batch` pushes and publish them as one batch). This ablation
//! measures the quality side of both axes: drain-throughput workload,
//! displacement statistics per `(stickiness, spawn_batch)` cell.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin ablation_stickiness
//! ```
//!
//! [`MqSession`]: rsched_queues::MqSession

use rsched_bench::{Scale, Table};
use rsched_queues::{ConcurrentMultiQueue, QueueBuilder, SessionConfig};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Small => 200_000usize,
        _ => 2_000_000,
    };
    let nqueues = 16;
    println!(
        "== session ablation: {nqueues}-queue MultiQueue, {n} elements, \
         stickiness × spawn-batch grid ==\n"
    );
    let table = Table::new(
        "abl_stick",
        &[
            "stickiness",
            "spawn_batch",
            "fill_ms",
            "drain_ms",
            "cache_hit_frac",
            "mean_rank_proxy",
            "max_rank_proxy",
        ],
    );
    for stickiness in [1usize, 2, 4, 8, 16, 64] {
        for spawn_batch in [1usize, 16] {
            let q: ConcurrentMultiQueue<u64> = QueueBuilder::new(nqueues).multiqueue();
            let mut session = q.session(&SessionConfig {
                stickiness,
                spawn_batch,
                seed: 42,
                ..SessionConfig::default()
            });
            let fill_start = Instant::now();
            for i in 0..n {
                q.push_session(i, i as u64, &mut session);
            }
            q.flush_session(&mut session);
            let fill = fill_start.elapsed();
            // Single-threaded drain so the pop order is a clean
            // relaxation signal: the "rank proxy" of the t-th pop is
            // prio − t, the displacement from the exact order.
            let start = Instant::now();
            let mut t = 0u64;
            let mut sum_disp = 0u64;
            let mut max_disp = 0u64;
            let mut cache_hits = 0u64;
            while let Some(((_, prio), src)) = q.pop_session(&mut session) {
                if src == rsched_queues::PopSource::Home {
                    cache_hits += 1;
                }
                let disp = prio.saturating_sub(t);
                sum_disp += disp;
                max_disp = max_disp.max(disp);
                t += 1;
            }
            let elapsed = start.elapsed();
            assert_eq!(t, n as u64);
            table.row(&[
                stickiness.to_string(),
                spawn_batch.to_string(),
                format!("{:.1}", fill.as_secs_f64() * 1e3),
                format!("{:.1}", elapsed.as_secs_f64() * 1e3),
                format!("{:.3}", cache_hits as f64 / n as f64),
                format!("{:.2}", sum_disp as f64 / n as f64),
                max_disp.to_string(),
            ]);
        }
    }
    println!(
        "\nExpected shape: displacement (relaxation) grows with stickiness \
         while drain time falls or stays flat — the trade the MultiQueue \
         paper describes. Stickiness 1 disables the peek cache (the plain \
         two-choice MultiQueue); the spawn-batch axis is quality-neutral \
         here because keyed placement ignores arrival order, so it should \
         move fill time only."
    );
}
