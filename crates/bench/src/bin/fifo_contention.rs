//! **FIFO-CONTENTION** — multithreaded throughput and concurrent
//! rank-error sweep of the relaxed FIFO family across shard backends.
//!
//! For every `(queue ∈ {d-RA, d-CBO}) × (backend ∈ {mutex, ms, segring,
//! faa}) × threads` cell, `threads` workers hammer one shared queue with a
//! 50/50 enqueue/dequeue mix while the
//! [`ConcurrentRankEstimator`] stamps every enqueue and logs every
//! dequeue. Each worker drives the queue through its **worker session**
//! ([`FifoSession`]): the amortized epoch pin, owned home shards drained
//! before stealing, and the bounded spawn buffer that publishes batches
//! — so the sweep exercises exactly the path the runtime's worker pool
//! uses. This is the experiment behind the lock-free-shards claim: under
//! oversubscription a preempted mutex holder stalls its whole shard,
//! while the lock-free backends only lose the preempted thread's own
//! progress ("lock-free algorithms are practically wait-free").
//!
//! Results print as one JSON object per line (prefixed `json,`); set
//! `RSCHED_JSON_OUT=<path>` to also write the full run as a JSON array
//! (what CI uploads as the `BENCH_fifo_contention.json` artifact).
//! `RSCHED_THREADS=1,2,4,8` overrides the default thread sweep,
//! `RSCHED_SCALE` (small/medium/paper) the per-thread operation count,
//! `RSCHED_REPS` the repetitions per cell (the best run is reported,
//! which suppresses scheduler noise on oversubscribed hosts),
//! `RSCHED_SHARD_MULT` the shards-per-thread ratio (default 1, the
//! faithful d-CBO configuration), and the session axes ride on
//! `RSCHED_SHARDS_PER_WORKER` (home shards per worker, 0 = no affinity)
//! and `RSCHED_SPAWN_BATCH` (enqueue batching) — both recorded in every
//! JSON line, plus `RSCHED_SPAWN_BATCH_ADAPTIVE` (grow/shrink the live
//! batch with the home-pop signal; recorded as a non-identity field).
//! `RSCHED_TRACE=1` additionally feeds the flight recorder
//! (`rsched_queues::trace`) from the measured loop — inject/pop/steal/
//! complete events per worker lane — and exports Chrome-trace JSON to
//! `RSCHED_TRACE_OUT` at exit; every record carries a `trace` flag so
//! `bench_compare` never pairs traced and untraced cells.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin fifo_contention
//! RSCHED_THREADS=8,16 RSCHED_SHARDS_PER_WORKER=2 RSCHED_SPAWN_BATCH=8 \
//!     cargo run -p rsched-bench --release --bin fifo_contention
//! ```
//!
//! [`ConcurrentRankEstimator`]: rsched_queues::instrument::ConcurrentRankEstimator
//! [`FifoSession`]: rsched_queues::FifoSession

use rsched_bench::{
    env_opt_usize, env_thread_list, env_usize, session_knobs, spawn_batch_adaptive,
    telemetry_json_fields, write_json_artifact, Scale,
};
use rsched_queues::instrument::ConcurrentRankEstimator;
use rsched_queues::lockfree::{FaaRingQueue, MsQueue, SegRingQueue};
use rsched_queues::trace::{self, EventKind};
use rsched_queues::{
    telemetry, DCboQueue, DRaQueue, FifoRankStats, FifoSession, MutexSub, PopSource, QueueBuilder,
    SessionConfig, SubFifo, TelemetrySnapshot,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// The operations the sweep needs, unified over both family members and
/// every backend. The payload *is* the estimator stamp; all traffic
/// flows through the worker session.
trait ContendedFifo: Sync {
    fn open(&self, cfg: &SessionConfig) -> FifoSession<u64>;
    fn enq(&self, stamp: u64, s: &mut FifoSession<u64>);
    fn deq(&self, s: &mut FifoSession<u64>) -> Option<(u64, PopSource)>;
    /// Publish any parked enqueues (end of a worker's run, pre-drain).
    fn flush(&self, s: &mut FifoSession<u64>);
}

impl<S: SubFifo<u64>> ContendedFifo for DRaQueue<u64, S> {
    fn open(&self, cfg: &SessionConfig) -> FifoSession<u64> {
        self.session(cfg)
    }

    fn enq(&self, stamp: u64, s: &mut FifoSession<u64>) {
        self.push_session(stamp, s);
    }

    fn deq(&self, s: &mut FifoSession<u64>) -> Option<(u64, PopSource)> {
        self.pop_session(s)
    }

    fn flush(&self, s: &mut FifoSession<u64>) {
        self.flush_session(s);
    }
}

impl<S: SubFifo<u64>> ContendedFifo for DCboQueue<u64, S> {
    fn open(&self, cfg: &SessionConfig) -> FifoSession<u64> {
        self.session(cfg)
    }

    fn enq(&self, stamp: u64, s: &mut FifoSession<u64>) {
        self.push_session(stamp, s);
    }

    fn deq(&self, s: &mut FifoSession<u64>) -> Option<(u64, PopSource)> {
        self.pop_session(s)
    }

    fn flush(&self, s: &mut FifoSession<u64>) {
        self.flush_session(s);
    }
}

struct Trial {
    wall_s: f64,
    ops: u64,
    pops: u64,
    home_hits: u64,
    steals: u64,
    stats: FifoRankStats,
    telemetry: TelemetrySnapshot,
}

/// Workload shape: alternating enqueue/dequeue pairs (the classic queue
/// microbenchmark, also the d-CBO paper's), or a seeded random 50/50 mix
/// (`RSCHED_MIX=random`).
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Pairs,
    Random,
}

impl Mix {
    fn from_env() -> Self {
        match std::env::var("RSCHED_MIX").as_deref() {
            Ok("random") => Mix::Random,
            _ => Mix::Pairs,
        }
    }
}

/// Session tuning for one trial cell.
#[derive(Clone, Copy)]
struct Tuning {
    shards_per_worker: usize,
    spawn_batch: usize,
    adaptive: bool,
}

/// Run one contention cell: `threads` workers, each `ops_per_thread`
/// mixed operations against `queue` through per-worker sessions, rank
/// errors estimated live.
fn trial<Q: ContendedFifo>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    prefill: usize,
    mix: Mix,
    tuning: Tuning,
) -> Trial {
    let est = ConcurrentRankEstimator::new();
    {
        let rec = est.recorder();
        let mut session = queue.open(&SessionConfig::unaffine(0xF1F0));
        for _ in 0..prefill {
            queue.enq(rec.stamp_enqueue(), &mut session);
        }
        queue.flush(&mut session);
    }
    // Measured telemetry window: prefill discarded, drain excluded
    // (capture happens right after the workers join).
    telemetry::reset();
    let barrier = Barrier::new(threads);
    let pops = AtomicU64::new(0);
    let home_hits = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let mut rec = est.recorder();
            let (barrier, pops, home_hits, steals, queue) =
                (&barrier, &pops, &home_hits, &steals, &queue);
            scope.spawn(move || {
                use rand::Rng;
                let mut session = queue.open(&SessionConfig {
                    shards_per_worker: tuning.shards_per_worker,
                    spawn_batch: tuning.spawn_batch,
                    adaptive_spawn: tuning.adaptive,
                    ..SessionConfig::for_worker(tid, threads)
                });
                // A private coin for the random mix (the session owns the
                // shard-picker RNG; this one only decides push vs pop).
                let mut coin = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                    tid as u64 * 0x9E37 + 1,
                );
                let (mut my_pops, mut my_homes, mut my_steals) = (0u64, 0u64, 0u64);
                barrier.wait();
                for op in 0..ops_per_thread {
                    let push = match mix {
                        Mix::Pairs => op % 2 == 0,
                        Mix::Random => coin.gen_bool(0.5),
                    };
                    // Flight-recorder probes sit in the measured loop on
                    // purpose: with RSCHED_TRACE unset each `emit` is
                    // one relaxed load and a branch, and the committed
                    // baselines hold this bench to its usual tolerance —
                    // that comparison *is* the disabled-path overhead
                    // assertion.
                    if push {
                        let stamp = rec.stamp_enqueue();
                        trace::emit(EventKind::TaskInject, stamp);
                        queue.enq(stamp, &mut session);
                    } else if let Some((stamp, src)) = queue.deq(&mut session) {
                        // Steal before pop, matching the pool's emission
                        // order: the steal round is what *found* the item
                        // the pop event then claims.
                        match src {
                            PopSource::Home => my_homes += 1,
                            PopSource::Steal => {
                                trace::emit(EventKind::StealRound, stamp);
                                my_steals += 1;
                            }
                            PopSource::Shared => {}
                        }
                        trace::emit(EventKind::TaskPop, stamp);
                        rec.record_dequeue(stamp);
                        my_pops += 1;
                        trace::emit(EventKind::TaskComplete, stamp);
                    }
                }
                // Forced flush at the end of the run: parked enqueues
                // must publish for the conservation accounting below.
                queue.flush(&mut session);
                pops.fetch_add(my_pops, Ordering::Relaxed);
                home_hits.fetch_add(my_homes, Ordering::Relaxed);
                steals.fetch_add(my_steals, Ordering::Relaxed);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let snapshot = telemetry::capture();
    // Drain (unrecorded, outside the timed phase) and account: nothing
    // lost, nothing duplicated.
    let mut drain = queue.open(&SessionConfig::unaffine(0));
    let mut drained = 0u64;
    while queue.deq(&mut drain).is_some() {
        drained += 1;
    }
    let enqueued = est.enqueues();
    let popped = pops.load(Ordering::Relaxed);
    assert_eq!(
        enqueued,
        popped + drained,
        "conservation violated: {enqueued} in, {popped} + {drained} out"
    );
    Trial {
        wall_s,
        ops: (threads * ops_per_thread) as u64,
        pops: popped,
        home_hits: home_hits.load(Ordering::Relaxed),
        steals: steals.load(Ordering::Relaxed),
        stats: est.into_stats(),
        telemetry: snapshot,
    }
}

fn main() {
    let scale = Scale::from_env();
    let ops_per_thread = match scale {
        Scale::Small => 100_000usize,
        Scale::Medium => 400_000,
        Scale::Paper => 1_000_000,
    };
    // Start empty by default: the mixed workload grows the queue
    // organically, exercising both the contended-shard and near-empty
    // regimes (frontier tails); RSCHED_PREFILL pins a starting depth.
    let prefill = env_usize("RSCHED_PREFILL", 0);
    let reps = env_usize("RSCHED_REPS", 8).clamp(1, 16);
    let threads_sweep = env_thread_list(&[1, 2, 4, 8, 16]);
    let mix = Mix::from_env();
    let (shards_per_worker, spawn_batch) = session_knobs();
    let adaptive = spawn_batch_adaptive();
    let tuning = Tuning {
        shards_per_worker,
        spawn_batch,
        adaptive,
    };
    println!(
        "== relaxed-FIFO contention sweep (scale {scale:?}, {ops_per_thread} ops/thread, \
         {} workload, best of {reps}, threads {threads_sweep:?}, \
         shards/worker {shards_per_worker}, spawn batch {spawn_batch}, adaptive {adaptive}) ==",
        if mix == Mix::Pairs {
            "pairs"
        } else {
            "random-mix"
        },
    );
    let mut records: Vec<String> = Vec::new();
    // `trace` rides in every record so baseline comparisons only ever
    // pair traced cells with traced baselines (it's a key field in
    // bench_compare).
    let trace_on = trace::enabled();
    let shard_mult = env_usize("RSCHED_SHARD_MULT", 1).clamp(1, 8);
    let shards_override = env_opt_usize("RSCHED_SHARDS");
    for &threads in &threads_sweep {
        // One shard per thread by default: d-CBO's balanced-operation
        // choice is designed to keep errors low *without* over-sharding
        // (the PPoPP 2025 configuration); RSCHED_SHARD_MULT widens it
        // and RSCHED_SHARDS pins an absolute count.
        let shards = shards_override.unwrap_or((shard_mult * threads).max(4));
        type Cell<'a> = (&'a str, &'a str, Box<dyn Fn() -> Trial>);
        // Both family members over one backend, as boxed cells.
        fn backend_cells<S: SubFifo<u64> + 'static>(
            backend: &'static str,
            shards: usize,
            threads: usize,
            ops_per_thread: usize,
            prefill: usize,
            mix: Mix,
            tuning: Tuning,
        ) -> Vec<Cell<'static>> {
            vec![
                (
                    "d-ra",
                    backend,
                    Box::new(move || {
                        let q = QueueBuilder::new(shards).seed(7).d_ra_on::<u64, S>();
                        trial(&q, threads, ops_per_thread, prefill, mix, tuning)
                    }),
                ),
                (
                    "d-cbo",
                    backend,
                    Box::new(move || {
                        let q = QueueBuilder::new(shards).seed(7).d_cbo_on::<u64, S>();
                        trial(&q, threads, ops_per_thread, prefill, mix, tuning)
                    }),
                ),
            ]
        }
        let mut makes: Vec<Cell<'_>> = Vec::new();
        for backend in ["mutex", "ms", "segring", "faa"] {
            makes.extend(match backend {
                "mutex" => backend_cells::<MutexSub<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                    tuning,
                ),
                "ms" => backend_cells::<MsQueue<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                    tuning,
                ),
                "segring" => backend_cells::<SegRingQueue<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                    tuning,
                ),
                _ => backend_cells::<FaaRingQueue<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                    tuning,
                ),
            });
        }
        // Interleave the repetitions round-robin so background-load
        // drift on the host hits every cell equally, then keep each
        // cell's best run.
        let mut best: Vec<Option<Trial>> = makes.iter().map(|_| None).collect();
        for _rep in 0..reps {
            for (slot, (_, _, make)) in best.iter_mut().zip(&makes) {
                let t = make();
                let better = slot
                    .as_ref()
                    .is_none_or(|b| t.pops as f64 / t.wall_s > b.pops as f64 / b.wall_s);
                if better {
                    *slot = Some(t);
                }
            }
        }
        let cells: Vec<(&str, &str, Trial)> = makes
            .iter()
            .zip(best)
            .map(|(&(q, b, _), t)| (q, b, t.expect("reps >= 1")))
            .collect();
        for (queue, backend, t) in cells {
            let record = format!(
                "{{\"queue\":\"{queue}\",\"backend\":\"{backend}\",\"threads\":{threads},\
                 \"shards\":{shards},\"prefill\":{prefill},\"trace\":{},\
                 \"shards_per_worker\":{shards_per_worker},\"spawn_batch\":{spawn_batch},\
                 \"spawn_batch_adaptive\":{},\
                 \"ops\":{},\"wall_s\":{:.6},\
                 \"ops_per_sec\":{:.1},\"pops\":{},\"pops_per_sec\":{:.1},\
                 \"home_hits\":{},\"home_fraction\":{:.4},\"steals\":{},\
                 \"steal_fraction\":{:.4},\"dequeues_measured\":{},\"mean_rank_error\":{:.4},\
                 \"p99_rank_error\":{},\"max_rank_error\":{},{}}}",
                trace_on as u8,
                adaptive as u8,
                t.ops,
                t.wall_s,
                t.ops as f64 / t.wall_s,
                t.pops,
                t.pops as f64 / t.wall_s,
                t.home_hits,
                if t.pops == 0 {
                    0.0
                } else {
                    t.home_hits as f64 / t.pops as f64
                },
                t.steals,
                if t.pops == 0 {
                    0.0
                } else {
                    t.steals as f64 / t.pops as f64
                },
                t.stats.dequeues,
                t.stats.mean_error(),
                t.stats.error_quantile(0.99),
                t.stats.max_error,
                telemetry_json_fields(&t.telemetry),
            );
            println!("json,{record}");
            records.push(record);
        }
    }
    // With RSCHED_TRACE=1 the rings now hold the last events of every
    // worker lane; write the Perfetto-loadable Chrome trace if a sink
    // is configured (no-op when tracing is off).
    trace::export_if_configured();
    write_json_artifact(&records);
}
