//! **FIFO-CONTENTION** — multithreaded throughput and concurrent
//! rank-error sweep of the relaxed FIFO family across shard backends.
//!
//! For every `(queue ∈ {d-RA, d-CBO}) × (backend ∈ {mutex, ms, segring})
//! × threads` cell, `threads` workers hammer one shared queue with a
//! 50/50 enqueue/dequeue mix (worker-affine dequeues, so steal counts
//! are meaningful) while the
//! [`ConcurrentRankEstimator`] stamps every enqueue and logs every
//! dequeue. This is the experiment
//! behind the lock-free-shards claim: under oversubscription a preempted
//! mutex holder stalls its whole shard, while the lock-free backends
//! only lose the preempted thread's own progress ("lock-free algorithms
//! are practically wait-free").
//!
//! Results print as one JSON object per line (prefixed `json,`); set
//! `RSCHED_JSON_OUT=<path>` to also write the full run as a JSON array
//! (what CI uploads as the `BENCH_fifo_contention.json` artifact).
//! `RSCHED_THREADS=1,2,4,8` overrides the default thread sweep,
//! `RSCHED_SCALE` (small/medium/paper) the per-thread operation count,
//! `RSCHED_REPS` the repetitions per cell (the best run is reported,
//! which suppresses scheduler noise on oversubscribed hosts), and
//! `RSCHED_SHARD_MULT` the shards-per-thread ratio (default 1, the
//! faithful d-CBO configuration).
//!
//! ```text
//! cargo run -p rsched-bench --release --bin fifo_contention
//! RSCHED_THREADS=8,16 RSCHED_SCALE=medium \
//!     cargo run -p rsched-bench --release --bin fifo_contention
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsched_bench::{env_thread_list, write_json_artifact, Scale};
use rsched_queues::instrument::ConcurrentRankEstimator;
use rsched_queues::lockfree::{MsQueue, SegRingQueue};
use rsched_queues::{DCboQueue, DRaQueue, FifoRankStats, MutexSub, PinSession, SubFifo};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// The operations the sweep needs, unified over both family members and
/// every backend. The payload *is* the estimator stamp.
trait ContendedFifo: Sync {
    fn enq(&self, stamp: u64, rng: &mut SmallRng, session: &PinSession);
    /// Worker-affine dequeue: `(stamp, stolen)`.
    fn deq(&self, home: usize, rng: &mut SmallRng, session: &PinSession) -> Option<(u64, bool)>;
    /// Amortized epoch pin, inert for lock-based backends.
    fn session(&self) -> PinSession;
}

impl<S: SubFifo<u64>> ContendedFifo for DRaQueue<u64, S> {
    fn enq(&self, stamp: u64, rng: &mut SmallRng, session: &PinSession) {
        self.enqueue_in(stamp, rng, session);
    }

    fn deq(&self, home: usize, rng: &mut SmallRng, session: &PinSession) -> Option<(u64, bool)> {
        self.dequeue_from_in(home, rng, session)
    }

    fn session(&self) -> PinSession {
        self.pin_session()
    }
}

impl<S: SubFifo<u64>> ContendedFifo for DCboQueue<u64, S> {
    fn enq(&self, stamp: u64, rng: &mut SmallRng, session: &PinSession) {
        self.enqueue_in(stamp, rng, session);
    }

    fn deq(&self, home: usize, rng: &mut SmallRng, session: &PinSession) -> Option<(u64, bool)> {
        self.dequeue_from_in(home, rng, session)
    }

    fn session(&self) -> PinSession {
        self.pin_session()
    }
}

struct Trial {
    wall_s: f64,
    ops: u64,
    pops: u64,
    steals: u64,
    stats: FifoRankStats,
}

/// Workload shape: alternating enqueue/dequeue pairs (the classic queue
/// microbenchmark, also the d-CBO paper's), or a seeded random 50/50 mix
/// (`RSCHED_MIX=random`).
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Pairs,
    Random,
}

impl Mix {
    fn from_env() -> Self {
        match std::env::var("RSCHED_MIX").as_deref() {
            Ok("random") => Mix::Random,
            _ => Mix::Pairs,
        }
    }
}

/// Run one contention cell: `threads` workers, each `ops_per_thread`
/// mixed operations against `queue`, rank errors estimated live.
fn trial<Q: ContendedFifo>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    prefill: usize,
    mix: Mix,
) -> Trial {
    let est = ConcurrentRankEstimator::new();
    {
        let rec = est.recorder();
        let mut rng = SmallRng::seed_from_u64(0xF1F0);
        let session = PinSession::none();
        for _ in 0..prefill {
            queue.enq(rec.stamp_enqueue(), &mut rng, &session);
        }
    }
    let barrier = Barrier::new(threads);
    let pops = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let mut rec = est.recorder();
            let (barrier, pops, steals, queue) = (&barrier, &pops, &steals, &queue);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(tid as u64 * 0x9E37 + 1);
                let mut my_pops = 0u64;
                let mut my_steals = 0u64;
                // One epoch pin per batch of ops, as a real worker would
                // hold it, instead of one per operation.
                let mut session = queue.session();
                barrier.wait();
                for op in 0..ops_per_thread {
                    session.tick();
                    let push = match mix {
                        Mix::Pairs => op % 2 == 0,
                        Mix::Random => rng.gen_bool(0.5),
                    };
                    if push {
                        queue.enq(rec.stamp_enqueue(), &mut rng, &session);
                    } else if let Some((stamp, stolen)) = queue.deq(tid, &mut rng, &session) {
                        rec.record_dequeue(stamp);
                        my_pops += 1;
                        my_steals += u64::from(stolen);
                    }
                }
                pops.fetch_add(my_pops, Ordering::Relaxed);
                steals.fetch_add(my_steals, Ordering::Relaxed);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    // Drain (unrecorded, outside the timed phase) and account: nothing
    // lost, nothing duplicated.
    let mut rng = SmallRng::seed_from_u64(0);
    let mut drained = 0u64;
    let session = PinSession::none();
    while queue.deq(usize::MAX, &mut rng, &session).is_some() {
        drained += 1;
    }
    let enqueued = est.enqueues();
    let popped = pops.load(Ordering::Relaxed);
    assert_eq!(
        enqueued,
        popped + drained,
        "conservation violated: {enqueued} in, {popped} + {drained} out"
    );
    Trial {
        wall_s,
        ops: (threads * ops_per_thread) as u64,
        pops: popped,
        steals: steals.load(Ordering::Relaxed),
        stats: est.into_stats(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let ops_per_thread = match scale {
        Scale::Small => 100_000usize,
        Scale::Medium => 400_000,
        Scale::Paper => 1_000_000,
    };
    // Start empty by default: the mixed workload grows the queue
    // organically, exercising both the contended-shard and near-empty
    // regimes (frontier tails); RSCHED_PREFILL pins a starting depth.
    let prefill = std::env::var("RSCHED_PREFILL")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let reps = std::env::var("RSCHED_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .clamp(1, 16);
    let threads_sweep = env_thread_list(&[1, 2, 4, 8, 16]);
    let mix = Mix::from_env();
    println!(
        "== relaxed-FIFO contention sweep (scale {scale:?}, {ops_per_thread} ops/thread, \
         {} workload, best of {reps}, threads {threads_sweep:?}) ==",
        if mix == Mix::Pairs {
            "pairs"
        } else {
            "random-mix"
        },
    );
    let mut records: Vec<String> = Vec::new();
    let shard_mult = std::env::var("RSCHED_SHARD_MULT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, 8);
    let shards_override = std::env::var("RSCHED_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    for &threads in &threads_sweep {
        // One shard per thread by default: d-CBO's balanced-operation
        // choice is designed to keep errors low *without* over-sharding
        // (the PPoPP 2025 configuration); RSCHED_SHARD_MULT widens it
        // and RSCHED_SHARDS pins an absolute count.
        let shards = shards_override.unwrap_or((shard_mult * threads).max(4));
        type Cell<'a> = (&'a str, &'a str, Box<dyn Fn() -> Trial>);
        // Both family members over one backend, as boxed cells.
        fn backend_cells<S: SubFifo<u64> + 'static>(
            backend: &'static str,
            shards: usize,
            threads: usize,
            ops_per_thread: usize,
            prefill: usize,
            mix: Mix,
        ) -> Vec<Cell<'static>> {
            vec![
                (
                    "d-ra",
                    backend,
                    Box::new(move || {
                        let q = DRaQueue::<u64, S>::with_backend(shards, 2, 7);
                        trial(&q, threads, ops_per_thread, prefill, mix)
                    }),
                ),
                (
                    "d-cbo",
                    backend,
                    Box::new(move || {
                        let q = DCboQueue::<u64, S>::with_backend(shards, 2, 7);
                        trial(&q, threads, ops_per_thread, prefill, mix)
                    }),
                ),
            ]
        }
        let mut makes: Vec<Cell<'_>> = Vec::new();
        for backend in ["mutex", "ms", "segring"] {
            makes.extend(match backend {
                "mutex" => backend_cells::<MutexSub<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                ),
                "ms" => backend_cells::<MsQueue<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                ),
                _ => backend_cells::<SegRingQueue<u64>>(
                    backend,
                    shards,
                    threads,
                    ops_per_thread,
                    prefill,
                    mix,
                ),
            });
        }
        // Interleave the repetitions round-robin so background-load
        // drift on the host hits every cell equally, then keep each
        // cell's best run.
        let mut best: Vec<Option<Trial>> = makes.iter().map(|_| None).collect();
        for _rep in 0..reps {
            for (slot, (_, _, make)) in best.iter_mut().zip(&makes) {
                let t = make();
                let better = slot
                    .as_ref()
                    .is_none_or(|b| t.pops as f64 / t.wall_s > b.pops as f64 / b.wall_s);
                if better {
                    *slot = Some(t);
                }
            }
        }
        let cells: Vec<(&str, &str, Trial)> = makes
            .iter()
            .zip(best)
            .map(|(&(q, b, _), t)| (q, b, t.expect("reps >= 1")))
            .collect();
        for (queue, backend, t) in cells {
            let record = format!(
                "{{\"queue\":\"{queue}\",\"backend\":\"{backend}\",\"threads\":{threads},\
                 \"shards\":{shards},\"prefill\":{prefill},\"ops\":{},\"wall_s\":{:.6},\
                 \"ops_per_sec\":{:.1},\"pops\":{},\"pops_per_sec\":{:.1},\"steals\":{},\
                 \"steal_fraction\":{:.4},\"dequeues_measured\":{},\"mean_rank_error\":{:.4},\
                 \"p99_rank_error\":{},\"max_rank_error\":{}}}",
                t.ops,
                t.wall_s,
                t.ops as f64 / t.wall_s,
                t.pops,
                t.pops as f64 / t.wall_s,
                t.steals,
                if t.pops == 0 {
                    0.0
                } else {
                    t.steals as f64 / t.pops as f64
                },
                t.stats.dequeues,
                t.stats.mean_error(),
                t.stats.error_quantile(0.99),
                t.stats.max_error,
            );
            println!("json,{record}");
            records.push(record);
        }
    }
    write_json_artifact(&records);
}
