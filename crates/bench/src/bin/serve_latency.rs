//! Open-loop serving benchmark: offered load vs sojourn-latency tails.
//!
//! Closed-loop benchmarks (every other bin in this crate) measure
//! *capacity*: N workers hammer the queue as fast as it admits work, so
//! latency is meaningless — each request waits exactly as long as the
//! benchmark makes it. This bin is the **open-system** complement, the
//! "Practically Wait-Free?" methodology applied end-to-end: requests
//! arrive on a schedule *independent of completions* (an overloaded
//! server falls behind instead of slowing the generator), and the
//! figure of merit is the sojourn-latency distribution — p50/p99/p999
//! from scheduled arrival to completion — as a function of offered
//! rate, arrival burstiness, worker count and scheduler backend.
//!
//! ## Arrival processes
//!
//! * `poisson` — exponential interarrivals at the per-connection rate;
//!   the memoryless baseline.
//! * `burst` — a Markov-modulated on/off process (MMPP-2): exponential
//!   ~50 ms ON and OFF phases, arrivals at 2× the nominal rate while
//!   ON, none while OFF. Same long-run average rate as `poisson`, but
//!   the ON phases probe how the scheduler absorbs transient overload —
//!   burstiness is where relaxed-queue tails actually differ.
//! * `diurnal` — nonhomogeneous Poisson replay of a committed
//!   day-shaped rate trace (`RSCHED_TRACE_FILE`, default
//!   `ci/traces/diurnal.json`): the trace's hour-by-hour weights are
//!   compressed into the cell's duration (hours → fractions of a
//!   second), normalized so the *long-run average* still equals the
//!   offered rate, and sampled by thinning against the peak rate with
//!   piecewise-linear interpolation between hour points. Cells stay
//!   comparable to `poisson` at the same offered rate while probing a
//!   realistic peak-and-trough load shape.
//!
//! Latency is measured from the request's *scheduled* arrival time, not
//! from when the sender managed to write it: if the sender falls behind
//! the schedule, that lag is queueing delay the open system must own.
//!
//! ## Deadlines: modes and budgets
//!
//! Every request is a v2 [`SubmitV2`] carrying a **relative deadline
//! budget**, so every completion reports a met/missed verdict. Two
//! sweep axes shape the deadline story:
//!
//! * `mode` — `arrival` handshakes v2 *without* requesting EDF (the
//!   server schedules by arrival, deadlines are only measured);
//!   `edf` requests [`FEAT_EDF`], so the deadline *is* the scheduling
//!   key. Same traffic, same measurements — the mode axis isolates
//!   exactly the scheduling-policy effect on miss rate.
//! * `deadline_budget` — `tight` (every request gets
//!   `RSCHED_BUDGET_TIGHT_NS`), `loose` (`RSCHED_BUDGET_LOOSE_NS`), or
//!   `mixed` (alternating per request). `mixed` is where EDF earns its
//!   keep: urgent requests overtake lax ones instead of queueing behind
//!   them.
//!
//! ## Modes of operation
//!
//! Self-hosted (default): each grid cell boots an in-process
//! [`Server`] on an ephemeral port, so one run sweeps
//! `backends × threads × arrivals × rates × modes × budgets`
//! hermetically. With `RSCHED_SERVE_ADDR` set the bin instead drives an
//! already-running external server (the CI smoke job's shape) and
//! sweeps only `arrivals × rates × modes × budgets`, recording
//! `RSCHED_SERVE_BACKEND` / `RSCHED_SERVE_THREADS` /
//! `RSCHED_SERVE_CAP` as the cell identity.
//!
//! ## Knobs
//!
//! | env | default | axis |
//! |---|---|---|
//! | `RSCHED_RATES` | `1000,4000` | offered req/s, total across clients |
//! | `RSCHED_ARRIVALS` | `poisson,burst` | arrival processes (`poisson`, `burst`, `diurnal`) |
//! | `RSCHED_MODES` | `arrival,edf` | scheduling modes |
//! | `RSCHED_BUDGETS` | `mixed` | deadline budget classes (`tight`, `loose`, `mixed`) |
//! | `RSCHED_BUDGET_TIGHT_NS` | `3000000` | tight budget, ns |
//! | `RSCHED_BUDGET_LOOSE_NS` | `30000000` | loose budget, ns |
//! | `RSCHED_TRACE_FILE` | `ci/traces/diurnal.json` | diurnal rate trace |
//! | `RSCHED_THREADS` | `2` | worker threads (self-host) |
//! | `RSCHED_BACKENDS` | `mq,dcbo` | backends (self-host) |
//! | `RSCHED_CLIENTS` | `2` | concurrent connections |
//! | `RSCHED_WORK_NS` | `20000` | synthetic service time per request |
//! | `RSCHED_DURATION_S` | `1.0` | offered-load window per cell |
//! | `RSCHED_SERVE_CAP` | `4096` | admission bound (self-host) |
//! | `RSCHED_SEED` | `42` | generator RNG seed |
//!
//! Every cell prints a `json,{...}` line and the set is written to
//! `RSCHED_JSON_OUT`; `bench_compare` gates `lat_p999` *and*
//! `miss_rate` against the committed baseline (see
//! `ci/baselines/serve_latency.json` / `serve_deadline.json`). Each
//! record carries the client-side deadline verdict columns
//! (`deadline_met`, `deadline_misses`, `miss_rate`, `tardiness_*`),
//! the server's own deadline accounting (`srv_deadline_misses`,
//! `srv_miss_permille`, `srv_tardiness_p99`) and the shared
//! `telemetry_json_fields` tail (`retry_*`, `steal_*`, `flush_*`, …),
//! pulled from the server over the wire via a [`Request::Metrics`]
//! poll just before the drain — so the compare gate can bound
//! retry/steal tails on serving cells with the same keys the
//! closed-loop contention benches use.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsched_bench::json;
use rsched_bench::{
    env_f64, env_list, env_u64, env_usize, telemetry_json_fields, write_json_artifact, Table,
};
use rsched_queues::telemetry::PowHistogram;
use rsched_serve::{
    Backend, Endpoint, MetricsReply, Request, Response, ServeClient, ServeConfig, Server,
    StatsReply, SubmitV2, FEAT_EDF, PROTO_V2,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Mean ON / OFF phase length of the bursty (MMPP-2) arrival process.
const BURST_PHASE_MEAN_S: f64 = 0.05;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arrival {
    Poisson,
    Burst,
    Diurnal,
}

impl Arrival {
    fn name(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Burst => "burst",
            Arrival::Diurnal => "diurnal",
        }
    }
}

impl std::str::FromStr for Arrival {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(Arrival::Poisson),
            "burst" => Ok(Arrival::Burst),
            "diurnal" => Ok(Arrival::Diurnal),
            other => Err(format!("unknown arrival process {other:?}")),
        }
    }
}

/// Scheduling mode: which feature set the v2 handshake requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// v2 handshake, no EDF grant: the server schedules by arrival
    /// order; deadlines are measured but do not steer.
    Arrival,
    /// v2 handshake requesting [`FEAT_EDF`]: earliest deadline first.
    Edf,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Arrival => "arrival",
            Mode::Edf => "edf",
        }
    }

    fn features(self) -> u64 {
        match self {
            Mode::Arrival => 0,
            Mode::Edf => FEAT_EDF,
        }
    }
}

impl std::str::FromStr for Mode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "arrival" => Ok(Mode::Arrival),
            "edf" => Ok(Mode::Edf),
            other => Err(format!("unknown mode {other:?}")),
        }
    }
}

/// Deadline budget class: how much slack each request is granted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Budget {
    Tight,
    Loose,
    /// Alternate tight/loose per request — the heterogeneous workload
    /// where deadline scheduling can actually reorder to advantage.
    Mixed,
}

impl Budget {
    fn name(self) -> &'static str {
        match self {
            Budget::Tight => "tight",
            Budget::Loose => "loose",
            Budget::Mixed => "mixed",
        }
    }

    /// Budget of the `seq`-th request on a connection, ns.
    fn budget_ns(self, seq: u64, tight_ns: u64, loose_ns: u64) -> u64 {
        match self {
            Budget::Tight => tight_ns,
            Budget::Loose => loose_ns,
            Budget::Mixed => {
                if seq.is_multiple_of(2) {
                    tight_ns
                } else {
                    loose_ns
                }
            }
        }
    }
}

impl std::str::FromStr for Budget {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tight" => Ok(Budget::Tight),
            "loose" => Ok(Budget::Loose),
            "mixed" => Ok(Budget::Mixed),
            other => Err(format!("unknown deadline budget {other:?}")),
        }
    }
}

/// The diurnal rate trace: relative hour weights, normalized for
/// thinning. Loaded once from the committed JSON file.
struct DiurnalTrace {
    /// Hour weights, mean-normalized (average = 1.0).
    weights: Vec<f64>,
    /// `max(weights)` — the thinning envelope multiplier.
    peak: f64,
}

impl DiurnalTrace {
    fn load(path: &str) -> Result<DiurnalTrace, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading trace {path}: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let hours = doc
            .get("hours")
            .and_then(json::Value::as_arr)
            .ok_or_else(|| format!("{path}: no \"hours\" array"))?;
        let raw: Vec<f64> = hours
            .iter()
            .map(|v| v.as_f64().filter(|x| *x > 0.0 && x.is_finite()))
            .collect::<Option<_>>()
            .ok_or_else(|| format!("{path}: hours must be positive numbers"))?;
        if raw.len() < 2 {
            return Err(format!("{path}: need at least 2 hour points"));
        }
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        let weights: Vec<f64> = raw.iter().map(|w| w / mean).collect();
        let peak = weights.iter().fold(0.0, |a: f64, &b| a.max(b));
        Ok(DiurnalTrace { weights, peak })
    }

    /// Relative rate at `frac` of the (compressed) day, in `[0, 1)`:
    /// piecewise-linear between hour points, wrapping midnight.
    fn weight_at(&self, frac: f64) -> f64 {
        let n = self.weights.len();
        let pos = frac.rem_euclid(1.0) * n as f64;
        let i = (pos as usize) % n;
        let t = pos - pos.floor();
        self.weights[i] * (1.0 - t) + self.weights[(i + 1) % n] * t
    }
}

/// Everything one connection needs to generate its share of a cell's
/// load: the arrival process, the deadline discipline and the window.
struct Workload {
    arrival: Arrival,
    rate_per_conn: f64,
    duration: Duration,
    work_ns: u64,
    mode: Mode,
    budget: Budget,
    tight_ns: u64,
    loose_ns: u64,
    /// Base RNG seed; each connection derives its own from it.
    seed: u64,
    /// Present iff `arrival == Diurnal`.
    diurnal: Option<Arc<DiurnalTrace>>,
}

/// Exponential sample with mean `1/rate` seconds.
fn exp_s(rng: &mut SmallRng, rate: f64) -> f64 {
    // 1 - u in (0, 1]: ln never sees 0.
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

/// One connection's wire totals after its drain.
#[derive(Default)]
struct ConnTotals {
    submitted: u64,
    accepted: u64,
    rejected: u64,
    completed: u64,
    /// Completions that met their deadline (client-counted verdicts).
    deadline_met: u64,
    /// Completions that missed.
    deadline_misses: u64,
    /// The server's final per-run stats snapshot (last Stats reply).
    server_stats: Option<StatsReply>,
    /// The server's live telemetry + gauges (last Metrics reply).
    server_metrics: Option<MetricsReply>,
}

/// Drive one connection open-loop: handshake v2 (requesting the mode's
/// features), schedule arrivals for the window, send deadline-carrying
/// SubmitV2s on schedule, record sojourn (scheduled arrival →
/// CompletedV2) into `lat` and the deadline verdicts into `tard`, then
/// Stats + Drain and verify conservation.
fn drive_connection(
    endpoint: &Endpoint,
    w: &Workload,
    base_id: u64,
    seed: u64,
    lat: &PowHistogram,
    tard: &PowHistogram,
) -> ConnTotals {
    let mut client = ServeClient::connect(endpoint).expect("connect");
    let ack = client
        .handshake(PROTO_V2, w.mode.features())
        .expect("v2 handshake");
    assert_eq!(ack.version, PROTO_V2, "server negotiated below v2");
    assert_eq!(
        ack.features,
        w.mode.features(),
        "server granted unexpected features"
    );
    let (mut tx, mut rx) = client.split();
    // req_id → scheduled arrival instant; sender inserts *before* the
    // frame is written so the receiver can never miss it.
    let in_flight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();

    let (arrival, rate_per_conn, duration, work_ns) =
        (w.arrival, w.rate_per_conn, w.duration, w.work_ns);
    let (budget, tight_ns, loose_ns) = (w.budget, w.tight_ns, w.loose_ns);
    let diurnal = w.diurnal.clone();
    let sender_map = Arc::clone(&in_flight);
    let sender = std::thread::spawn(move || {
        let mut rng = SmallRng::seed_from_u64(seed);
        let phase_rate = 1.0 / BURST_PHASE_MEAN_S;
        let start = Instant::now();
        let mut next_s = 0.0f64; // scheduled offset of the next arrival
        let mut burst_on = true;
        let mut phase_end_s = exp_s(&mut rng, phase_rate);
        let mut submitted = 0u64;
        loop {
            match arrival {
                Arrival::Poisson => next_s += exp_s(&mut rng, rate_per_conn),
                Arrival::Diurnal => {
                    // Nonhomogeneous Poisson by thinning: candidate
                    // arrivals at the trace's peak rate, each kept with
                    // probability rate(t)/peak. The trace's full cycle
                    // is compressed into the cell window, so `next_s /
                    // duration` is the position in the (normalized)
                    // day.
                    let trace = diurnal.as_ref().expect("diurnal trace not loaded");
                    let lambda_max = rate_per_conn * trace.peak;
                    loop {
                        next_s += exp_s(&mut rng, lambda_max);
                        if next_s >= duration.as_secs_f64() {
                            break;
                        }
                        let frac = next_s / duration.as_secs_f64();
                        if rng.gen::<f64>() * trace.peak <= trace.weight_at(frac) {
                            break;
                        }
                    }
                }
                Arrival::Burst => {
                    // MMPP-2: Poisson at 2× nominal while ON, silent
                    // while OFF, exponential phase lengths. Discarding
                    // the residual interarrival at a phase switch is
                    // exact — the ON process is memoryless.
                    loop {
                        if !burst_on {
                            next_s = phase_end_s;
                            burst_on = true;
                            phase_end_s = next_s + exp_s(&mut rng, phase_rate);
                        }
                        let candidate = next_s + exp_s(&mut rng, 2.0 * rate_per_conn);
                        if candidate <= phase_end_s {
                            next_s = candidate;
                            break;
                        }
                        next_s = phase_end_s;
                        burst_on = false;
                        phase_end_s = next_s + exp_s(&mut rng, phase_rate);
                    }
                }
            }
            if next_s >= duration.as_secs_f64() {
                break;
            }
            let scheduled = start + Duration::from_secs_f64(next_s);
            // Open loop: wait for the schedule, never for the server.
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            let req_id = base_id + submitted;
            sender_map
                .lock()
                .expect("latency map poisoned")
                .insert(req_id, scheduled);
            // Relative budgets: the deadline clock starts at server
            // receipt, so sender-side schedule lag does not eat into
            // the budget — the miss rate measures scheduling, not the
            // generator.
            tx.send(&Request::SubmitV2(SubmitV2 {
                req_id,
                deadline: budget.budget_ns(submitted, tight_ns, loose_ns),
                work_ns,
                absolute: false,
            }))
            .expect("send submit");
            submitted += 1;
        }
        tx.send(&Request::Metrics).expect("send metrics");
        tx.send(&Request::Stats).expect("send stats");
        tx.send(&Request::Drain).expect("send drain");
        submitted
    });

    let mut totals = ConnTotals::default();
    loop {
        let resp = rx
            .recv()
            .expect("recv")
            .expect("server closed before Drained");
        match resp {
            Response::Accepted { .. } => totals.accepted += 1,
            Response::Rejected { req_id, .. } => {
                totals.rejected += 1;
                // A rejected request has no sojourn.
                in_flight
                    .lock()
                    .expect("latency map poisoned")
                    .remove(&req_id);
            }
            Response::Completed(c) => {
                totals.completed += 1;
                let scheduled = in_flight
                    .lock()
                    .expect("latency map poisoned")
                    .remove(&c.req_id)
                    .expect("Completed for unknown req_id");
                lat.record(scheduled.elapsed().as_nanos() as u64);
            }
            Response::CompletedV2(c) => {
                totals.completed += 1;
                if c.met {
                    totals.deadline_met += 1;
                } else {
                    totals.deadline_misses += 1;
                }
                tard.record(c.tardiness_ns);
                let scheduled = in_flight
                    .lock()
                    .expect("latency map poisoned")
                    .remove(&c.req_id)
                    .expect("CompletedV2 for unknown req_id");
                lat.record(scheduled.elapsed().as_nanos() as u64);
            }
            Response::Stats(s) => totals.server_stats = Some(s),
            Response::Metrics(m) => totals.server_metrics = Some(*m),
            Response::Drained { completed } => {
                assert_eq!(
                    completed, totals.completed,
                    "server and client disagree on completions"
                );
                break;
            }
            Response::Pong { .. } | Response::HelloAck(_) => {}
        }
    }
    totals.submitted = sender.join().expect("sender panicked");
    assert_eq!(
        totals.accepted + totals.rejected,
        totals.submitted,
        "conservation: every submit must be answered"
    );
    assert_eq!(
        totals.deadline_met + totals.deadline_misses,
        totals.completed,
        "conservation: every v2 completion carries a deadline verdict"
    );
    assert!(
        in_flight.lock().expect("latency map poisoned").is_empty(),
        "requests left unanswered after drain"
    );
    totals
}

struct Cell {
    backend_name: String,
    threads: usize,
    queue_cap: usize,
    arrival: Arrival,
    offered_rate: f64,
    mode: Mode,
    budget: Budget,
}

fn run_cell(endpoint: &Endpoint, cell: &Cell, clients: usize, w_proto: &Workload) -> String {
    let lat = PowHistogram::new();
    let tard = PowHistogram::new();
    let rate_per_conn = cell.offered_rate / clients as f64;
    let started = Instant::now();
    let totals: Vec<ConnTotals> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let (lat, tard) = (&lat, &tard);
                let w = Workload {
                    arrival: cell.arrival,
                    rate_per_conn,
                    duration: w_proto.duration,
                    work_ns: w_proto.work_ns,
                    mode: cell.mode,
                    budget: cell.budget,
                    tight_ns: w_proto.tight_ns,
                    loose_ns: w_proto.loose_ns,
                    seed: w_proto.seed,
                    diurnal: w_proto.diurnal.clone(),
                };
                let seed = w_proto.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                scope.spawn(move || {
                    drive_connection(endpoint, &w, (c as u64) << 40, seed, lat, tard)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let submitted: u64 = totals.iter().map(|t| t.submitted).sum();
    let accepted: u64 = totals.iter().map(|t| t.accepted).sum();
    let rejected: u64 = totals.iter().map(|t| t.rejected).sum();
    let completed: u64 = totals.iter().map(|t| t.completed).sum();
    let deadline_met: u64 = totals.iter().map(|t| t.deadline_met).sum();
    let deadline_misses: u64 = totals.iter().map(|t| t.deadline_misses).sum();
    let miss_rate = if completed == 0 {
        0.0
    } else {
        deadline_misses as f64 / completed as f64
    };
    let srv = totals
        .iter()
        .rev()
        .find_map(|t| t.server_stats)
        .unwrap_or_default();
    // The wire-polled server telemetry: same keys the closed-loop
    // benches emit, so serving cells gate on retry/steal tails too.
    let metrics = totals
        .iter()
        .rev()
        .find_map(|t| t.server_metrics.clone())
        .unwrap_or_default();
    format!(
        "{{\"bench\":\"serve_latency\",\"backend\":\"{}\",\"threads\":{},\
         \"arrival_process\":\"{}\",\"offered_rate\":{:.1},\"clients\":{},\
         \"work_ns\":{},\"queue_cap\":{},\"duration_s\":{:.3},\
         \"mode\":\"{}\",\"deadline_budget\":\"{}\",\
         \"submitted\":{},\"accepted\":{},\"rejected\":{},\"completed\":{},\
         \"achieved_rate\":{:.1},\"accepted_per_sec\":{:.1},\
         \"lat_p50\":{},\"lat_p99\":{},\"lat_p999\":{},\"lat_max\":{},\
         \"lat_count\":{},\
         \"deadline_met\":{},\"deadline_misses\":{},\"miss_rate\":{:.4},\
         \"tardiness_p99\":{},\"tardiness_p999\":{},\"tardiness_max\":{},\
         \"srv_sojourn_p50\":{},\"srv_sojourn_p99\":{},\
         \"srv_sojourn_p999\":{},\"srv_inject_p99\":{},\"srv_in_flight\":{},\
         \"srv_deadline_misses\":{},\"srv_miss_permille\":{},\
         \"srv_tardiness_p99\":{},{}}}",
        cell.backend_name,
        cell.threads,
        cell.arrival.name(),
        cell.offered_rate,
        clients,
        w_proto.work_ns,
        cell.queue_cap,
        elapsed,
        cell.mode.name(),
        cell.budget.name(),
        submitted,
        accepted,
        rejected,
        completed,
        submitted as f64 / elapsed,
        accepted as f64 / elapsed,
        lat.quantile(0.50),
        lat.quantile(0.99),
        lat.quantile(0.999),
        lat.max_observed(),
        lat.count(),
        deadline_met,
        deadline_misses,
        miss_rate,
        tard.quantile(0.99),
        tard.quantile(0.999),
        tard.max_observed(),
        srv.sojourn_p50,
        srv.sojourn_p99,
        srv.sojourn_p999,
        srv.inject_p99,
        metrics.in_flight,
        srv.deadline_misses,
        srv.miss_permille,
        srv.tardiness_p99,
        telemetry_json_fields(&metrics.telemetry),
    )
}

fn main() {
    let rates = env_list::<f64>("RSCHED_RATES", &[1_000.0, 4_000.0]);
    let arrivals = env_list::<Arrival>("RSCHED_ARRIVALS", &[Arrival::Poisson, Arrival::Burst]);
    let modes = env_list::<Mode>("RSCHED_MODES", &[Mode::Arrival, Mode::Edf]);
    let budgets = env_list::<Budget>("RSCHED_BUDGETS", &[Budget::Mixed]);
    let clients = env_usize("RSCHED_CLIENTS", 2).max(1);
    let work_ns = env_u64("RSCHED_WORK_NS", 20_000);
    let duration = Duration::from_secs_f64(env_f64("RSCHED_DURATION_S", 1.0).max(0.05));
    let seed = env_u64("RSCHED_SEED", 42);
    let queue_cap = env_usize("RSCHED_SERVE_CAP", 4096);
    let tight_ns = env_u64("RSCHED_BUDGET_TIGHT_NS", 3_000_000);
    let loose_ns = env_u64("RSCHED_BUDGET_LOOSE_NS", 30_000_000);
    let diurnal = if arrivals.contains(&Arrival::Diurnal) {
        let path =
            std::env::var("RSCHED_TRACE_FILE").unwrap_or_else(|_| "ci/traces/diurnal.json".into());
        match DiurnalTrace::load(&path) {
            Ok(t) => Some(Arc::new(t)),
            Err(e) => {
                eprintln!("serve_latency: {e}");
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    // The per-cell template; arrival/mode/budget/rate vary per cell.
    let w_proto = Workload {
        arrival: Arrival::Poisson,
        rate_per_conn: 0.0,
        duration,
        work_ns,
        mode: Mode::Arrival,
        budget: Budget::Mixed,
        tight_ns,
        loose_ns,
        seed,
        diurnal,
    };

    let table = Table::new(
        "serve_latency",
        &[
            "backend", "threads", "arrival", "mode", "budget", "rate/s", "accept/s", "rej",
            "p99_us", "p999_us", "miss%",
        ],
    );
    let mut records = Vec::new();

    let mut run_and_log = |endpoint: &Endpoint, cell: &Cell| {
        let record = run_cell(endpoint, cell, clients, &w_proto);
        println!("json,{record}");
        let get = |k: &str| -> String {
            let pat = format!("\"{k}\":");
            let rest = &record[record.find(&pat).expect("field") + pat.len()..];
            rest[..rest.find([',', '}']).expect("terminator")]
                .trim_matches('"')
                .to_string()
        };
        let us = |k: &str| -> String {
            let ns: f64 = get(k).parse().unwrap_or(0.0);
            format!("{:.0}", ns / 1_000.0)
        };
        let miss_pct = {
            let rate: f64 = get("miss_rate").parse().unwrap_or(0.0);
            format!("{:.1}", rate * 100.0)
        };
        table.row(&[
            cell.backend_name.clone(),
            cell.threads.to_string(),
            cell.arrival.name().to_string(),
            cell.mode.name().to_string(),
            cell.budget.name().to_string(),
            format!("{:.0}", cell.offered_rate),
            get("accepted_per_sec"),
            get("rejected"),
            us("lat_p99"),
            us("lat_p999"),
            miss_pct,
        ]);
        records.push(record);
    };

    if let Ok(addr) = std::env::var("RSCHED_SERVE_ADDR") {
        // External mode: the server's identity axes come from env.
        let endpoint = Endpoint::parse(&addr).expect("RSCHED_SERVE_ADDR");
        let backend_name = std::env::var("RSCHED_SERVE_BACKEND").unwrap_or_else(|_| "mq".into());
        let threads = env_usize("RSCHED_SERVE_THREADS", 2);
        for &mode in &modes {
            for &budget in &budgets {
                for &arrival in &arrivals {
                    for &offered_rate in &rates {
                        run_and_log(
                            &endpoint,
                            &Cell {
                                backend_name: backend_name.clone(),
                                threads,
                                queue_cap,
                                arrival,
                                offered_rate,
                                mode,
                                budget,
                            },
                        );
                    }
                }
            }
        }
    } else {
        // Self-hosted: a fresh in-process server per cell, so cells are
        // hermetic (histograms and counters start from zero).
        let backends =
            env_list::<String>("RSCHED_BACKENDS", &["mq".to_string(), "dcbo".to_string()]);
        let threads_list = rsched_bench::env_usize_list("RSCHED_THREADS", &[2]);
        for backend_name in &backends {
            let backend: Backend = backend_name.parse().expect("RSCHED_BACKENDS");
            for &threads in &threads_list {
                for &mode in &modes {
                    for &budget in &budgets {
                        for &arrival in &arrivals {
                            for &offered_rate in &rates {
                                let server = Server::start(ServeConfig {
                                    endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
                                    backend,
                                    threads,
                                    queue_cap,
                                    seed,
                                    delta_ns: env_u64("RSCHED_SERVE_DELTA_NS", 1_000_000).max(1),
                                })
                                .expect("server start");
                                let endpoint = server.endpoint().clone();
                                run_and_log(
                                    &endpoint,
                                    &Cell {
                                        backend_name: backend_name.clone(),
                                        threads,
                                        queue_cap,
                                        arrival,
                                        offered_rate,
                                        mode,
                                        budget,
                                    },
                                );
                                let report = server.shutdown();
                                assert_eq!(
                                    report.submitted,
                                    report.accepted + report.rejected,
                                    "server-side conservation"
                                );
                                assert_eq!(
                                    report.completed, report.accepted,
                                    "accepted tasks were dropped"
                                );
                                assert_eq!(
                                    report.deadline_met + report.deadline_misses,
                                    report.completed,
                                    "every completion carries a deadline verdict"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    write_json_artifact(&records);
}
