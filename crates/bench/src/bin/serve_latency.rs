//! Open-loop serving benchmark: offered load vs sojourn-latency tails.
//!
//! Closed-loop benchmarks (every other bin in this crate) measure
//! *capacity*: N workers hammer the queue as fast as it admits work, so
//! latency is meaningless — each request waits exactly as long as the
//! benchmark makes it. This bin is the **open-system** complement, the
//! "Practically Wait-Free?" methodology applied end-to-end: requests
//! arrive on a schedule *independent of completions* (an overloaded
//! server falls behind instead of slowing the generator), and the
//! figure of merit is the sojourn-latency distribution — p50/p99/p999
//! from scheduled arrival to completion — as a function of offered
//! rate, arrival burstiness, worker count and scheduler backend.
//!
//! ## Arrival processes
//!
//! * `poisson` — exponential interarrivals at the per-connection rate;
//!   the memoryless baseline.
//! * `burst` — a Markov-modulated on/off process (MMPP-2): exponential
//!   ~50 ms ON and OFF phases, arrivals at 2× the nominal rate while
//!   ON, none while OFF. Same long-run average rate as `poisson`, but
//!   the ON phases probe how the scheduler absorbs transient overload —
//!   burstiness is where relaxed-queue tails actually differ.
//!
//! Latency is measured from the request's *scheduled* arrival time, not
//! from when the sender managed to write it: if the sender falls behind
//! the schedule, that lag is queueing delay the open system must own.
//!
//! ## Modes
//!
//! Self-hosted (default): each grid cell boots an in-process
//! [`Server`] on an ephemeral port, so one run sweeps
//! `backends × threads × arrivals × rates` hermetically. With
//! `RSCHED_SERVE_ADDR` set the bin instead drives an already-running
//! external server (the CI smoke job's shape) and sweeps only
//! `arrivals × rates`, recording `RSCHED_SERVE_BACKEND` /
//! `RSCHED_SERVE_THREADS` / `RSCHED_SERVE_CAP` as the cell identity.
//!
//! ## Knobs
//!
//! | env | default | axis |
//! |---|---|---|
//! | `RSCHED_RATES` | `1000,4000` | offered req/s, total across clients |
//! | `RSCHED_ARRIVALS` | `poisson,burst` | arrival processes |
//! | `RSCHED_THREADS` | `2` | worker threads (self-host) |
//! | `RSCHED_BACKENDS` | `mq,dcbo` | backends (self-host) |
//! | `RSCHED_CLIENTS` | `2` | concurrent connections |
//! | `RSCHED_WORK_NS` | `20000` | synthetic service time per request |
//! | `RSCHED_DURATION_S` | `1.0` | offered-load window per cell |
//! | `RSCHED_SERVE_CAP` | `4096` | admission bound (self-host) |
//! | `RSCHED_SEED` | `42` | generator RNG seed |
//!
//! Every cell prints a `json,{...}` line and the set is written to
//! `RSCHED_JSON_OUT`; `bench_compare` gates `lat_p999` against the
//! committed baseline (see `ci/baselines/serve_latency.json`). Each
//! record also carries the shared `telemetry_json_fields` tail
//! (`retry_*`, `steal_*`, `flush_*`, …), pulled from the server over
//! the wire via a [`Request::Metrics`] poll just before the drain — so
//! the compare gate can bound retry/steal tails on serving cells with
//! the same keys the closed-loop contention benches use.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsched_bench::{
    env_f64, env_list, env_u64, env_usize, telemetry_json_fields, write_json_artifact, Table,
};
use rsched_queues::telemetry::PowHistogram;
use rsched_serve::{
    Backend, Endpoint, MetricsReply, Request, Response, ServeClient, ServeConfig, Server,
    StatsReply,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Mean ON / OFF phase length of the bursty (MMPP-2) arrival process.
const BURST_PHASE_MEAN_S: f64 = 0.05;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arrival {
    Poisson,
    Burst,
}

impl Arrival {
    fn name(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Burst => "burst",
        }
    }
}

impl std::str::FromStr for Arrival {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(Arrival::Poisson),
            "burst" => Ok(Arrival::Burst),
            other => Err(format!("unknown arrival process {other:?}")),
        }
    }
}

/// Exponential sample with mean `1/rate` seconds.
fn exp_s(rng: &mut SmallRng, rate: f64) -> f64 {
    // 1 - u in (0, 1]: ln never sees 0.
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

/// One connection's wire totals after its drain.
#[derive(Default)]
struct ConnTotals {
    submitted: u64,
    accepted: u64,
    rejected: u64,
    completed: u64,
    /// The server's final per-run stats snapshot (last Stats reply).
    server_stats: Option<StatsReply>,
    /// The server's live telemetry + gauges (last Metrics reply).
    server_metrics: Option<MetricsReply>,
}

/// Drive one connection open-loop: schedule arrivals for `duration`,
/// send Submits on schedule, record sojourn (scheduled arrival →
/// Completed) into `lat`, then Stats + Drain and verify conservation.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    endpoint: &Endpoint,
    arrival: Arrival,
    rate_per_conn: f64,
    duration: Duration,
    work_ns: u64,
    base_id: u64,
    seed: u64,
    lat: &PowHistogram,
) -> ConnTotals {
    let client = ServeClient::connect(endpoint).expect("connect");
    let (mut tx, mut rx) = client.split();
    // req_id → scheduled arrival instant; sender inserts *before* the
    // frame is written so the receiver can never miss it.
    let in_flight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();

    let sender_map = Arc::clone(&in_flight);
    let sender = std::thread::spawn(move || {
        let mut rng = SmallRng::seed_from_u64(seed);
        let phase_rate = 1.0 / BURST_PHASE_MEAN_S;
        let start = Instant::now();
        let mut next_s = 0.0f64; // scheduled offset of the next arrival
        let mut burst_on = true;
        let mut phase_end_s = exp_s(&mut rng, phase_rate);
        let mut submitted = 0u64;
        loop {
            match arrival {
                Arrival::Poisson => next_s += exp_s(&mut rng, rate_per_conn),
                Arrival::Burst => {
                    // MMPP-2: Poisson at 2× nominal while ON, silent
                    // while OFF, exponential phase lengths. Discarding
                    // the residual interarrival at a phase switch is
                    // exact — the ON process is memoryless.
                    loop {
                        if !burst_on {
                            next_s = phase_end_s;
                            burst_on = true;
                            phase_end_s = next_s + exp_s(&mut rng, phase_rate);
                        }
                        let candidate = next_s + exp_s(&mut rng, 2.0 * rate_per_conn);
                        if candidate <= phase_end_s {
                            next_s = candidate;
                            break;
                        }
                        next_s = phase_end_s;
                        burst_on = false;
                        phase_end_s = next_s + exp_s(&mut rng, phase_rate);
                    }
                }
            }
            if next_s >= duration.as_secs_f64() {
                break;
            }
            let scheduled = start + Duration::from_secs_f64(next_s);
            // Open loop: wait for the schedule, never for the server.
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            let req_id = base_id + submitted;
            sender_map
                .lock()
                .expect("latency map poisoned")
                .insert(req_id, scheduled);
            tx.send(&Request::Submit {
                req_id,
                prio: submitted,
                work_ns,
            })
            .expect("send submit");
            submitted += 1;
        }
        tx.send(&Request::Metrics).expect("send metrics");
        tx.send(&Request::Stats).expect("send stats");
        tx.send(&Request::Drain).expect("send drain");
        submitted
    });

    let mut totals = ConnTotals::default();
    loop {
        let resp = rx
            .recv()
            .expect("recv")
            .expect("server closed before Drained");
        match resp {
            Response::Accepted { .. } => totals.accepted += 1,
            Response::Rejected { req_id, .. } => {
                totals.rejected += 1;
                // A rejected request has no sojourn.
                in_flight
                    .lock()
                    .expect("latency map poisoned")
                    .remove(&req_id);
            }
            Response::Completed { req_id, .. } => {
                totals.completed += 1;
                let scheduled = in_flight
                    .lock()
                    .expect("latency map poisoned")
                    .remove(&req_id)
                    .expect("Completed for unknown req_id");
                lat.record(scheduled.elapsed().as_nanos() as u64);
            }
            Response::Stats(s) => totals.server_stats = Some(s),
            Response::Metrics(m) => totals.server_metrics = Some(*m),
            Response::Drained { completed } => {
                assert_eq!(
                    completed, totals.completed,
                    "server and client disagree on completions"
                );
                break;
            }
            Response::Pong { .. } => {}
        }
    }
    totals.submitted = sender.join().expect("sender panicked");
    assert_eq!(
        totals.accepted + totals.rejected,
        totals.submitted,
        "conservation: every submit must be answered"
    );
    assert!(
        in_flight.lock().expect("latency map poisoned").is_empty(),
        "requests left unanswered after drain"
    );
    totals
}

struct Cell {
    backend_name: String,
    threads: usize,
    queue_cap: usize,
    arrival: Arrival,
    offered_rate: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    endpoint: &Endpoint,
    cell: &Cell,
    clients: usize,
    work_ns: u64,
    duration: Duration,
    seed: u64,
) -> String {
    let lat = PowHistogram::new();
    let rate_per_conn = cell.offered_rate / clients as f64;
    let started = Instant::now();
    let totals: Vec<ConnTotals> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let lat = &lat;
                scope.spawn(move || {
                    drive_connection(
                        endpoint,
                        cell.arrival,
                        rate_per_conn,
                        duration,
                        work_ns,
                        (c as u64) << 40,
                        seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        lat,
                    )
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let submitted: u64 = totals.iter().map(|t| t.submitted).sum();
    let accepted: u64 = totals.iter().map(|t| t.accepted).sum();
    let rejected: u64 = totals.iter().map(|t| t.rejected).sum();
    let completed: u64 = totals.iter().map(|t| t.completed).sum();
    let srv = totals
        .iter()
        .rev()
        .find_map(|t| t.server_stats)
        .unwrap_or_default();
    // The wire-polled server telemetry: same keys the closed-loop
    // benches emit, so serving cells gate on retry/steal tails too.
    let metrics = totals
        .iter()
        .rev()
        .find_map(|t| t.server_metrics.clone())
        .unwrap_or_default();
    format!(
        "{{\"bench\":\"serve_latency\",\"backend\":\"{}\",\"threads\":{},\
         \"arrival_process\":\"{}\",\"offered_rate\":{:.1},\"clients\":{},\
         \"work_ns\":{},\"queue_cap\":{},\"duration_s\":{:.3},\
         \"submitted\":{},\"accepted\":{},\"rejected\":{},\"completed\":{},\
         \"achieved_rate\":{:.1},\"accepted_per_sec\":{:.1},\
         \"lat_p50\":{},\"lat_p99\":{},\"lat_p999\":{},\"lat_max\":{},\
         \"lat_count\":{},\"srv_sojourn_p50\":{},\"srv_sojourn_p99\":{},\
         \"srv_sojourn_p999\":{},\"srv_inject_p99\":{},\"srv_in_flight\":{},{}}}",
        cell.backend_name,
        cell.threads,
        cell.arrival.name(),
        cell.offered_rate,
        clients,
        work_ns,
        cell.queue_cap,
        elapsed,
        submitted,
        accepted,
        rejected,
        completed,
        submitted as f64 / elapsed,
        accepted as f64 / elapsed,
        lat.quantile(0.50),
        lat.quantile(0.99),
        lat.quantile(0.999),
        lat.max_observed(),
        lat.count(),
        srv.sojourn_p50,
        srv.sojourn_p99,
        srv.sojourn_p999,
        srv.inject_p99,
        metrics.in_flight,
        telemetry_json_fields(&metrics.telemetry),
    )
}

fn main() {
    let rates = env_list::<f64>("RSCHED_RATES", &[1_000.0, 4_000.0]);
    let arrivals = env_list::<Arrival>("RSCHED_ARRIVALS", &[Arrival::Poisson, Arrival::Burst]);
    let clients = env_usize("RSCHED_CLIENTS", 2).max(1);
    let work_ns = env_u64("RSCHED_WORK_NS", 20_000);
    let duration = Duration::from_secs_f64(env_f64("RSCHED_DURATION_S", 1.0).max(0.05));
    let seed = env_u64("RSCHED_SEED", 42);
    let queue_cap = env_usize("RSCHED_SERVE_CAP", 4096);

    let table = Table::new(
        "serve_latency",
        &[
            "backend", "threads", "arrival", "rate/s", "accept/s", "rej", "p50_us", "p99_us",
            "p999_us",
        ],
    );
    let mut records = Vec::new();

    let mut run_and_log = |endpoint: &Endpoint, cell: &Cell| {
        let record = run_cell(endpoint, cell, clients, work_ns, duration, seed);
        println!("json,{record}");
        let get = |k: &str| -> String {
            let pat = format!("\"{k}\":");
            let rest = &record[record.find(&pat).expect("field") + pat.len()..];
            rest[..rest.find([',', '}']).expect("terminator")]
                .trim_matches('"')
                .to_string()
        };
        let us = |k: &str| -> String {
            let ns: f64 = get(k).parse().unwrap_or(0.0);
            format!("{:.0}", ns / 1_000.0)
        };
        table.row(&[
            cell.backend_name.clone(),
            cell.threads.to_string(),
            cell.arrival.name().to_string(),
            format!("{:.0}", cell.offered_rate),
            get("accepted_per_sec"),
            get("rejected"),
            us("lat_p50"),
            us("lat_p99"),
            us("lat_p999"),
        ]);
        records.push(record);
    };

    if let Ok(addr) = std::env::var("RSCHED_SERVE_ADDR") {
        // External mode: the server's identity axes come from env.
        let endpoint = Endpoint::parse(&addr).expect("RSCHED_SERVE_ADDR");
        let backend_name = std::env::var("RSCHED_SERVE_BACKEND").unwrap_or_else(|_| "mq".into());
        let threads = env_usize("RSCHED_SERVE_THREADS", 2);
        for &arrival in &arrivals {
            for &offered_rate in &rates {
                run_and_log(
                    &endpoint,
                    &Cell {
                        backend_name: backend_name.clone(),
                        threads,
                        queue_cap,
                        arrival,
                        offered_rate,
                    },
                );
            }
        }
    } else {
        // Self-hosted: a fresh in-process server per cell, so cells are
        // hermetic (histograms and counters start from zero).
        let backends =
            env_list::<String>("RSCHED_BACKENDS", &["mq".to_string(), "dcbo".to_string()]);
        let threads_list = rsched_bench::env_usize_list("RSCHED_THREADS", &[2]);
        for backend_name in &backends {
            let backend: Backend = backend_name.parse().expect("RSCHED_BACKENDS");
            for &threads in &threads_list {
                for &arrival in &arrivals {
                    for &offered_rate in &rates {
                        let server = Server::start(ServeConfig {
                            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
                            backend,
                            threads,
                            queue_cap,
                            seed,
                        })
                        .expect("server start");
                        let endpoint = server.endpoint().clone();
                        run_and_log(
                            &endpoint,
                            &Cell {
                                backend_name: backend_name.clone(),
                                threads,
                                queue_cap,
                                arrival,
                                offered_rate,
                            },
                        );
                        let report = server.shutdown();
                        assert_eq!(
                            report.submitted,
                            report.accepted + report.rejected,
                            "server-side conservation"
                        );
                        assert_eq!(
                            report.completed, report.accepted,
                            "accepted tasks were dropped"
                        );
                    }
                }
            }
        }
    }

    write_json_artifact(&records);
}
