//! **THM61** — Theorem 6.1 shape validation: the sequential-model relaxed
//! SSSP (Algorithm 3) performs at most `n + O(k² · d_max/w_min)` pops.
//!
//! Workload: the layered "bucket chain" graph with randomized weights in
//! `[w, 2w]`: layers approximate the distance buckets of the theorem's
//! Δ-stepping-style argument (`d_max / w_min ≈ 1.5 × layers`), and the
//! weight spread makes first relaxations suboptimal, so speculative pops
//! force the re-executions the theorem charges for. Two sweeps:
//!
//! * `d_max / w_min` grows at fixed `k` and `n` → extra pops grow linearly;
//! * `k` grows at fixed geometry → extra pops grow ~quadratically in `k`.
//!
//! Both the deterministic rotating scheduler and the MaxRank adversary are
//! measured (the theorem is adversarial).
//!
//! ```text
//! cargo run -p rsched-bench --release --bin thm61_sssp_pops
//! ```

use rsched_algos::relaxed_sssp_seq;
use rsched_bench::{fmt, Scale, Table};
use rsched_core::theory;
use rsched_core::{AdversarialScheduler, AdversaryStrategy};
use rsched_graph::analysis::num_reachable;
use rsched_graph::gen::bucket_chain_weights;
use rsched_queues::RotatingKQueue;

fn main() {
    let scale = Scale::from_env();
    println!("== Theorem 6.1: SSSP pops <= n + O(k^2 d_max/w_min) ({scale:?}) ==\n");

    let (layer_sweep, fixed_layers) = match scale {
        Scale::Small => (vec![100usize, 200, 400, 800], 300usize),
        _ => (vec![200usize, 400, 800, 1600, 3200], 1000),
    };
    // Layer size comparable to k: the k^2-per-bucket case of the proof
    // (|B_{i+1}| <= k needs up to k^2 pops to drain the bucket).
    let layer_size = 6usize;

    println!("-- sweep d_max/w_min (layers of {layer_size}) at k = 8 --");
    let table = Table::new(
        "thm61_dmax",
        &["layers", "n", "rot_extra", "adv_extra", "k2_dmax_wmin"],
    );
    for &layers in &layer_sweep {
        let g = bucket_chain_weights(layers, layer_size, 10..=20, 77);
        let n = num_reachable(&g, 0) as u64;
        let rot = relaxed_sssp_seq(&g, 0, &mut RotatingKQueue::new(8));
        let adv = relaxed_sssp_seq(
            &g,
            0,
            &mut AdversarialScheduler::new(8, AdversaryStrategy::MaxRank),
        );
        assert_eq!(rot.dist, adv.dist, "schedulers disagree on distances");
        table.row(&[
            layers.to_string(),
            fmt::count(n),
            fmt::count(rot.pops - n),
            fmt::count(adv.pops - n),
            format!("{:.0}", theory::thm61_extra_pops(8, 1.5 * layers as f64)),
        ]);
    }

    println!("\n-- sweep k at fixed {fixed_layers} layers x {layer_size} --");
    let g = bucket_chain_weights(fixed_layers, layer_size, 10..=20, 77);
    let n = num_reachable(&g, 0) as u64;
    let table = Table::new("thm61_k", &["k", "rot_extra", "adv_extra", "k2_dmax_wmin"]);
    for k in [2usize, 4, 8, 16, 32] {
        let rot = relaxed_sssp_seq(&g, 0, &mut RotatingKQueue::new(k));
        let adv = relaxed_sssp_seq(
            &g,
            0,
            &mut AdversarialScheduler::new(k, AdversaryStrategy::MaxRank),
        );
        table.row(&[
            k.to_string(),
            fmt::count(rot.pops - n),
            fmt::count(adv.pops - n),
            format!(
                "{:.0}",
                theory::thm61_extra_pops(k, 1.5 * fixed_layers as f64)
            ),
        ]);
    }

    println!(
        "\nExpected shape: extra pops (pops − n) grow ~linearly with the \
         bucket count d_max/w_min and polynomially in k, staying under the \
         k² · d_max/w_min envelope."
    );
}
