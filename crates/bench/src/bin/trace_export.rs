//! **TRACE-EXPORT** — produce and self-validate a flight-recorder
//! Chrome trace from a real scheduler run.
//!
//! The bin forces the flight recorder on (`RuntimeConfig { trace: true }`
//! — no env needed), drives a small recursive workload through
//! [`rsched_runtime::run`] on a `ConcurrentMultiQueue`, snapshots every
//! worker lane, writes the Chrome trace-event JSON to `RSCHED_TRACE_OUT`
//! (default `trace_export.json`) and then **structurally validates its
//! own artifact**:
//!
//! * at least two lanes produced events (concurrency is visible; a
//!   loaded or single-core host may legitimately park some workers
//!   before they ever pop, so all-`threads` participation is reported
//!   but not asserted);
//! * per-lane timestamps are non-decreasing (ring order is time order);
//! * the export's `"B"`/`"E"` duration events balance exactly — the
//!   exporter only emits a span for a matched pop→complete pair, so an
//!   unbalanced file means the pairing logic regressed.
//!
//! The same checks run (in python, against the file) in CI's perf-smoke
//! job; this bin is the in-repo, no-python version so `cargo run -p
//! rsched-bench --bin trace_export` is a one-command Perfetto artifact.
//!
//! | env | default | meaning |
//! |---|---|---|
//! | `RSCHED_THREADS` | `4` | worker threads |
//! | `RSCHED_TASKS` | `2000` | seed tasks (each counts down its payload) |
//! | `RSCHED_WORK_NS` | `5000` | busy-spin per task, ns (keeps the run alive until every worker joins in) |
//! | `RSCHED_TRACE_OUT` | `trace_export.json` | artifact path |
//! | `RSCHED_TRACE_EVENTS` | `4096` | ring capacity per lane |

use rsched_bench::{env_u64, env_usize, write_json_artifact};
use rsched_queues::trace::{self, EventKind};
use rsched_queues::QueueBuilder;
use rsched_runtime::{run, RuntimeConfig, TaskOutcome};

fn main() {
    let threads = env_usize("RSCHED_THREADS", 4).max(1);
    let tasks = env_usize("RSCHED_TASKS", 2000).max(1);
    let depth = env_u64("RSCHED_DEPTH", 3);
    let work_ns = env_u64("RSCHED_WORK_NS", 5000);
    let out = std::env::var("RSCHED_TRACE_OUT").unwrap_or_else(|_| "trace_export.json".into());

    // Start from empty rings so the artifact describes exactly this run.
    trace::set_enabled(true);
    trace::clear();

    let queue = QueueBuilder::new((2 * threads).max(4)).multiqueue::<u64>();
    let stats = run(
        &queue,
        RuntimeConfig {
            threads,
            seed: 0x7AC3,
            trace: true,
            ..RuntimeConfig::default()
        },
        (0..tasks).map(|i| (i, depth)),
        |w, item, prio| {
            // Recursive countdown: every seed spawns `depth` children,
            // so the trace shows inject/pop/complete interleaving and
            // (under contention) steal rounds. The busy-spin keeps the
            // run alive past worker spawn-up — without it a fast first
            // worker can drain everything before the others ever pop.
            if work_ns > 0 {
                let start = std::time::Instant::now();
                while (start.elapsed().as_nanos() as u64) < work_ns {
                    std::hint::spin_loop();
                }
            }
            if prio > 0 {
                w.spawn(item, prio - 1);
            }
            TaskOutcome::Executed
        },
    );

    let lanes = trace::snapshot();
    let json = trace::chrome_trace_json(&lanes);
    std::fs::write(&out, &json).expect("writing trace artifact");

    // --- structural self-validation -----------------------------------
    let active_lanes = lanes.iter().filter(|l| !l.events.is_empty()).count();
    // ≥2 is the hard floor (concurrency must be visible in the trace);
    // full `threads` participation is typical but scheduling-dependent
    // on loaded or single-core hosts, so it is reported, not asserted.
    assert!(
        active_lanes >= 2.min(threads),
        "expected ≥2 lanes with events, got {active_lanes}"
    );
    if active_lanes < threads {
        eprintln!(
            "trace_export: note: {active_lanes}/{threads} worker lanes \
             recorded events (host scheduling kept the rest idle)"
        );
    }
    let mut events_total = 0usize;
    for lane in &lanes {
        let mut prev = 0u64;
        for ev in &lane.events {
            assert!(
                ev.ts_ns >= prev,
                "lane {} ({}) time went backwards: {} after {}",
                lane.lane,
                lane.label,
                ev.ts_ns,
                prev
            );
            prev = ev.ts_ns;
            events_total += 1;
        }
    }
    let count = |needle: &str| json.matches(needle).count();
    let begins = count("\"ph\":\"B\"");
    let ends = count("\"ph\":\"E\"");
    assert_eq!(begins, ends, "unpaired duration events in export");
    let instants = count("\"ph\":\"i\"");
    assert!(
        begins + instants > 0,
        "export carries no spans and no instants"
    );
    // Worker pops fed the spans: a run this size must pair plenty.
    assert!(begins > 0, "no pop→complete span survived in any ring");
    let pops: usize = lanes
        .iter()
        .flat_map(|l| &l.events)
        .filter(|e| e.kind == EventKind::TaskPop)
        .count();
    assert!(
        begins <= pops,
        "more spans than recorded pops ({begins} > {pops})"
    );

    let record = format!(
        "{{\"bench\":\"trace_export\",\"threads\":{threads},\"tasks\":{tasks},\
         \"executed\":{},\"lanes\":{},\"events\":{},\"spans\":{},\
         \"instants\":{},\"out\":\"{}\"}}",
        stats.total.executed,
        active_lanes,
        events_total,
        begins,
        instants,
        out.replace('\\', "/"),
    );
    println!("json,{record}");
    println!(
        "trace_export: {} events across {} lanes -> {} ({} spans, {} instants); \
         open in https://ui.perfetto.dev",
        events_total, active_lanes, out, begins, instants
    );
    write_json_artifact(&[record]);
}
