//! **ABL-ADV** — adversary-strategy ablation: how much wasted work can each
//! scheduler behaviour inside the RankBound/Fairness envelope actually
//! cause?
//!
//! Compares, on BST-insertion sorting at fixed `k`:
//! * `exact` — always return the minimum (no waste, the Algorithm 1 case);
//! * `random_topk` — uniform over the window (a benign relaxed scheduler);
//! * `max_rank` — always the worst-ranked element;
//! * `max_inversions` — always skip the minimum as long as Fairness allows;
//! * `dependency_aware` — prefer returning *blocked* tasks (the strongest
//!   adversary; state-aware).
//!
//! This is the ablation DESIGN.md calls out for the claim that the paper's
//! bounds hold for *any* admissible scheduler: the gap between benign and
//! worst-case behaviours is the "price of adversariality".
//!
//! ```text
//! cargo run -p rsched-bench --release --bin ablation_adversary
//! ```

use rsched_algos::BstSort;
use rsched_bench::{fmt, Scale, Table};
use rsched_core::theory;
use rsched_core::{
    run_relaxed, run_relaxed_with, AdversarialScheduler, AdversaryStrategy, IncrementalAlgorithm,
};

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Small => 16_000usize,
        _ => 128_000,
    };
    println!("== adversary ablation: BST sorting, n = {n} ==\n");
    let table = Table::new(
        "abl_adv",
        &[
            "k",
            "random_topk",
            "max_rank",
            "max_inv",
            "dep_aware",
            "k4_ln_n",
        ],
    );
    for k in [2usize, 4, 8, 16] {
        let extra_with = |strategy: AdversaryStrategy| {
            let mut alg = BstSort::random(n, 31);
            run_relaxed(&mut alg, &mut AdversarialScheduler::new(k, strategy)).extra_steps
        };
        let rnd = extra_with(AdversaryStrategy::RandomTopK(5));
        let maxrank = extra_with(AdversaryStrategy::MaxRank);
        let maxinv = extra_with(AdversaryStrategy::MaxInversions);
        let dep = {
            let mut alg = BstSort::random(n, 31);
            run_relaxed_with(&mut alg, k, |a, w| {
                w.iter().position(|&t| !a.deps_satisfied(t)).unwrap_or(0)
            })
            .extra_steps
        };
        table.row(&[
            k.to_string(),
            fmt::count(rnd),
            fmt::count(maxrank),
            fmt::count(maxinv),
            fmt::count(dep),
            format!("{:.0}", theory::thm33_extra_steps(k, n)),
        ]);
    }
    println!(
        "\nExpected shape: dependency-aware >= max_rank/max_inv >= random_topk, \
         with even the strongest adversary far below the trivial k·n bound \
         ({}..{} for these k).",
        fmt::count(2 * n as u64),
        fmt::count(16 * n as u64),
    );
}
