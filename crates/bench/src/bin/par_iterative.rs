//! **EXT-PAR** — extension experiment: the truly concurrent execution model
//! (the paper's Section 4 sketch, realized with worker threads instead of a
//! discrete simulator) applied to the fixed-task iterative algorithms of
//! the PODC 2018 companion paper (greedy MIS, greedy coloring) and to
//! BST-insertion sorting.
//!
//! Blocked pops are re-queued and counted as extra steps — the concurrent
//! analogue of the sequential model's wasted work. Expectation: overhead
//! stays small on sparse graphs (shallow dependencies) and explodes on the
//! complete graph (the introduction's "high fanout, low depth" cautionary
//! example).
//!
//! ```text
//! cargo run -p rsched-bench --release --bin par_iterative
//! ```

use rsched_algos::concurrent::{ConcurrentBstSort, ConcurrentColoring, ConcurrentMis};
use rsched_bench::{fmt, thread_sweep, Scale, Table};
use rsched_core::parallel::run_relaxed_parallel;
use rsched_graph::gen::{complete_graph, power_law, random_gnm};

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Small => 20_000usize,
        _ => 200_000,
    };
    println!("== concurrent iterative algorithms: extra steps vs threads ({scale:?}) ==\n");
    let random = random_gnm(n, 5 * n, 1..=100, 42);
    let social = power_law(n, 8, 1..=100, 42);
    let dense = complete_graph(300, 1..=5, 42);

    println!("-- greedy MIS --");
    let table = Table::new("ext_par_mis", &["threads", "random", "social", "K300"]);
    for threads in thread_sweep() {
        let mut cells = vec![threads.to_string()];
        for (g, seed) in [(&random, 1u64), (&social, 2), (&dense, 3)] {
            let alg = ConcurrentMis::new(g, 7);
            let stats = run_relaxed_parallel(&alg, threads, 2, seed);
            cells.push(fmt::overhead(stats.overhead()));
        }
        table.row(&cells);
    }

    println!("\n-- greedy coloring --");
    let table = Table::new("ext_par_color", &["threads", "random", "social", "K300"]);
    for threads in thread_sweep() {
        let mut cells = vec![threads.to_string()];
        for (g, seed) in [(&random, 4u64), (&social, 5), (&dense, 6)] {
            let alg = ConcurrentColoring::new(g, 7);
            let stats = run_relaxed_parallel(&alg, threads, 2, seed);
            assert!(alg.verify_proper());
            cells.push(fmt::overhead(stats.overhead()));
        }
        table.row(&cells);
    }

    println!("\n-- BST-insertion sorting --");
    let table = Table::new("ext_par_sort", &["threads", "overhead", "extra"]);
    for threads in thread_sweep() {
        let alg = ConcurrentBstSort::random(n, 7);
        let stats = run_relaxed_parallel(&alg, threads, 2, 9);
        assert_eq!(alg.in_order_keys(), (0..n as u64).collect::<Vec<_>>());
        table.row(&[
            threads.to_string(),
            fmt::overhead(stats.overhead()),
            fmt::count(stats.extra_steps),
        ]);
    }

    println!(
        "\nExpected shape: overheads near 1.0x on the sparse graphs (shallow \
         dependency chains), large on K300 where every task depends on all \
         earlier ones; sorting sits in between (log-depth treap chains)."
    );
}
