//! **THM43** — Theorem 4.3 shape validation: the transactional model aborts
//! at most `O(k²(C + k)² log n)` transactions for incremental algorithms
//! with the Section 3.1 dependency properties.
//!
//! Workload: BST-insertion sorting with its real treap-ancestor dependency
//! oracle. Sweeps over `n` (log shape), `k` and the interval contention
//! (via the transaction duration), under both the random and the max-label
//! adversarial dispenser.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin thm43_aborts
//! ```

use rsched_algos::BstSort;
use rsched_bench::{fmt, Scale, Table};
use rsched_core::theory;
use rsched_core::{run_transactional, TxConfig, TxStrategy};

fn main() {
    let scale = Scale::from_env();
    println!("== Theorem 4.3: transactional aborts = O(k^2 (C+k)^2 log n) ({scale:?}) ==\n");
    let ns = match scale {
        Scale::Small => vec![500usize, 2000, 8000, 32000],
        _ => vec![1000usize, 8000, 64000, 256_000],
    };

    println!("-- sweep n at k = 8, duration = 4 --");
    let table = Table::new(
        "thm43_n",
        &["n", "aborts_rand", "aborts_adv", "C_obs", "bound"],
    );
    for &n in &ns {
        let alg = BstSort::random(n, 21);
        let rand = run_transactional(
            n,
            |i, j| alg.depends(i, j),
            TxConfig {
                k: 8,
                duration: 4,
                strategy: TxStrategy::Random,
                seed: 5,
            },
        );
        let adv = run_transactional(
            n,
            |i, j| alg.depends(i, j),
            TxConfig {
                k: 8,
                duration: 4,
                strategy: TxStrategy::MaxLabel,
                seed: 5,
            },
        );
        let c = rand.max_contention.max(adv.max_contention);
        table.row(&[
            fmt::count(n as u64),
            fmt::count(rand.aborts),
            fmt::count(adv.aborts),
            c.to_string(),
            format!("{:.0}", theory::thm43_aborts(8, c, n)),
        ]);
    }

    println!("\n-- sweep k at n = 8000, duration = 4 --");
    let n = 8000;
    let alg = BstSort::random(n, 22);
    let table = Table::new("thm43_k", &["k", "aborts_adv", "C_obs", "bound"]);
    for k in [2usize, 4, 8, 16, 32] {
        let adv = run_transactional(
            n,
            |i, j| alg.depends(i, j),
            TxConfig {
                k,
                duration: 4,
                strategy: TxStrategy::MaxLabel,
                seed: 6,
            },
        );
        table.row(&[
            k.to_string(),
            fmt::count(adv.aborts),
            adv.max_contention.to_string(),
            format!("{:.0}", theory::thm43_aborts(k, adv.max_contention, n)),
        ]);
    }

    println!("\n-- sweep contention (duration) at n = 8000, k = 8 --");
    let table = Table::new("thm43_c", &["duration", "aborts_adv", "C_obs", "bound"]);
    for duration in [1usize, 2, 4, 8, 16] {
        let adv = run_transactional(
            n,
            |i, j| alg.depends(i, j),
            TxConfig {
                k: 8,
                duration,
                strategy: TxStrategy::MaxLabel,
                seed: 7,
            },
        );
        table.row(&[
            duration.to_string(),
            fmt::count(adv.aborts),
            adv.max_contention.to_string(),
            format!("{:.0}", theory::thm43_aborts(8, adv.max_contention, n)),
        ]);
    }

    println!("\n-- Delaunay triangulation (real cavity-dependency oracle) --");
    let del_ns = match scale {
        Scale::Small => vec![500usize, 2000, 8000],
        _ => vec![1000usize, 8000, 32000],
    };
    let table = Table::new("thm43_delaunay", &["n", "aborts_rand", "C_obs", "bound"]);
    for &n in &del_ns {
        let pts = rsched_geometry::random_points(n, 1 << 20, 13);
        let deps = rsched_algos::DelaunayIncremental::dependency_lists(&pts);
        let oracle = |i: usize, j: usize| deps[j].binary_search(&(i as u32)).is_ok();
        let stats = run_transactional(
            n,
            oracle,
            TxConfig {
                k: 8,
                duration: 4,
                strategy: TxStrategy::Random,
                seed: 9,
            },
        );
        table.row(&[
            fmt::count(n as u64),
            fmt::count(stats.aborts),
            stats.max_contention.to_string(),
            format!("{:.0}", theory::thm43_aborts(8, stats.max_contention, n)),
        ]);
    }

    println!(
        "\nExpected shape: aborts grow slowly (log-like) in n, polynomially in \
         k and in the observed contention C, always below the k²(C+k)² ln n \
         envelope — wasted work is negligible against n when n >> k, C."
    );
}
