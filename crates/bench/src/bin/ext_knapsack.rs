//! **EXT-BNB** — extension experiment: Karp–Zhang-style best-first
//! branch-and-bound (0/1 knapsack) under relaxed scheduling.
//!
//! Measures node expansions relative to exact best-first search as the
//! relaxation factor grows, across schedulers. This is the *dynamic task*
//! regime (nodes are created during the run), which the paper's framework
//! extends the PODC 2018 fixed-task model with.
//!
//! ```text
//! cargo run -p rsched-bench --release --bin ext_knapsack
//! ```

use rsched_algos::branch_bound::Knapsack;
use rsched_bench::{fmt, Scale, Table};
use rsched_core::{AdversarialScheduler, AdversaryStrategy};
use rsched_queues::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue};

fn main() {
    let scale = Scale::from_env();
    let (n_items, trials) = match scale {
        Scale::Small => (26usize, 10u64),
        _ => (30, 20),
    };
    println!(
        "== branch-and-bound expansions vs relaxation ({n_items} items, {trials} instances) ==\n"
    );
    let table = Table::new(
        "ext_bnb",
        &["scheduler", "expanded", "pruned_pop", "vs_exact"],
    );
    // Exact baseline.
    let mut exact_total = 0u64;
    let mut exact_pruned = 0u64;
    for seed in 0..trials {
        let inst = Knapsack::random(n_items, seed);
        let s = inst.solve(&mut Exact(IndexedBinaryHeap::new()));
        assert_eq!(s.best_value, inst.dp_optimum(), "optimum lost");
        exact_total += s.expanded;
        exact_pruned += s.pruned_after_pop;
    }
    table.row(&[
        "exact".into(),
        fmt::count(exact_total),
        fmt::count(exact_pruned),
        "1.0000x".into(),
    ]);
    type Solver = Box<dyn FnMut(&Knapsack) -> rsched_algos::BnbStats>;
    let run = |name: &str, make: &mut dyn FnMut(u64) -> Solver| {
        let mut total = 0u64;
        let mut pruned = 0u64;
        for seed in 0..trials {
            let inst = Knapsack::random(n_items, seed);
            let s = make(seed)(&inst);
            assert_eq!(s.best_value, inst.dp_optimum(), "{name}: optimum lost");
            total += s.expanded;
            pruned += s.pruned_after_pop;
        }
        table.row(&[
            name.into(),
            fmt::count(total),
            fmt::count(pruned),
            format!("{:.4}x", total as f64 / exact_total as f64),
        ]);
    };
    for q in [4usize, 16] {
        run(&format!("multiqueue_q{q}"), &mut |seed| {
            Box::new(move |inst| inst.solve(&mut SimMultiQueue::new(q, seed)))
        });
    }
    for k in [8usize, 32, 128] {
        run(&format!("rotating_k{k}"), &mut |_| {
            Box::new(move |inst| inst.solve(&mut RotatingKQueue::new(k)))
        });
        run(&format!("adversary_k{k}"), &mut |_| {
            Box::new(move |inst| {
                inst.solve(&mut AdversarialScheduler::new(
                    k,
                    AdversaryStrategy::MaxRank,
                ))
            })
        });
    }
    println!(
        "\nExpected shape: expansions grow with k (speculative subtrees that \
         exact best-first would have pruned), while the optimum is found by \
         every scheduler — the Karp–Zhang observation that priority order is \
         a performance concern, not a correctness one."
    );
}
