//! Shared infrastructure for the experiment binaries that regenerate every
//! figure and theorem-shape experiment of the paper (see DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for recorded results).
//!
//! All experiments print fixed-width text tables plus machine-readable CSV
//! lines (prefixed `csv,`) so results can be collected with `grep ^csv`.
//!
//! ## Scaling
//!
//! Experiment sizes follow the `RSCHED_SCALE` environment variable:
//! `small` (default; seconds, CI-friendly), `medium` (tens of seconds),
//! `paper` (graph sizes matching the paper's where feasible). Thread sweeps
//! use the host's available parallelism.

use rsched_graph::gen::{grid_road, power_law, random_gnm};
use rsched_graph::CsrGraph;

/// Experiment scale, from the `RSCHED_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Medium,
    Paper,
}

impl Scale {
    /// Read `RSCHED_SCALE` (default [`Scale::Small`]).
    pub fn from_env() -> Self {
        match std::env::var("RSCHED_SCALE").as_deref() {
            Ok("medium") => Scale::Medium,
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }
}

/// The paper's three experiment graphs (Section 7), at the chosen scale.
///
/// * `random` — uniform G(n, m), weights 1..=100 (paper: 1M nodes / 10M
///   edges);
/// * `road` — grid with physical-distance-like weights (substitution for
///   the USA road network, see DESIGN.md);
/// * `social` — preferential-attachment power law, weights 1..=100
///   (substitution for LiveJournal).
pub fn experiment_graphs(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    match scale {
        Scale::Small => vec![
            ("random", random_gnm(20_000, 200_000, 1..=100, 42)),
            ("road", grid_road(141, 141, 42)), // ~20k nodes
            ("social", power_law(20_000, 10, 1..=100, 42)),
        ],
        Scale::Medium => vec![
            ("random", random_gnm(200_000, 2_000_000, 1..=100, 42)),
            ("road", grid_road(450, 450, 42)), // ~200k nodes
            ("social", power_law(200_000, 10, 1..=100, 42)),
        ],
        Scale::Paper => vec![
            ("random", random_gnm(1_000_000, 10_000_000, 1..=100, 42)),
            ("road", grid_road(1000, 1000, 42)), // 1M nodes (paper: 24M)
            ("social", power_law(1_000_000, 14, 1..=100, 42)),
        ],
    }
}

/// Thread counts to sweep: powers of two up to available parallelism, but
/// always at least `1, 2, 4, 8`.
///
/// On hosts with fewer cores the larger counts run oversubscribed; the
/// *overhead* metric (task counts) is still meaningful there — relaxation
/// grows with the queue count, not with physical parallelism — while
/// wall-clock speedups obviously are not.
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .max(8);
    let mut out = vec![1usize];
    while *out.last().expect("non-empty") * 2 <= max {
        out.push(out.last().expect("non-empty") * 2);
    }
    out
}

/// Thread sweep for the contention benchmarks: the `RSCHED_THREADS`
/// environment variable as a comma-separated list, or `default`.
pub fn env_thread_list(default: &[usize]) -> Vec<usize> {
    let mut list = env_usize_list("RSCHED_THREADS", default);
    list.retain(|&t| t >= 1);
    list
}

// The env-knob parsers live in `rsched_runtime::env` (the lowest crate
// with env-tunable configuration — `RuntimeConfig::default` and the
// serve binary read knobs too); re-exported here so every bench bin
// keeps its historical `rsched_bench::env_*` call sites.
pub use rsched_runtime::env::{
    env_f64, env_list, env_opt_usize, env_u64, env_usize, env_usize_list,
};

// Minimal JSON (values + artifact records), shared by the compare gate
// and the diurnal-trace loader.
pub mod json;

/// The worker-session tuning knobs every contention benchmark sweeps and
/// records: `RSCHED_SHARDS_PER_WORKER` (home shards per worker, default
/// 1; 0 disables affinity) and `RSCHED_SPAWN_BATCH` (spawn-buffer
/// capacity, default 1 = publish immediately). Returned as
/// `(shards_per_worker, spawn_batch)`; emit both in every JSON record so
/// the BENCH artifacts pin down the session axes of a run.
pub fn session_knobs() -> (usize, usize) {
    (
        env_usize("RSCHED_SHARDS_PER_WORKER", 1),
        env_usize("RSCHED_SPAWN_BATCH", 1),
    )
}

/// The adaptive-spawn-batch knob (`RSCHED_SPAWN_BATCH_ADAPTIVE`,
/// non-zero enables; default off): sessions start unbatched and grow
/// the live spawn buffer toward `RSCHED_SPAWN_BATCH` on home-shard pop
/// hits, shrinking toward 1 on misses. Emitted in every contention
/// JSON record as a *non-identity* field (`spawn_batch_adaptive`), so
/// runs with the flag flipped still compare against the same baseline
/// cell.
pub fn spawn_batch_adaptive() -> bool {
    env_usize("RSCHED_SPAWN_BATCH_ADAPTIVE", 0) != 0
}

/// The shared telemetry tail-field fragment of the bench JSON schema
/// (no surrounding braces, no leading comma): per-op CAS-retry and
/// steal-round quantiles, fallback-sweep p99, empty-pop and flush
/// counters, and the epoch-GC progress pair. Every contention bin
/// appends this to its record so `bench_compare` can gate the tails
/// uniformly; structure-specific extras (floor scan, registry probes,
/// segment installs) ride separately. The flat-combining trio
/// (`batch_p50`/`batch_p99`/`combined_ops`/`claim_fanout`) is all-zero
/// for backends without a combiner.
pub fn telemetry_json_fields(t: &rsched_queues::TelemetrySnapshot) -> String {
    format!(
        "\"retry_p50\":{},\"retry_p99\":{},\"retry_p999\":{},\"retry_max\":{},\
         \"retry_count\":{},\"steal_p50\":{},\"steal_p99\":{},\"steal_p999\":{},\
         \"sweep_p99\":{},\"empty_pops\":{},\"flush_published\":{},\
         \"flush_merged\":{},\"flush_merge_ratio\":{:.6},\
         \"gc_deferred\":{},\"gc_collected\":{},\
         \"batch_p50\":{},\"batch_p99\":{},\"batch_max\":{},\
         \"combined_ops\":{},\"claim_fanout\":{}",
        t.retry.p50,
        t.retry.p99,
        t.retry.p999,
        t.retry.max,
        t.retry.count,
        t.steal.p50,
        t.steal.p99,
        t.steal.p999,
        t.sweep.p99,
        t.empty_pops,
        t.flush_published,
        t.flush_merged,
        t.flush_merge_ratio(),
        t.gc_deferred,
        t.gc_collected,
        t.batch.p50,
        t.batch.p99,
        t.batch.max,
        t.combined_ops,
        t.claim_fanout,
    )
}

/// Write pre-serialized JSON object `records` as a JSON array to the
/// path named by `RSCHED_JSON_OUT`, if set — the framing the CI
/// perf-smoke validation parses for every `BENCH_*.json` artifact.
pub fn write_json_artifact(records: &[String]) {
    if let Ok(path) = std::env::var("RSCHED_JSON_OUT") {
        let body = format!("[\n  {}\n]\n", records.join(",\n  "));
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {} records to {path}", records.len());
    }
}

/// Minimal fixed-width table printer with a parallel CSV emitter.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    csv_tag: String,
}

impl Table {
    /// Start a table; prints the header immediately.
    pub fn new(csv_tag: &str, headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let t = Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            widths,
            csv_tag: csv_tag.to_string(),
        };
        t.print_header();
        t
    }

    fn print_header(&self) {
        let row: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", row.join("  "));
        println!("{}", "-".repeat(row.join("  ").len()));
    }

    /// Print one row (values pre-formatted as strings).
    pub fn row(&self, values: &[String]) {
        assert_eq!(values.len(), self.headers.len());
        let row: Vec<String> = values
            .iter()
            .zip(&self.widths)
            .map(|(v, w)| format!("{v:>w$}"))
            .collect();
        println!("{}", row.join("  "));
        println!("csv,{},{}", self.csv_tag, values.join(","));
    }
}

/// Convenience formatter set used by the binaries.
pub mod fmt {
    /// `1.0432x` style overhead.
    pub fn overhead(x: f64) -> String {
        format!("{x:.4}x")
    }

    /// Seconds with milli precision.
    pub fn secs(d: std::time::Duration) -> String {
        format!("{:.3}s", d.as_secs_f64())
    }

    /// Thousands separators for counts.
    pub fn count(n: u64) -> String {
        let s = n.to_string();
        let mut out = String::with_capacity(s.len() + s.len() / 3);
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push('_');
            }
            out.push(c);
        }
        out
    }
}

/// Geometric-mean helper for speedup summaries.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_small() {
        // Not setting the env var in-process: default must be Small.
        assert_eq!(Scale::from_env(), Scale::Small);
    }

    #[test]
    fn thread_sweep_is_powers_of_two() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        for w in sweep.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn graphs_have_expected_sizes() {
        let gs = experiment_graphs(Scale::Small);
        assert_eq!(gs.len(), 3);
        for (name, g) in &gs {
            assert!(g.num_vertices() >= 19_000, "{name} too small");
        }
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt::count(1), "1");
        assert_eq!(fmt::count(1234), "1_234");
        assert_eq!(fmt::count(1234567), "1_234_567");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
