//! Integration tests for the `bench_compare` CI gate: drive the real
//! binary (via `CARGO_BIN_EXE_bench_compare`) against synthetic
//! baseline/fresh fixture pairs and assert on its exit code — the same
//! contract the CI perf-smoke job relies on.

use std::path::PathBuf;
use std::process::Command;

/// A synthetic two-cell artifact in the contention-sweep schema. Cell
/// `t8` carries the run's peak throughput and retry tail; `t1` is the
/// quiet cell the fixtures perturb. All conservation and telemetry
/// fields are kept self-consistent so only the perturbation under test
/// can trip the gate.
fn artifact(t1_pops_per_sec: f64, t1_retry_p99: u64, t1_has_tails: bool) -> String {
    let t1_tails = if t1_has_tails {
        format!(
            ",\"retry_p50\":0,\"retry_p99\":{t1_retry_p99},\
             \"retry_p999\":{p999},\"retry_max\":{p999},\
             \"steal_p50\":0,\"steal_p99\":3,\"steal_p999\":7,\"sweep_p99\":0,\
             \"empty_pops\":12,\"flush_published\":100,\"flush_merged\":25,\
             \"flush_merge_ratio\":0.250000,\"gc_deferred\":40,\"gc_collected\":40",
            p999 = t1_retry_p99.max(7),
        )
    } else {
        String::new()
    };
    format!(
        "[\n  {{\"queue\":\"fifo\",\"backend\":\"segring\",\"threads\":1,\
         \"ops\":100000,\"pops\":50000,\"pops_per_sec\":{t1_pops_per_sec:.1}{t1_tails}}},\n  \
         {{\"queue\":\"fifo\",\"backend\":\"segring\",\"threads\":8,\
         \"ops\":800000,\"pops\":400000,\"pops_per_sec\":9000000.0,\
         \"retry_p50\":1,\"retry_p99\":127,\"retry_p999\":255,\"retry_max\":511,\
         \"steal_p50\":0,\"steal_p99\":7,\"steal_p999\":15,\"sweep_p99\":3,\
         \"empty_pops\":90,\"flush_published\":800,\"flush_merged\":200,\
         \"flush_merge_ratio\":0.250000,\"gc_deferred\":300,\"gc_collected\":280}}\n]\n"
    )
}

/// Write `body` to a unique temp file and return its path.
fn fixture(name: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "rsched_compare_gate_{}_{name}.json",
        std::process::id()
    ));
    std::fs::write(&path, body).expect("writing fixture");
    path
}

/// Run the gate binary on a (baseline, fresh) pair; return the exit code.
fn run_gate(baseline: &str, fresh: &str, case: &str) -> i32 {
    let base_path = fixture(&format!("{case}_base"), baseline);
    let fresh_path = fixture(&format!("{case}_fresh"), fresh);
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(&base_path)
        .arg(&fresh_path)
        .env("RSCHED_COMPARE_TOL", "0.40")
        .output()
        .expect("running bench_compare");
    let _ = std::fs::remove_file(base_path);
    let _ = std::fs::remove_file(fresh_path);
    let code = out.status.code().expect("exit code");
    assert!(
        (0..=2).contains(&code),
        "unexpected exit {code}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    code
}

#[test]
fn identical_runs_pass() {
    let art = artifact(1_000_000.0, 3, true);
    assert_eq!(run_gate(&art, &art, "identical"), 0);
}

#[test]
fn throughput_within_tolerance_passes() {
    let base = artifact(1_000_000.0, 3, true);
    // 20% down on one cell: inside the 40% tolerance in the raw view.
    let fresh = artifact(800_000.0, 3, true);
    assert_eq!(run_gate(&base, &fresh, "within_tol"), 0);
}

#[test]
fn inflated_retry_tail_fails() {
    let base = artifact(1_000_000.0, 3, true);
    // Throughput unchanged, but the quiet cell's p99 CAS-retry count
    // jumps 3 -> 120 (x30 with +1 smoothing) while the peak cell stays
    // put, so both the raw and the peak-normalized growth blow past the
    // (1/(1-0.40))² ≈ 2.78 limit.
    let fresh = artifact(1_000_000.0, 120, true);
    assert_eq!(run_gate(&base, &fresh, "inflated_tail"), 1);
}

#[test]
fn missing_tail_fields_fail() {
    let base = artifact(1_000_000.0, 3, true);
    let fresh = artifact(1_000_000.0, 3, false);
    assert_eq!(run_gate(&base, &fresh, "missing_tails"), 1);
}

#[test]
fn inconsistent_flush_ratio_fails() {
    let base = artifact(1_000_000.0, 3, true);
    let fresh = artifact(1_000_000.0, 3, true).replace(
        "\"flush_merge_ratio\":0.250000",
        "\"flush_merge_ratio\":0.500000",
    );
    assert_eq!(run_gate(&base, &fresh, "bad_ratio"), 1);
}

#[test]
fn non_monotone_retry_quantiles_fail() {
    let base = artifact(1_000_000.0, 3, true);
    // p999 below p99 on the peak cell: impossible for a real histogram.
    let fresh = artifact(1_000_000.0, 3, true).replace("\"retry_p999\":255", "\"retry_p999\":63");
    assert_eq!(run_gate(&base, &fresh, "non_monotone"), 1);
}

// ---------------------------------------------------------------------
// Serving artifacts (serve_latency schema): identity adds the arrival
// axes, throughput is accepted_per_sec, the tail gate runs on lat_p999
// with the cubed limit, and conservation ties the wire counters.
// ---------------------------------------------------------------------

/// A synthetic two-cell serving artifact: a quiet poisson cell (the one
/// fixtures perturb, with `p_misses` of its 500 completions missing
/// their deadlines) and a loaded burst cell carrying the peaks (miss
/// rate pinned at 0.10). All counters conserve (`accepted + rejected ==
/// submitted`, `completed == accepted`,
/// `deadline_met + deadline_misses == completed`,
/// `miss_rate == deadline_misses / completed`) unless a fixture breaks
/// them on purpose.
fn serve_artifact(
    p_accepted_per_sec: f64,
    p_lat_p999: u64,
    p_has_lat: bool,
    p_misses: u64,
) -> String {
    let lat = if p_has_lat {
        format!(
            ",\"lat_p50\":262143,\"lat_p99\":1048575,\"lat_p999\":{p_lat_p999},\
             \"lat_max\":{max},\"lat_count\":500",
            max = p_lat_p999.max(1 << 22),
        )
    } else {
        String::new()
    };
    format!(
        "[\n  {{\"bench\":\"serve_latency\",\"backend\":\"mq\",\"threads\":2,\
         \"arrival_process\":\"poisson\",\"mode\":\"edf\",\"deadline_budget\":\"mixed\",\
         \"offered_rate\":500.0,\"clients\":2,\
         \"work_ns\":20000,\"queue_cap\":512,\"duration_s\":1.0,\
         \"submitted\":500,\"accepted\":500,\"rejected\":0,\"completed\":500,\
         \"deadline_met\":{met},\"deadline_misses\":{p_misses},\"miss_rate\":{miss_rate:.4},\
         \"tardiness_p99\":131071,\"tardiness_p999\":262143,\"tardiness_max\":524287,\
         \"achieved_rate\":500.0,\"accepted_per_sec\":{p_accepted_per_sec:.1}{lat},\
         \"srv_sojourn_p50\":131071,\"srv_sojourn_p99\":524287,\
         \"srv_sojourn_p999\":1048575,\"srv_inject_p99\":8191}},\n  \
         {{\"bench\":\"serve_latency\",\"backend\":\"mq\",\"threads\":2,\
         \"arrival_process\":\"burst\",\"mode\":\"edf\",\"deadline_budget\":\"mixed\",\
         \"offered_rate\":2000.0,\"clients\":2,\
         \"work_ns\":20000,\"queue_cap\":512,\"duration_s\":1.0,\
         \"submitted\":2000,\"accepted\":1900,\"rejected\":100,\"completed\":1900,\
         \"deadline_met\":1710,\"deadline_misses\":190,\"miss_rate\":0.1000,\
         \"tardiness_p99\":2097151,\"tardiness_p999\":4194303,\"tardiness_max\":8388607,\
         \"achieved_rate\":2000.0,\"accepted_per_sec\":1900.0,\
         \"lat_p50\":524287,\"lat_p99\":4194303,\"lat_p999\":134217727,\
         \"lat_max\":268435455,\"lat_count\":1900,\
         \"srv_sojourn_p50\":262143,\"srv_sojourn_p99\":2097151,\
         \"srv_sojourn_p999\":4194303,\"srv_inject_p99\":16383}}\n]\n",
        met = 500 - p_misses,
        miss_rate = p_misses as f64 / 500.0,
    )
}

#[test]
fn serve_identical_runs_pass() {
    let art = serve_artifact(500.0, 1 << 21, true, 0);
    assert_eq!(run_gate(&art, &art, "serve_identical"), 0);
}

#[test]
fn serve_latency_within_two_buckets_passes() {
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    // p999 sojourn doubles twice (2 log₂ buckets): inside the cubed
    // limit (1/(1-0.40))³ ≈ 4.63.
    let fresh = serve_artifact(500.0, 1 << 23, true, 0);
    assert_eq!(run_gate(&base, &fresh, "serve_two_buckets"), 0);
}

#[test]
fn serve_p999_inflation_fails() {
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    // 8× = 3 log₂ buckets of p999 sojourn inflation on the quiet cell
    // while the burst cell holds the peak: past the ≈4.63 limit in both
    // the raw and the normalized view.
    let fresh = serve_artifact(500.0, 1 << 24, true, 0);
    assert_eq!(run_gate(&base, &fresh, "serve_inflated"), 1);
}

#[test]
fn serve_missing_latency_fields_fail() {
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    let fresh = serve_artifact(500.0, 1 << 21, false, 0);
    assert_eq!(run_gate(&base, &fresh, "serve_missing_lat"), 1);
}

#[test]
fn serve_conservation_violation_fails() {
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    // accepted + rejected != submitted on the burst cell.
    let fresh = serve_artifact(500.0, 1 << 21, true, 0).replace(
        "\"submitted\":2000,\"accepted\":1900,\"rejected\":100",
        "\"submitted\":2000,\"accepted\":1900,\"rejected\":50",
    );
    assert_eq!(run_gate(&base, &fresh, "serve_conservation"), 1);
    // completed != accepted (a dropped task) on the poisson cell.
    let fresh = serve_artifact(500.0, 1 << 21, true, 0).replace(
        "\"rejected\":0,\"completed\":500",
        "\"rejected\":0,\"completed\":499",
    );
    assert_eq!(run_gate(&base, &fresh, "serve_dropped"), 1);
}

#[test]
fn serve_miss_rate_inflation_fails() {
    // An all-met quiet cell (miss rate 0) starts missing 8% of its
    // deadlines while the burst cell holds the run peak at 10%. With
    // +0.02 smoothing: raw (0.08+0.02)/(0+0.02) = 5 and peak-normalized
    // (0.8+0.02)/(0+0.02) = 41, both past the cubed ≈4.63 limit.
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    let fresh = serve_artifact(500.0, 1 << 21, true, 40);
    assert_eq!(run_gate(&base, &fresh, "serve_miss_inflation"), 1);
}

#[test]
fn serve_deadline_ledger_violation_fails() {
    // deadline_met + deadline_misses != completed on the quiet cell: a
    // completion without a verdict.
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    let fresh = serve_artifact(500.0, 1 << 21, true, 0)
        .replace("\"deadline_met\":500", "\"deadline_met\":450");
    assert_eq!(run_gate(&base, &fresh, "serve_lost_verdict"), 1);
    // miss_rate disagreeing with deadline_misses / completed.
    let fresh = serve_artifact(500.0, 1 << 21, true, 0)
        .replace("\"miss_rate\":0.0000", "\"miss_rate\":0.0500");
    assert_eq!(run_gate(&base, &fresh, "serve_bad_miss_rate"), 1);
    // Non-monotone tardiness quantiles on the burst cell.
    let fresh = serve_artifact(500.0, 1 << 21, true, 0)
        .replace("\"tardiness_p999\":4194303", "\"tardiness_p999\":1048575");
    assert_eq!(run_gate(&base, &fresh, "serve_bad_tardiness"), 1);
}

#[test]
fn serve_accepted_rate_collapse_fails() {
    let base = serve_artifact(500.0, 1 << 21, true, 0);
    // The quiet cell's accepted rate collapses far past the 40%
    // tolerance in both views (the burst cell pins the peak).
    let fresh = serve_artifact(100.0, 1 << 21, true, 0);
    assert_eq!(run_gate(&base, &fresh, "serve_collapse"), 1);
}
