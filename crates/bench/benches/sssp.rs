//! **QBENCH/SSSP** — Criterion benchmarks of the SSSP engines: exact
//! sequential baselines vs the relaxed concurrent executor at increasing
//! thread counts, on a mid-size road-like grid (the workload where the
//! relaxation trade-off is visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsched_algos::{parallel_sssp, ParSsspConfig};
use rsched_graph::gen::{grid_road, random_gnm};
use rsched_graph::{delta_stepping, dijkstra, CsrGraph};

fn bench_graph(c: &mut Criterion, name: &str, g: &CsrGraph) {
    let mut group = c.benchmark_group(format!("sssp_{name}"));
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.sample_size(10);
    group.bench_function("dijkstra_exact", |b| b.iter(|| dijkstra(g, 0)));
    group.bench_function("delta_stepping_d100", |b| {
        b.iter(|| delta_stepping(g, 0, 100))
    });
    let max = std::thread::available_parallelism().map_or(4, |p| p.get());
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            break;
        }
        group.bench_with_input(
            BenchmarkId::new("relaxed_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    parallel_sssp(
                        g,
                        0,
                        ParSsspConfig {
                            threads,
                            queue_multiplier: 2,
                            seed: 1,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_sssp(c: &mut Criterion) {
    let road = grid_road(120, 120, 7);
    bench_graph(c, "road_14k", &road);
    let random = random_gnm(20_000, 200_000, 1..=100, 7);
    bench_graph(c, "random_20k", &random);
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
