//! **QBENCH** — Criterion micro-benchmarks of the priority-queue substrate:
//! sequential throughput of every queue, plus contended throughput of the
//! concurrent MultiQueue at several queue counts (the scalability argument
//! for relaxation that motivates the whole paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsched_queues::{
    ConcurrentMultiQueue, Exact, IndexedBinaryHeap, PairingHeap, PriorityQueue, QueueBuilder,
    RelaxedQueue, RotatingKQueue, SimMultiQueue, SprayList,
};
use std::sync::Arc;

const N: usize = 10_000;

fn keys(seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..N).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn bench_sequential_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_pop_10k");
    group.throughput(Throughput::Elements(N as u64));
    let ks = keys(1);

    group.bench_function("indexed_binary_heap", |b| {
        b.iter(|| {
            let mut h = IndexedBinaryHeap::new();
            for (i, &k) in ks.iter().enumerate() {
                h.push(i, k);
            }
            while h.pop().is_some() {}
        })
    });
    group.bench_function("pairing_heap", |b| {
        b.iter(|| {
            let mut h = PairingHeap::new();
            for (i, &k) in ks.iter().enumerate() {
                h.push(i, k);
            }
            while h.pop().is_some() {}
        })
    });
    group.bench_function("sim_multiqueue_q8", |b| {
        b.iter(|| {
            let mut q = SimMultiQueue::new(8, 3);
            for (i, &k) in ks.iter().enumerate() {
                q.insert(i, k);
            }
            while q.pop_relaxed().is_some() {}
        })
    });
    group.bench_function("spraylist_p8", |b| {
        b.iter(|| {
            let mut q = SprayList::new(8, 3);
            for (i, &k) in ks.iter().enumerate() {
                q.insert(i, k);
            }
            while q.pop_relaxed().is_some() {}
        })
    });
    group.bench_function("rotating_k8", |b| {
        b.iter(|| {
            let mut q = RotatingKQueue::new(8);
            for (i, &k) in ks.iter().enumerate() {
                q.insert(i, k);
            }
            while q.pop_relaxed().is_some() {}
        })
    });
    group.bench_function("exact_wrapper", |b| {
        b.iter(|| {
            let mut q = Exact(IndexedBinaryHeap::new());
            for (i, &k) in ks.iter().enumerate() {
                q.insert(i, k);
            }
            while q.pop_relaxed().is_some() {}
        })
    });
    group.finish();
}

fn bench_decrease_key(c: &mut Criterion) {
    use rsched_queues::DecreaseKey;
    let mut group = c.benchmark_group("decrease_key_10k");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("indexed_binary_heap", |b| {
        b.iter(|| {
            let mut h = IndexedBinaryHeap::new();
            for i in 0..N {
                h.push(i, 1_000_000 + i as u64);
            }
            for i in 0..N {
                h.decrease_key(i, i as u64);
            }
            while h.pop().is_some() {}
        })
    });
    group.bench_function("pairing_heap", |b| {
        b.iter(|| {
            let mut h = PairingHeap::new();
            for i in 0..N {
                h.push(i, 1_000_000 + i as u64);
            }
            for i in 0..N {
                h.decrease_key(i, i as u64);
            }
            while h.pop().is_some() {}
        })
    });
    group.finish();
}

/// Contended producer/consumer throughput of the concurrent MultiQueue:
/// every thread pushes then pops its share. More internal queues = less
/// contention = higher throughput, the MultiQueue design point.
fn bench_concurrent_multiqueue(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(8);
    let per_thread = 20_000usize;
    let mut group = c.benchmark_group(format!("concurrent_mq_{threads}threads"));
    group.throughput(Throughput::Elements((threads * per_thread) as u64));
    group.sample_size(10);
    for mult in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("queue_mult", mult), &mult, |b, &mult| {
            b.iter(|| {
                let q = Arc::new(QueueBuilder::new(threads * mult).multiqueue::<u64>());
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let q = Arc::clone(&q);
                        s.spawn(move || {
                            let mut rng = SmallRng::seed_from_u64(t as u64);
                            for i in 0..per_thread {
                                q.push_or_decrease(t * per_thread + i, rng.gen_range(0..1_000_000));
                            }
                            for _ in 0..per_thread {
                                while q.pop(&mut rng).is_none() {
                                    if q.is_empty() {
                                        break;
                                    }
                                }
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

/// Contended MultiQueue throughput per priority-shard backend: the
/// lock-free skiplist (default since PR 3) against the mutex-heap
/// baseline, same workload as `bench_concurrent_multiqueue`. The
/// `mq_contention` binary runs the full thread sweep; this is the
/// quick-look cell.
fn bench_multiqueue_backends(c: &mut Criterion) {
    use rsched_queues::SubPriority;
    let threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .clamp(2, 8);
    let per_thread = 20_000usize;
    let mut group = c.benchmark_group(format!("mq_backends_{threads}threads"));
    group.throughput(Throughput::Elements((threads * per_thread) as u64));
    group.sample_size(10);
    fn cell<S: SubPriority<u64> + 'static>(threads: usize, per_thread: usize) {
        use rsched_queues::SessionConfig;
        let q: Arc<ConcurrentMultiQueue<u64, S>> =
            Arc::new(QueueBuilder::new(2 * threads).multiqueue_on());
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    let mut session = q.session(&SessionConfig::for_worker(t, threads));
                    for i in 0..per_thread {
                        q.push_session(
                            t * per_thread + i,
                            rng.gen_range(0..1_000_000),
                            &mut session,
                        );
                        if i % 2 == 0 {
                            q.pop_session(&mut session);
                        }
                    }
                });
            }
        });
    }
    group.bench_function("skiplist", |b| {
        b.iter(|| cell::<rsched_queues::SkipShard<u64>>(threads, per_thread))
    });
    group.bench_function("mutexheap", |b| {
        b.iter(|| cell::<rsched_queues::MutexHeapSub<u64>>(threads, per_thread))
    });
    group.finish();
}

/// Single-thread push/pop throughput of the lock-free sub-queues (the
/// FIFO shard backends plus the skiplist priority shard), mirroring the
/// `fifo_contention` / `mq_contention` cells at the micro level.
fn bench_lockfree_subqueues(c: &mut Criterion) {
    use rsched_queues::skipshard::TryPopMin;
    use rsched_queues::{MsQueue, SegRingQueue, SkipShard, SubPriority};
    let mut group = c.benchmark_group("lockfree_push_pop_10k");
    group.throughput(Throughput::Elements(N as u64));
    let ks = keys(7);
    group.bench_function("ms_queue", |b| {
        b.iter(|| {
            let q = MsQueue::new();
            for (i, &k) in ks.iter().enumerate() {
                q.push_stamped(i as u64, k);
            }
            while q.pop_stamped().is_some() {}
        })
    });
    group.bench_function("seg_ring", |b| {
        b.iter(|| {
            let q = SegRingQueue::new();
            for (i, &k) in ks.iter().enumerate() {
                q.push_stamped(i as u64, k);
            }
            while q.pop_stamped().is_some() {}
        })
    });
    group.bench_function("seg_ring_reused", |b| {
        // One long-lived queue: after warm-up the segment pool absorbs
        // every allocation, the steady state real workloads see.
        let q = SegRingQueue::new();
        b.iter(|| {
            for (i, &k) in ks.iter().enumerate() {
                q.push_stamped(i as u64, k);
            }
            while q.pop_stamped().is_some() {}
        })
    });
    group.bench_function("skiplist_shard", |b| {
        b.iter(|| {
            let s: SkipShard<u64> = SubPriority::new();
            let tok = <SkipShard<u64> as SubPriority<u64>>::token();
            for (i, &k) in ks.iter().enumerate() {
                s.push_or_decrease(i, k, &tok);
            }
            while let TryPopMin::Item(_) = s.try_pop_min(&tok) {}
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_queues,
    bench_decrease_key,
    bench_concurrent_multiqueue,
    bench_multiqueue_backends,
    bench_lockfree_subqueues
);
criterion_main!(benches);
