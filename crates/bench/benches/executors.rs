//! **QBENCH/EXEC** — Criterion benchmarks of the execution framework: the
//! relaxed executor (Algorithm 2) across schedulers on BST sorting, the
//! adversarial executor, and the transactional simulator. Measures the
//! framework overhead itself, separating it from the algorithms' work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsched_algos::BstSort;
use rsched_core::{
    run_exact, run_relaxed, run_relaxed_with, run_transactional, IncrementalAlgorithm, TxConfig,
    TxStrategy,
};
use rsched_queues::{Exact, IndexedBinaryHeap, RotatingKQueue, SimMultiQueue, SprayList};

const N: usize = 10_000;

fn bench_relaxed_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_bst_sort_10k");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(10);
    group.bench_function("exact_direct", |b| {
        b.iter(|| {
            let mut alg = BstSort::random(N, 1);
            run_exact(&mut alg)
        })
    });
    group.bench_function("exact_queue", |b| {
        b.iter(|| {
            let mut alg = BstSort::random(N, 1);
            run_relaxed(&mut alg, &mut Exact(IndexedBinaryHeap::new()))
        })
    });
    group.bench_function("multiqueue_q8", |b| {
        b.iter(|| {
            let mut alg = BstSort::random(N, 1);
            run_relaxed(&mut alg, &mut SimMultiQueue::new(8, 2))
        })
    });
    group.bench_function("spraylist_p8", |b| {
        b.iter(|| {
            let mut alg = BstSort::random(N, 1);
            run_relaxed(&mut alg, &mut SprayList::new(8, 2))
        })
    });
    group.bench_function("rotating_k8", |b| {
        b.iter(|| {
            let mut alg = BstSort::random(N, 1);
            run_relaxed(&mut alg, &mut RotatingKQueue::new(8))
        })
    });
    group.bench_function("adversary_k8", |b| {
        b.iter(|| {
            let mut alg = BstSort::random(N, 1);
            run_relaxed_with(&mut alg, 8, |a, w| {
                w.iter().position(|&t| !a.deps_satisfied(t)).unwrap_or(0)
            })
        })
    });
    group.finish();
}

fn bench_transactional(c: &mut Criterion) {
    let mut group = c.benchmark_group("transactional_bst_sort");
    group.sample_size(10);
    for n in [2000usize, 8000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("k8_dur4", n), &n, |b, &n| {
            let alg = BstSort::random(n, 3);
            b.iter(|| {
                run_transactional(
                    n,
                    |i, j| alg.depends(i, j),
                    TxConfig {
                        k: 8,
                        duration: 4,
                        strategy: TxStrategy::Random,
                        seed: 1,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relaxed_executor, bench_transactional);
criterion_main!(benches);
