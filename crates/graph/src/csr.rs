//! Compressed sparse-row (CSR) directed weighted graphs.
//!
//! The layout is the standard HPC one: an `offsets` array of length `n + 1`
//! and flat `targets` / `weights` arrays of length `m`, so that the out-edges
//! of vertex `v` occupy the contiguous range `offsets[v]..offsets[v+1]`.
//! Neighbour iteration is branch-free and cache-friendly, which matters for
//! the SSSP experiments where edge relaxation dominates.

use crate::Weight;

/// A directed weighted graph in CSR form. Undirected graphs are represented
/// by storing both edge directions (as [`GraphBuilder::add_undirected_edge`]
/// does).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (an undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterate over `(target, weight)` pairs of the out-edges of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, Weight)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.targets[range.clone()]
            .iter()
            .zip(&self.weights[range])
            .map(|(&t, &w)| (t as usize, w))
    }

    /// Smallest edge weight (`w_min` in the paper's Theorem 6.1); `None` on
    /// an edgeless graph.
    pub fn min_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().min()
    }

    /// Largest edge weight.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().max()
    }

    /// Iterate over all directed edges as `(source, target, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, Weight)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| self.neighbors(v).map(move |(t, w)| (v, t, w)))
    }

    /// Build the transpose (all edges reversed). Weights are preserved.
    pub fn transpose(&self) -> CsrGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            builder.add_edge(v, u, w);
        }
        builder.build()
    }
}

/// Incremental edge-list builder that finalizes into a [`CsrGraph`].
///
/// # Examples
///
/// ```
/// use rsched_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 5);
/// b.add_undirected_edge(1, 2, 7);
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3); // 0->1, 1->2, 2->1
/// assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(2, 7)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, Weight)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids must fit in u32");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// A builder that pre-allocates for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add the directed edge `u -> v` with weight `w`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: Weight) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        self.edges.push((u as u32, v as u32, w));
    }

    /// Add both `u -> v` and `v -> u` with weight `w`.
    pub fn add_undirected_edge(&mut self, u: usize, v: usize, w: Weight) {
        self.add_edge(u, v, w);
        if u != v {
            self.add_edge(v, u, w);
        }
    }

    /// Finalize into CSR form. Within each vertex, out-edges keep insertion
    /// order (a counting sort by source is used, which is stable).
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let m = self.edges.len();
        let mut targets = vec![0u32; m];
        let mut weights = vec![0 as Weight; m];
        let mut cursor = offsets.clone();
        for (u, v, w) in self.edges {
            let slot = cursor[u as usize];
            targets[slot] = v;
            weights[slot] = w;
            cursor[u as usize] += 1;
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 2);
        b.add_edge(1, 3, 3);
        b.add_edge(2, 3, 4);
        b.build()
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 1), (2, 2)]);
        assert_eq!(g.min_weight(), Some(1));
        assert_eq!(g.max_weight(), Some(4));
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 2), (1, 3, 3), (2, 3, 4)]);
    }

    #[test]
    fn transpose_reverses() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.neighbors(3).collect::<Vec<_>>(), vec![(1, 3), (2, 4)]);
        assert_eq!(t.out_degree(0), 0);
        // Double transpose is the identity (up to within-vertex edge order,
        // which the counting sort preserves here).
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 9)]);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(0, 9)]);
    }

    #[test]
    fn self_loop_added_once_in_undirected() {
        let mut b = GraphBuilder::new(1);
        b.add_undirected_edge(0, 0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_weight(), None);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }
}
