//! Graph generators reproducing the paper's three experiment workloads
//! (Section 7) plus structured graphs used by the theorem-shape experiments.
//!
//! All generators are deterministic in their seed.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::Weight;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform random undirected multigraph G(n, m) with weights drawn uniformly
/// from `weights` — the paper's *random* graph ("1 million nodes and
/// 10 million edges, with uniform random weights between 0 and 100").
///
/// Self-loops are excluded; parallel edges may occur (they are harmless for
/// shortest paths and match the G(n, m) sampling the paper describes).
///
/// # Examples
///
/// ```
/// use rsched_graph::gen::random_gnm;
///
/// let g = random_gnm(1000, 10_000, 1..=100, 42);
/// assert_eq!(g.num_vertices(), 1000);
/// assert_eq!(g.num_edges(), 20_000); // both directions
/// ```
pub fn random_gnm(
    n: usize,
    m: usize,
    weights: std::ops::RangeInclusive<Weight>,
    seed: u64,
) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    assert!(*weights.start() >= 1, "zero weights break w_min; use >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * m);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        let w = rng.gen_range(weights.clone());
        b.add_undirected_edge(u, v, w);
    }
    b.build()
}

/// Road-network-like graph: a `width × height` grid with high-variance
/// "physical distance" weights.
///
/// This is the documented substitution for the paper's USA road network
/// (DIMACS). The two properties the paper uses to explain the road
/// network's higher relaxation overheads are preserved:
///
/// * **high diameter** — a grid has hop-diameter `width + height − 2`,
///   versus `O(log n)` for the random and social graphs;
/// * **high weight variance** — each edge gets a length `base ±
///   perturbation` with `base` drawn log-uniformly from
///   `[min_len, max_len]`, mimicking road segments that range from city
///   blocks to highway stretches.
///
/// # Examples
///
/// ```
/// use rsched_graph::gen::grid_road;
///
/// let g = grid_road(32, 32, 7);
/// assert_eq!(g.num_vertices(), 1024);
/// // Interior vertices have degree 4.
/// assert!(g.out_degree(33) == 4);
/// ```
pub fn grid_road(width: usize, height: usize, seed: u64) -> CsrGraph {
    grid_road_with_lengths(width, height, 10, 10_000, seed)
}

/// [`grid_road`] with explicit edge-length bounds.
pub fn grid_road_with_lengths(
    width: usize,
    height: usize,
    min_len: Weight,
    max_len: Weight,
    seed: u64,
) -> CsrGraph {
    assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
    assert!(1 <= min_len && min_len < max_len);
    let n = width * height;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    let id = |x: usize, y: usize| y * width + x;
    // Log-uniform lengths: uniform exponent between ln(min) and ln(max).
    let ln_min = (min_len as f64).ln();
    let ln_max = (max_len as f64).ln();
    let road_len = |rng: &mut SmallRng| -> Weight {
        let e = rng.gen_range(ln_min..ln_max);
        (e.exp().round() as Weight).clamp(min_len, max_len)
    };
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_undirected_edge(id(x, y), id(x + 1, y), road_len(&mut rng));
            }
            if y + 1 < height {
                b.add_undirected_edge(id(x, y), id(x, y + 1), road_len(&mut rng));
            }
        }
    }
    b.build()
}

/// Social-network-like graph: preferential attachment (Barabási–Albert)
/// with uniform random weights.
///
/// This is the documented substitution for the paper's LiveJournal graph:
/// it reproduces the two properties the paper relies on — a **low diameter**
/// (the paper measures 16 for LiveJournal) and a skewed, heavy-tailed degree
/// distribution — with weights drawn uniformly like the paper's
/// ("uniform random weights between 0 and 100").
///
/// Each new vertex attaches `edges_per_vertex` edges to existing vertices
/// chosen proportionally to their current degree (implemented by sampling
/// uniformly from the endpoint list, the standard trick).
///
/// # Examples
///
/// ```
/// use rsched_graph::gen::power_law;
///
/// let g = power_law(1000, 8, 1..=100, 3);
/// assert_eq!(g.num_vertices(), 1000);
/// ```
pub fn power_law(
    n: usize,
    edges_per_vertex: usize,
    weights: std::ops::RangeInclusive<Weight>,
    seed: u64,
) -> CsrGraph {
    assert!(n > edges_per_vertex && edges_per_vertex >= 1);
    assert!(*weights.start() >= 1, "zero weights break w_min; use >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * n * edges_per_vertex);
    // Endpoint multiset: vertex v appears deg(v) times.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * edges_per_vertex);
    // Seed clique over the first edges_per_vertex + 1 vertices.
    let core = edges_per_vertex + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            let w = rng.gen_range(weights.clone());
            b.add_undirected_edge(u, v, w);
            endpoints.push(u as u32);
            endpoints.push(v as u32);
        }
    }
    for v in core..n {
        let mut chosen = Vec::with_capacity(edges_per_vertex);
        while chosen.len() < edges_per_vertex {
            let t = endpoints[rng.gen_range(0..endpoints.len())] as usize;
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            let w = rng.gen_range(weights.clone());
            b.add_undirected_edge(v, t, w);
            endpoints.push(v as u32);
            endpoints.push(t as u32);
        }
    }
    b.build()
}

/// A directed path `0 -> 1 -> … -> n−1` with constant weight `w`.
///
/// The extremal input for Theorem 6.1: `d_max / w_min = n − 1`, so the
/// relaxed SSSP's extra pops are maximal relative to `n`.
pub fn path_graph(n: usize, w: Weight) -> CsrGraph {
    assert!(n >= 1 && w >= 1);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 0..n.saturating_sub(1) {
        b.add_edge(v, v + 1, w);
    }
    b.build()
}

/// A star: center 0 connected to all other vertices with weight `w`.
///
/// The opposite extreme for Theorem 6.1: `d_max / w_min = 1`, every vertex
/// is in the same distance bucket.
pub fn star_graph(n: usize, w: Weight) -> CsrGraph {
    assert!(n >= 2 && w >= 1);
    let mut b = GraphBuilder::with_capacity(n, 2 * (n - 1));
    for v in 1..n {
        b.add_undirected_edge(0, v, w);
    }
    b.build()
}

/// A layered "bucket chain": `layers` layers of `layer_size` vertices, with
/// every vertex of layer `i` connected to every vertex of layer `i + 1` with
/// weight `w`. Layer 0 is the single source vertex 0.
///
/// Under SSSP from vertex 0, layer `i` is exactly the paper's distance
/// bucket `B_i` (Theorem 6.1), so this graph lets experiments control the
/// bucket count `t = d_max / w_min` and the bucket size independently.
pub fn bucket_chain(layers: usize, layer_size: usize, w: Weight) -> CsrGraph {
    bucket_chain_weights(layers, layer_size, w..=w, 0)
}

/// [`bucket_chain`] with weights drawn uniformly from `weights`.
///
/// With non-constant weights, the first relaxation reaching a vertex is
/// generally *not* its final distance, so relaxed schedulers that pop
/// vertices speculatively must re-execute them — the wasted work
/// Theorem 6.1 charges to the `O(k² · d_max/w_min)` term. (With constant
/// weights every relaxation is already optimal and the extra-pop count is
/// zero, which is why the theorem-shape experiments use this variant.)
pub fn bucket_chain_weights(
    layers: usize,
    layer_size: usize,
    weights: std::ops::RangeInclusive<Weight>,
    seed: u64,
) -> CsrGraph {
    assert!(layers >= 1 && layer_size >= 1 && *weights.start() >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 1 + layers * layer_size;
    let mut b = GraphBuilder::with_capacity(n, layers * layer_size * layer_size);
    let vertex = |layer: usize, i: usize| {
        if layer == 0 {
            0
        } else {
            1 + (layer - 1) * layer_size + i
        }
    };
    // Source to layer 1.
    for i in 0..layer_size {
        b.add_edge(0, vertex(1, i), rng.gen_range(weights.clone()));
    }
    for layer in 1..layers {
        for i in 0..layer_size {
            for j in 0..layer_size {
                b.add_edge(
                    vertex(layer, i),
                    vertex(layer + 1, j),
                    rng.gen_range(weights.clone()),
                );
            }
        }
    }
    b.build()
}

/// R-MAT graph (Chakrabarti, Zhan, Faloutsos 2004): recursive-matrix edge
/// sampling with the standard (a, b, c, d) = (0.57, 0.19, 0.19, 0.05)
/// Graph500 parameters, undirected with uniform random weights.
///
/// An alternative social-graph substitution to [`power_law`]: R-MAT
/// produces the skewed degree distributions and community-like structure of
/// web/social graphs with `2^scale` vertices.
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    weights: std::ops::RangeInclusive<Weight>,
    seed: u64,
) -> CsrGraph {
    assert!((2..=24).contains(&scale));
    assert!(*weights.start() >= 1, "zero weights break w_min; use >= 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * m);
    let (pa, pb, pc) = (0.57, 0.19, 0.19);
    let mut sampled = 0usize;
    while sampled < m {
        let mut u = 0usize;
        let mut v = 0usize;
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < pa {
                (0, 0)
            } else if r < pa + pb {
                (0, 1)
            } else if r < pa + pb + pc {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u == v {
            continue;
        }
        let w = rng.gen_range(weights.clone());
        b.add_undirected_edge(u, v, w);
        sampled += 1;
    }
    b.build()
}

/// Complete graph on `n` vertices with uniform random weights. Used by the
/// greedy-coloring "high fanout" worst case the paper's introduction
/// mentions (low dependency depth but high speculative overhead).
pub fn complete_graph(n: usize, weights: std::ops::RangeInclusive<Weight>, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1));
    for u in 0..n {
        for v in (u + 1)..n {
            let w = rng.gen_range(weights.clone());
            b.add_undirected_edge(u, v, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn gnm_deterministic_in_seed() {
        let a = random_gnm(100, 500, 1..=100, 9);
        let b = random_gnm(100, 500, 1..=100, 9);
        let c = random_gnm(100, 500, 1..=100, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_no_self_loops_and_weights_in_range() {
        let g = random_gnm(50, 1000, 5..=10, 1);
        for (u, v, w) in g.edges() {
            assert_ne!(u, v);
            assert!((5..=10).contains(&w));
        }
    }

    #[test]
    fn grid_degrees() {
        let g = grid_road(4, 3, 2);
        assert_eq!(g.num_vertices(), 12);
        // Corner (0,0): degree 2; edge (1,0): degree 3; interior (1,1): 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(5), 4);
        // Undirected: total degree = 2 * #undirected edges.
        let expected_edges = 2 * (3 * 3 + 4 * 2); // horiz: 3 per row * 3 rows, vert: 4 per col...
                                                  // horizontal edges: (width-1)*height = 3*3 = 9; vertical: width*(height-1) = 4*2 = 8.
        assert_eq!(g.num_edges(), 2 * (9 + 8));
        let _ = expected_edges;
    }

    #[test]
    fn grid_has_high_diameter_powerlaw_low() {
        let grid = grid_road(24, 24, 3);
        let pl = power_law(576, 6, 1..=100, 3);
        let d_grid = analysis::hop_diameter_estimate(&grid, 3);
        let d_pl = analysis::hop_diameter_estimate(&pl, 3);
        assert!(
            d_grid >= 3 * d_pl,
            "grid diameter {d_grid} should dwarf power-law diameter {d_pl}"
        );
    }

    #[test]
    fn power_law_is_connected_and_skewed() {
        let g = power_law(2000, 4, 1..=100, 5);
        assert_eq!(analysis::num_components(&g), 1);
        let max_deg = (0..g.num_vertices())
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        let mean_deg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 5.0 * mean_deg,
            "expected heavy tail: max {max_deg} vs mean {mean_deg}"
        );
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path_graph(5, 3);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.out_degree(4), 0);
        let s = star_graph(5, 2);
        assert_eq!(s.out_degree(0), 4);
        assert_eq!(s.out_degree(1), 1);
    }

    #[test]
    fn bucket_chain_layers() {
        let g = bucket_chain(3, 4, 10);
        assert_eq!(g.num_vertices(), 13);
        // Source fans out to 4, each layer-1 vertex fans out to 4.
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.out_degree(1), 4);
        // Last layer has no out-edges.
        assert_eq!(g.out_degree(12), 0);
        let dist = crate::dijkstra(&g, 0).dist;
        assert_eq!(dist[1], 10);
        assert_eq!(dist[5], 20);
        assert_eq!(dist[12], 30);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(10, 1..=5, 0);
        assert_eq!(g.num_edges(), 90);
    }

    #[test]
    fn rmat_shape_is_skewed_and_low_diameter() {
        let g = rmat(11, 8, 1..=100, 5);
        assert_eq!(g.num_vertices(), 2048);
        assert_eq!(g.num_edges(), 2 * 2048 * 8);
        let stats = crate::analysis::degree_stats(&g);
        assert!(
            stats.max as f64 > 8.0 * stats.mean,
            "R-MAT should be heavy-tailed: max {} vs mean {}",
            stats.max,
            stats.mean
        );
        // Low diameter on the giant component.
        let d = crate::analysis::hop_diameter_estimate(&g, 2);
        assert!(d <= 16, "R-MAT diameter {d} unexpectedly large");
    }

    #[test]
    fn bucket_chain_random_weights_in_range() {
        let g = bucket_chain_weights(5, 4, 10..=20, 3);
        for (_, _, w) in g.edges() {
            assert!((10..=20).contains(&w));
        }
        // Constant-weight variant goes through the same code path.
        let g = bucket_chain(5, 4, 7);
        assert!(g.edges().all(|(_, _, w)| w == 7));
    }

    #[test]
    fn road_weights_have_high_variance() {
        let g = grid_road(32, 32, 11);
        let ws: Vec<f64> = g.edges().map(|(_, _, w)| w as f64).collect();
        let mean = ws.iter().sum::<f64>() / ws.len() as f64;
        let var = ws.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / ws.len() as f64;
        let cv = var.sqrt() / mean; // coefficient of variation
        assert!(cv > 0.8, "road weights should vary widely, cv = {cv}");
    }
}
