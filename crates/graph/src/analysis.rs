//! Structural graph analysis: connectivity, BFS, diameter estimation and
//! degree statistics.
//!
//! The paper explains the road network's higher relaxation overhead by its
//! *diameter* (6261 for the USA road network versus 16 for LiveJournal and
//! 6 for the random graph) — [`hop_diameter_estimate`] measures the same
//! quantity for our generated graphs so EXPERIMENTS.md can report the
//! paper-vs-measured comparison.

use crate::csr::CsrGraph;
use crate::{Weight, INF};
use std::collections::VecDeque;

/// Hop distances from `src` by breadth-first search; unreachable vertices
/// get `usize::MAX`.
pub fn bfs_levels(g: &CsrGraph, src: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut level = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    level[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for (t, _) in g.neighbors(v) {
            if level[t] == usize::MAX {
                level[t] = level[v] + 1;
                queue.push_back(t);
            }
        }
    }
    level
}

/// Number of weakly connected components (treating edges as undirected).
pub fn num_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for (u, v, _) in g.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru] = rv;
        }
    }
    (0..n).filter(|&v| find(&mut parent, v) == v).count()
}

/// Vertices reachable from `src` (following edge directions).
pub fn num_reachable(g: &CsrGraph, src: usize) -> usize {
    bfs_levels(g, src)
        .iter()
        .filter(|&&l| l != usize::MAX)
        .count()
}

/// Lower-bound estimate of the hop diameter by repeated double sweeps:
/// BFS from a start vertex, then BFS again from the farthest vertex found,
/// `sweeps` times from rotating start points. Exact on trees; a good lower
/// bound in general and standard practice for large graphs.
pub fn hop_diameter_estimate(g: &CsrGraph, sweeps: usize) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    let mut start = 0usize;
    for i in 0..sweeps.max(1) {
        let levels = bfs_levels(g, start);
        let (far, ecc) = levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != usize::MAX)
            .max_by_key(|(_, &l)| l)
            .map(|(v, &l)| (v, l))
            .unwrap_or((start, 0));
        best = best.max(ecc);
        let levels2 = bfs_levels(g, far);
        let ecc2 = levels2
            .iter()
            .filter(|&&l| l != usize::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        best = best.max(ecc2);
        // Rotate the start vertex deterministically for the next sweep.
        start = (start + n / (i + 2) + 1) % n;
    }
    best
}

/// The ratio `d_max / w_min` from the paper's Theorem 6.1, computed with an
/// exact Dijkstra from `src` over the vertices reachable from `src`.
/// Returns `None` if no edges leave `src`'s component or the graph has no
/// edges.
pub fn dmax_over_wmin(g: &CsrGraph, src: usize) -> Option<f64> {
    let wmin = g.min_weight()?;
    let dist = crate::sssp::dijkstra(g, src).dist;
    let dmax = dist.iter().copied().filter(|&d| d != INF).max()?;
    Some(dmax as f64 / wmin as f64)
}

/// Summary degree statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
}

/// Compute [`DegreeStats`] over out-degrees.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    for v in 0..n {
        let d = g.out_degree(v);
        min = min.min(d);
        max = max.max(d);
    }
    DegreeStats {
        min,
        max,
        mean: g.num_edges() as f64 / n as f64,
    }
}

/// Weight statistics: `(w_min, w_max, coefficient of variation)`.
pub fn weight_stats(g: &CsrGraph) -> Option<(Weight, Weight, f64)> {
    if g.num_edges() == 0 {
        return None;
    }
    let mut sum = 0f64;
    let mut sum2 = 0f64;
    let mut wmin = Weight::MAX;
    let mut wmax = 0;
    let m = g.num_edges() as f64;
    for (_, _, w) in g.edges() {
        sum += w as f64;
        sum2 += (w as f64) * (w as f64);
        wmin = wmin.min(w);
        wmax = wmax.max(w);
    }
    let mean = sum / m;
    let var = (sum2 / m - mean * mean).max(0.0);
    Some((wmin, wmax, var.sqrt() / mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::GraphBuilder;

    #[test]
    fn bfs_levels_on_path() {
        let g = gen::path_graph(5, 7);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        // Directed: nothing reaches back to 0.
        assert_eq!(
            bfs_levels(&g, 4),
            vec![usize::MAX; 4]
                .into_iter()
                .chain([0])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn components_counting() {
        let mut b = GraphBuilder::new(6);
        b.add_undirected_edge(0, 1, 1);
        b.add_undirected_edge(2, 3, 1);
        let g = b.build();
        assert_eq!(num_components(&g), 4); // {0,1}, {2,3}, {4}, {5}
    }

    #[test]
    fn diameter_exact_on_path() {
        let mut b = GraphBuilder::new(10);
        for v in 0..9 {
            b.add_undirected_edge(v, v + 1, 1);
        }
        let g = b.build();
        assert_eq!(hop_diameter_estimate(&g, 2), 9);
    }

    #[test]
    fn dmax_over_wmin_on_path() {
        let g = gen::path_graph(11, 5);
        // d_max = 50, w_min = 5.
        assert_eq!(dmax_over_wmin(&g, 0), Some(10.0));
    }

    #[test]
    fn degree_and_weight_stats() {
        let g = gen::star_graph(5, 3);
        let d = degree_stats(&g);
        assert_eq!(d.max, 4);
        assert_eq!(d.min, 1);
        let (wmin, wmax, cv) = weight_stats(&g).unwrap();
        assert_eq!((wmin, wmax), (3, 3));
        assert!(cv.abs() < 1e-9);
    }

    #[test]
    fn reachability_directed() {
        let g = gen::path_graph(4, 1);
        assert_eq!(num_reachable(&g, 0), 4);
        assert_eq!(num_reachable(&g, 2), 2);
    }
}
