//! Exact sequential shortest-path baselines.
//!
//! * [`dijkstra`] — the classic algorithm with an indexed binary heap and
//!   DecreaseKey. This is the paper's sequential baseline: its processed-task
//!   count (`pops`, one per reachable vertex) is the denominator of the
//!   *overhead* metric in Figure 1 ("the average number of tasks executed in
//!   a concurrent execution divided by the number of tasks executed in a
//!   sequential execution using an exact scheduler").
//! * [`delta_stepping`] — Meyer & Sanders' Δ-stepping, the algorithm whose
//!   bucket argument Theorem 6.1's analysis follows.
//! * [`bellman_ford`] — the O(nm) verifier used by tests and property tests
//!   to certify every other implementation.

use crate::csr::CsrGraph;
use crate::{Weight, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a sequential SSSP run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspResult {
    /// `dist[v]` = shortest distance from the source, or [`INF`].
    pub dist: Vec<Weight>,
    /// Number of vertices settled (tasks processed). For Dijkstra with
    /// DecreaseKey this equals the number of reachable vertices.
    pub pops: u64,
    /// Number of edge relaxations performed.
    pub relaxations: u64,
}

/// Exact breadth-first search: `dist[v]` = minimum *hop count* from the
/// source (edge weights ignored), or [`INF`] for unreachable vertices.
///
/// The sequential baseline for the relaxed-FIFO frontier BFS in
/// `rsched-algos`: a relaxed FIFO may expand the frontier out of order,
/// but the converged distances must equal this exact sweep.
///
/// # Examples
///
/// ```
/// use rsched_graph::{gen::path_graph, bfs};
///
/// let g = path_graph(4, 10);
/// assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
/// ```
pub fn bfs(g: &CsrGraph, src: usize) -> Vec<Weight> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut frontier = std::collections::VecDeque::new();
    dist[src] = 0;
    frontier.push_back(src);
    while let Some(v) = frontier.pop_front() {
        let d = dist[v];
        for (u, _) in g.neighbors(v) {
            if dist[u] == INF {
                dist[u] = d + 1;
                frontier.push_back(u);
            }
        }
    }
    dist
}

/// Dijkstra's algorithm with a DecreaseKey heap: each vertex is popped at
/// most once, giving the exact-scheduler task count the paper compares
/// relaxed executions against.
///
/// # Examples
///
/// ```
/// use rsched_graph::{gen::path_graph, dijkstra};
///
/// let g = path_graph(4, 10);
/// let r = dijkstra(&g, 0);
/// assert_eq!(r.dist, vec![0, 10, 20, 30]);
/// assert_eq!(r.pops, 4);
/// ```
pub fn dijkstra(g: &CsrGraph, src: usize) -> SsspResult {
    use rsched_queues::{DecreaseKey, IndexedBinaryHeap, PriorityQueue};

    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut heap = IndexedBinaryHeap::with_universe(n);
    dist[src] = 0;
    heap.push(src, 0);
    let mut pops = 0u64;
    let mut relaxations = 0u64;
    while let Some((v, d)) = heap.pop() {
        pops += 1;
        debug_assert_eq!(d, dist[v]);
        for (u, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[u] {
                relaxations += 1;
                if dist[u] == INF {
                    heap.push(u, nd);
                } else {
                    heap.decrease_key(u, nd);
                }
                dist[u] = nd;
            }
        }
    }
    SsspResult {
        dist,
        pops,
        relaxations,
    }
}

/// Meyer & Sanders' Δ-stepping: vertices are processed in buckets of width
/// `delta`; light edges (w < delta) are relaxed iteratively within a bucket,
/// heavy edges once when the bucket is emptied.
///
/// `pops` counts vertex *processings* (a vertex re-entering a bucket after
/// its tentative distance improves is processed again), which is the wasted
/// work Δ-stepping trades for parallel bucket processing — the same
/// trade-off the paper's relaxed SSSP makes implicitly.
pub fn delta_stepping(g: &CsrGraph, src: usize, delta: Weight) -> SsspResult {
    assert!(delta >= 1, "delta must be positive");
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[src] = 0;
    // Buckets hold duplicate entries; stale ones (whose distance no longer
    // maps to the bucket, or which were already processed at their current
    // distance) are skipped on pop. Distances only decrease, and a vertex
    // processed in bucket `bi` has dist >= bi * delta, so improvements never
    // target a bucket earlier than the current one.
    let mut buckets: Vec<Vec<usize>> = vec![vec![src]];
    let mut last_processed = vec![INF; n];
    let mut pops = 0u64;
    let mut relaxations = 0u64;
    let mut bi = 0usize;
    while bi < buckets.len() {
        let mut settled: Vec<usize> = Vec::new();
        while let Some(v) = buckets[bi].pop() {
            if dist[v] / delta != bi as Weight || last_processed[v] == dist[v] {
                continue; // stale or already processed at this distance
            }
            last_processed[v] = dist[v];
            pops += 1;
            settled.push(v);
            let dv = dist[v];
            for (u, w) in g.neighbors(v) {
                if w < delta {
                    let nd = dv + w;
                    if nd < dist[u] {
                        relaxations += 1;
                        dist[u] = nd;
                        let nb = (nd / delta) as usize;
                        debug_assert!(nb >= bi);
                        if nb >= buckets.len() {
                            buckets.resize(nb + 1, Vec::new());
                        }
                        buckets[nb].push(u);
                    }
                }
            }
        }
        // Heavy edges of everything settled in this bucket, once, at the
        // final (settled) distances.
        settled.sort_unstable();
        settled.dedup();
        for &v in &settled {
            let dv = dist[v];
            for (u, w) in g.neighbors(v) {
                if w >= delta {
                    let nd = dv + w;
                    if nd < dist[u] {
                        relaxations += 1;
                        dist[u] = nd;
                        let nb = (nd / delta) as usize;
                        if nb >= buckets.len() {
                            buckets.resize(nb + 1, Vec::new());
                        }
                        buckets[nb].push(u);
                    }
                }
            }
        }
        bi += 1;
    }
    SsspResult {
        dist,
        pops,
        relaxations,
    }
}

/// Bellman–Ford, used as an independent verifier: O(nm), no priority queue,
/// no shared code with the implementations under test.
pub fn bellman_ford(g: &CsrGraph, src: usize) -> Vec<Weight> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[src] = 0;
    for _ in 0..n {
        let mut changed = false;
        for v in 0..n {
            if dist[v] == INF {
                continue;
            }
            for (u, w) in g.neighbors(v) {
                let nd = dist[v] + w;
                if nd < dist[u] {
                    dist[u] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Reference Dijkstra using `std::collections::BinaryHeap` with lazy
/// deletion (duplicate insertions, skip outdated pops). `pops` counts
/// *non-stale* pops; `stale_pops` is returned too, because the difference
/// between this algorithm and [`dijkstra`] is exactly the DecreaseKey
/// ablation of the paper's Section 6 discussion.
pub fn dijkstra_lazy(g: &CsrGraph, src: usize) -> (SsspResult, u64) {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[src] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0 as Weight, src)));
    let mut pops = 0u64;
    let mut stale = 0u64;
    let mut relaxations = 0u64;
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            stale += 1;
            continue;
        }
        pops += 1;
        for (u, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[u] {
                relaxations += 1;
                dist[u] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    (
        SsspResult {
            dist,
            pops,
            relaxations,
        },
        stale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dijkstra_on_diamond() {
        let mut b = crate::GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 5);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 10);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3]);
        assert_eq!(r.pops, 4);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = gen::path_graph(4, 2);
        let r = dijkstra(&g, 2);
        assert_eq!(r.dist, vec![INF, INF, 0, 2]);
        assert_eq!(r.pops, 2);
    }

    #[test]
    fn all_three_agree_on_random_graphs() {
        for seed in 0..5u64 {
            let g = gen::random_gnm(200, 800, 1..=100, seed);
            let d1 = dijkstra(&g, 0).dist;
            let d2 = bellman_ford(&g, 0);
            let d3 = delta_stepping(&g, 0, 25).dist;
            let (d4, _) = dijkstra_lazy(&g, 0);
            assert_eq!(d1, d2, "dijkstra vs bellman-ford, seed {seed}");
            assert_eq!(d1, d3, "dijkstra vs delta-stepping, seed {seed}");
            assert_eq!(d1, d4.dist, "dijkstra vs lazy dijkstra, seed {seed}");
        }
    }

    #[test]
    fn delta_stepping_various_deltas() {
        let g = gen::grid_road(12, 12, 4);
        let want = dijkstra(&g, 0).dist;
        for delta in [1, 7, 100, 5000, 1_000_000] {
            let got = delta_stepping(&g, 0, delta).dist;
            assert_eq!(got, want, "delta = {delta}");
        }
    }

    #[test]
    fn dijkstra_pops_equal_reachable() {
        let g = gen::power_law(500, 3, 1..=100, 8);
        let r = dijkstra(&g, 0);
        let reachable = crate::analysis::num_reachable(&g, 0) as u64;
        assert_eq!(r.pops, reachable);
    }

    #[test]
    fn lazy_dijkstra_does_extra_work() {
        // Lazy deletion re-pops vertices; its pops match (non-stale) but
        // stale pops are generally positive on graphs with many relaxations.
        let g = gen::random_gnm(300, 3000, 1..=100, 2);
        let exact = dijkstra(&g, 0);
        let (lazy, stale) = dijkstra_lazy(&g, 0);
        assert_eq!(exact.dist, lazy.dist);
        assert_eq!(exact.pops, lazy.pops);
        assert!(stale > 0, "dense random graph should produce stale entries");
    }

    #[test]
    fn single_vertex() {
        let g = crate::GraphBuilder::new(1).build();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0]);
        assert_eq!(r.pops, 1);
        assert_eq!(delta_stepping(&g, 0, 10).dist, vec![0]);
    }
}
