//! # rsched-graph — graph substrate for relaxed-scheduler experiments
//!
//! Compressed sparse-row graphs, the random/road/social graph generators the
//! SPAA 2019 paper's Section 7 experiments need, loaders for the real
//! datasets the paper uses (DIMACS `.gr` road networks, SNAP edge lists),
//! structural analysis (connectivity, approximate diameter — the quantity
//! the paper uses to explain the road network's higher relaxation
//! overheads), and exact sequential shortest-path baselines (Dijkstra,
//! Δ-stepping, Bellman–Ford).
//!
//! The three experiment graphs of the paper are reproduced as generators:
//!
//! * `random`: uniform G(n, m) with uniform weights — [`gen::random_gnm`];
//! * `road`: the USA road network is substituted by a 2-D grid with
//!   physical-distance-like, high-variance weights and Θ(√n) diameter —
//!   [`gen::grid_road`] (the DIMACS loader in [`io`] runs the real thing);
//! * `social`: LiveJournal is substituted by a preferential-attachment
//!   power-law graph with low diameter — [`gen::power_law`].

pub mod analysis;
pub mod csr;
pub mod gen;
pub mod io;
pub mod sssp;

pub use csr::{CsrGraph, GraphBuilder};
pub use sssp::{bellman_ford, bfs, delta_stepping, dijkstra, SsspResult};

/// Edge weight type used across the workspace: integer weights keep the
/// concurrent SSSP free of floating-point atomics.
pub type Weight = u64;

/// Distance value meaning "unreached".
pub const INF: Weight = Weight::MAX;
