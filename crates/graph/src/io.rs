//! Loaders for the real datasets the paper evaluates on, so that users with
//! the data can run the exact Section 7 experiments:
//!
//! * [`read_dimacs_gr`] — the DIMACS shortest-path challenge `.gr` format of
//!   the USA road network graph ("USA road network graph with physical
//!   distances as edge lengths");
//! * [`read_snap_edges`] — SNAP whitespace-separated edge lists (the
//!   LiveJournal friendship graph), with uniform random weights attached the
//!   same way the paper does ("uniform random weights between 0 and 100").
//!
//! Writers are provided for round-trip tests and for exporting generated
//! graphs to other tools.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::Weight;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufRead, BufReader, Read, Write as IoWrite};

/// Parse a DIMACS shortest-path `.gr` file:
///
/// ```text
/// c comment lines
/// p sp <num_vertices> <num_edges>
/// a <from> <to> <weight>      (vertices are 1-based)
/// ```
///
/// Arc lines are directed, matching the DIMACS convention (road networks
/// list both directions explicitly).
pub fn read_dimacs_gr<R: Read>(reader: R) -> io::Result<CsrGraph> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let bad = || invalid(lineno, "malformed problem line");
                let sp = parts.next().ok_or_else(bad)?;
                if sp != "sp" {
                    return Err(invalid(lineno, "expected 'p sp <n> <m>'"));
                }
                let n: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let m: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                builder = Some(GraphBuilder::with_capacity(n, m));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| invalid(lineno, "arc before problem line"))?;
                let bad = || invalid(lineno, "malformed arc line");
                let u: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let v: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let w: Weight = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                if u == 0 || v == 0 || u > b.num_vertices() || v > b.num_vertices() {
                    return Err(invalid(lineno, "vertex id out of range (1-based)"));
                }
                b.add_edge(u - 1, v - 1, w);
            }
            _ => return Err(invalid(lineno, "unknown line type")),
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| invalid(0, "missing problem line"))
}

/// Write a graph in DIMACS `.gr` format (1-based vertex ids).
pub fn write_dimacs_gr<W: IoWrite>(g: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "p sp {} {}", g.num_vertices(), g.num_edges())?;
    for (u, v, wt) in g.edges() {
        writeln!(w, "a {} {} {}", u + 1, v + 1, wt)?;
    }
    Ok(())
}

/// Parse a SNAP-style edge list — one `src dst` pair per line, `#` comments —
/// treating edges as undirected (SNAP's LiveJournal lists friendships) and
/// attaching uniform random weights from `weights`, seeded for
/// reproducibility. Vertex ids are 0-based and the graph is sized by the
/// largest id seen.
pub fn read_snap_edges<R: Read>(
    reader: R,
    weights: std::ops::RangeInclusive<Weight>,
    seed: u64,
) -> io::Result<CsrGraph> {
    let reader = BufReader::new(reader);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || invalid(lineno, "malformed edge line");
        let u: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let v: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::with_capacity(max_id + 1, 2 * edges.len());
    for (u, v) in edges {
        let w = rng.gen_range(weights.clone());
        b.add_undirected_edge(u, v, w);
    }
    Ok(b.build())
}

fn invalid(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {msg}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dimacs_roundtrip() {
        let g = gen::random_gnm(50, 200, 1..=100, 1);
        let mut buf = Vec::new();
        write_dimacs_gr(&g, &mut buf).unwrap();
        let g2 = read_dimacs_gr(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_parses_comments_and_blank_lines() {
        let text = "c USA-road-d.NY.gr style\n\np sp 3 2\nc arcs follow\na 1 2 804\na 2 3 402\n";
        let g = read_dimacs_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 804)]);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(read_dimacs_gr("x nonsense".as_bytes()).is_err());
        assert!(
            read_dimacs_gr("a 1 2 3".as_bytes()).is_err(),
            "arc before p"
        );
        assert!(
            read_dimacs_gr("p sp 2 1\na 1 5 3".as_bytes()).is_err(),
            "id range"
        );
        assert!(
            read_dimacs_gr("p sp 2 1\na 0 1 3".as_bytes()).is_err(),
            "0 is not 1-based"
        );
        assert!(read_dimacs_gr("".as_bytes()).is_err(), "empty input");
    }

    #[test]
    fn snap_parses_and_weights_in_range() {
        let text = "# LiveJournal-style\n0\t1\n1\t2\n2\t0\n";
        let g = read_snap_edges(text.as_bytes(), 1..=100, 7).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        for (_, _, w) in g.edges() {
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn snap_deterministic_in_seed() {
        let text = "0 1\n1 2\n";
        let a = read_snap_edges(text.as_bytes(), 1..=100, 5).unwrap();
        let b = read_snap_edges(text.as_bytes(), 1..=100, 5).unwrap();
        assert_eq!(a, b);
    }
}
