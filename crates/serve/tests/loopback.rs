//! End-to-end loopback tests: a real server on an ephemeral socket,
//! real clients over the wire, exact conservation of every request.

use rsched_serve::{
    Backend, Endpoint, RejectCode, Request, Response, ServeClient, ServeConfig, Server, Submit,
    SubmitV2, FEAT_EDF, PROTO_V1, PROTO_V2,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Iteration multiplier for the heavy tests; `RSCHED_STRESS=1` (or a
/// number) raises it in the CI stress job.
fn stress_mult() -> usize {
    match std::env::var("RSCHED_STRESS").as_deref() {
        Ok("0") | Err(_) => 1,
        Ok(v) => v.parse::<usize>().unwrap_or(1).clamp(1, 64) * 4,
    }
}

fn ephemeral(backend: Backend, threads: usize, cap: usize) -> Server {
    Server::start(ServeConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
        backend,
        threads,
        queue_cap: cap,
        seed: 0x00C0_FFEE,
        ..ServeConfig::default()
    })
    .expect("server start")
}

/// Pipeline `n` submits, then drain; assert exactly-once completion
/// per request id and Accepted-before-Completed ordering. Returns
/// (accepted, rejected) as observed on the wire.
fn drive_client(endpoint: &Endpoint, base_id: u64, n: u64, work_ns: u64) -> (u64, u64) {
    let client = ServeClient::connect(endpoint).expect("connect");
    let (mut tx, mut rx) = client.split();
    let sender = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(&Request::Submit(Submit {
                req_id: base_id + i,
                prio: i,
                work_ns,
            }))
            .expect("send submit");
        }
        tx.send(&Request::Drain).expect("send drain");
    });
    let mut accepted = HashSet::new();
    let mut rejected = HashSet::new();
    let mut completed = HashSet::new();
    let mut drained = None;
    while let Some(resp) = rx.recv().expect("recv") {
        match resp {
            Response::Accepted { req_id } => {
                assert!(accepted.insert(req_id), "double Accepted for {req_id}");
            }
            Response::Rejected { req_id, code } => {
                assert_eq!(code, RejectCode::QueueFull);
                assert!(rejected.insert(req_id), "double Rejected for {req_id}");
            }
            Response::Completed(c) => {
                assert!(
                    accepted.contains(&c.req_id),
                    "Completed before Accepted for {}",
                    c.req_id
                );
                assert!(
                    completed.insert(c.req_id),
                    "double Completed for {}",
                    c.req_id
                );
                assert!(
                    c.sojourn_ns >= c.inject_ns,
                    "sojourn shorter than its prefix"
                );
            }
            Response::Drained { completed: c } => {
                drained = Some(c);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    sender.join().unwrap();
    // Exact conservation on this connection: every submit was answered,
    // every accept completed, and the server's drain count agrees.
    assert_eq!(accepted.len() as u64 + rejected.len() as u64, n);
    assert_eq!(completed, accepted);
    assert_eq!(drained, Some(accepted.len() as u64));
    (accepted.len() as u64, rejected.len() as u64)
}

#[test]
fn loopback_conservation_under_concurrent_clients() {
    for backend in Backend::ALL {
        let per_client = (400 * stress_mult()) as u64;
        let clients = 3u64;
        let server = ephemeral(backend, 2, 100_000);
        let endpoint = server.endpoint().clone();
        let accepted_total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for c in 0..clients {
                let endpoint = &endpoint;
                let accepted_total = &accepted_total;
                scope.spawn(move || {
                    let (acc, rej) = drive_client(endpoint, c * 1_000_000, per_client, 1_000);
                    // Capacity is far above the offered load: nothing
                    // should have been rejected.
                    assert_eq!(rej, 0, "spurious rejection (backend {backend:?})");
                    accepted_total.fetch_add(acc, Ordering::Relaxed);
                });
            }
        });
        let report = server.shutdown();
        let expect = clients * per_client;
        assert_eq!(report.submitted, expect, "backend {backend:?}");
        assert_eq!(report.accepted, expect, "backend {backend:?}");
        assert_eq!(report.rejected, 0, "backend {backend:?}");
        assert_eq!(report.completed, expect, "backend {backend:?}");
        assert_eq!(accepted_total.load(Ordering::Relaxed), expect);
        // Quantiles are monotone by construction; spot-check the report.
        assert!(report.sojourn_p50 <= report.sojourn_p99);
        assert!(report.sojourn_p99 <= report.sojourn_p999);
        assert!(report.sojourn_p999 <= report.sojourn_max);
    }
}

#[test]
fn admission_rejects_when_full_and_never_hangs() {
    // One slow worker (1 ms tasks), capacity 4: a fast burst of 200
    // submits must see QueueFull rejections, every frame must still be
    // answered, and the drain must terminate with exact conservation.
    let server = ephemeral(Backend::MqSkiplist, 1, 4);
    let endpoint = server.endpoint().clone();
    let n = 200u64;
    let (accepted, rejected) = drive_client(&endpoint, 0, n, 1_000_000);
    assert!(
        rejected > 0,
        "burst of {n} into cap 4 never tripped admission"
    );
    assert!(accepted >= 4, "admission rejected even with room");
    let report = server.shutdown();
    assert_eq!(report.submitted, n);
    assert_eq!(report.accepted, accepted);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.completed, accepted, "accepted tasks were dropped");
}

#[test]
fn unix_socket_roundtrip() {
    let path = std::env::temp_dir().join(format!("rsched-serve-test-{}.sock", std::process::id()));
    let server = Server::start(ServeConfig {
        endpoint: Endpoint::Unix(path.clone()),
        backend: Backend::DcboSegring,
        threads: 2,
        queue_cap: 1024,
        seed: 7,
        ..ServeConfig::default()
    })
    .expect("unix server start");
    let endpoint = server.endpoint().clone();
    let (accepted, rejected) = drive_client(&endpoint, 0, 300, 10_000);
    assert_eq!((accepted, rejected), (300, 0));
    let report = server.shutdown();
    assert_eq!(report.completed, 300);
    assert!(!path.exists(), "socket file survived shutdown");
}

#[test]
fn ping_and_stats_roundtrip() {
    let server = ephemeral(Backend::MqMutexHeap, 2, 1024);
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    client.send(&Request::Ping { token: 42 }).unwrap();
    assert_eq!(client.recv().unwrap(), Some(Response::Pong { token: 42 }));
    client
        .send(&Request::Submit(Submit {
            req_id: 1,
            prio: 0,
            work_ns: 0,
        }))
        .unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Some(Response::Accepted { req_id: 1 })
    );
    match client.recv().unwrap() {
        Some(Response::Completed(c)) if c.req_id == 1 => {}
        other => panic!("expected Completed, got {other:?}"),
    }
    // Stats after one completion: counters consistent, quantiles set.
    client.send(&Request::Stats).unwrap();
    match client.recv().unwrap() {
        Some(Response::Stats(s)) => {
            assert_eq!(s.submitted, 1);
            assert_eq!(s.accepted, 1);
            assert_eq!(s.rejected, 0);
            assert_eq!(s.completed, 1);
            assert_eq!(s.in_flight, 0);
            assert!(s.sojourn_p50 > 0);
            assert!(s.sojourn_p50 <= s.sojourn_p999);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    client.send(&Request::Drain).unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Some(Response::Drained { completed: 1 })
    );
    assert_eq!(
        client.recv().unwrap(),
        None,
        "connection open after Drained"
    );
    server.shutdown();
}

#[test]
fn metrics_roundtrips_full_telemetry_snapshot_over_the_wire() {
    let threads = 2;
    let server = ephemeral(Backend::MqSkiplist, threads, 1024);
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    // Render some real service so the snapshot has something to say.
    let n = 64u64;
    for i in 0..n {
        client
            .send(&Request::Submit(Submit {
                req_id: i,
                prio: i,
                work_ns: 20_000,
            }))
            .unwrap();
    }
    let mut completed = 0u64;
    while completed < n {
        match client.recv().unwrap() {
            Some(Response::Accepted { .. }) => {}
            Some(Response::Completed(_)) => completed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Workers flush thread-local telemetry when they park; poll until
    // the tick histogram has visibly absorbed our work. Telemetry is
    // process-global, so assertions are ≥, never ==.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let m = loop {
        client.send(&Request::Metrics).unwrap();
        let m = match client.recv().unwrap() {
            Some(Response::Metrics(m)) => m,
            other => panic!("expected Metrics, got {other:?}"),
        };
        if m.telemetry.tick.count >= n {
            break m;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tick count stuck at {} (< {n})",
            m.telemetry.tick.count
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // The full snapshot really crossed the wire: every histogram block
    // carries its complete bucket array and internally-consistent
    // quantiles.
    for hist in [
        &m.telemetry.retry,
        &m.telemetry.steal,
        &m.telemetry.sweep,
        &m.telemetry.floor,
        &m.telemetry.tick,
    ] {
        assert_eq!(hist.buckets.len(), 64, "bucket array truncated in flight");
        assert_eq!(
            hist.buckets.iter().sum::<u64>(),
            hist.count,
            "bucket sum disagrees with count"
        );
        assert!(hist.p50 <= hist.p99 && hist.p99 <= hist.p999);
    }
    assert_eq!(
        m.utilization_permille.len(),
        threads,
        "one gauge per worker"
    );
    assert!(m.utilization_permille.iter().all(|&u| u <= 1000));
    assert_eq!(m.in_flight, 0, "all work completed before the poll");
    // A second poll still decodes: the sampler window reset is not a
    // one-shot.
    client.send(&Request::Metrics).unwrap();
    match client.recv().unwrap() {
        Some(Response::Metrics(m2)) => {
            assert!(m2.telemetry.tick.count >= m.telemetry.tick.count);
        }
        other => panic!("expected second Metrics, got {other:?}"),
    }
    client.send(&Request::Drain).unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Some(Response::Drained { completed: n })
    );
    server.shutdown();
}

#[test]
fn abrupt_disconnect_still_accounts_accepted_work() {
    // A client that vanishes mid-stream must not wedge the server or
    // leak in-flight accounting: every submit the server *decoded* is
    // accepted, completed and balanced. The count decoded may be below
    // what the client wrote — the server's replies to the closed peer
    // draw an RST, and an RST discards frames still queued in the
    // server's receive buffer; TCP offers no delivery guarantee to a
    // vanished client, and neither does the server.
    let server = ephemeral(Backend::MqSkiplist, 2, 1024);
    let n = 100u64;
    {
        let mut client = ServeClient::connect(server.endpoint()).expect("connect");
        for i in 0..n {
            client
                .send(&Request::Submit(Submit {
                    req_id: i,
                    prio: i,
                    work_ns: 50_000,
                }))
                .unwrap();
        }
        // Drop without draining: both halves close.
    }
    // Give the pool a moment to finish the orphaned work.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = ServeClient::connect(server.endpoint()).expect("probe connect");
        probe.send(&Request::Stats).unwrap();
        match probe.recv().unwrap() {
            Some(Response::Stats(s))
                if s.submitted > 0
                    && s.submitted <= n
                    && s.completed == s.accepted
                    && s.in_flight == 0 =>
            {
                break
            }
            Some(Response::Stats(_)) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("orphaned work never drained: {other:?}"),
        }
    }
    let report = server.shutdown();
    assert!(report.submitted > 0 && report.submitted <= n);
    assert_eq!(report.submitted, report.accepted + report.rejected);
    assert_eq!(report.completed, report.accepted);
}

/// v2 analogue of [`drive_client`]: handshake at `PROTO_V2` with
/// `FEAT_EDF`, pipeline `n` relative-deadline submits, then drain.
/// Returns (accepted, rejected, met, missed) as observed on the wire.
fn drive_client_v2(
    endpoint: &Endpoint,
    base_id: u64,
    n: u64,
    work_ns: u64,
    budget_ns: u64,
) -> (u64, u64, u64, u64) {
    let mut client = ServeClient::connect(endpoint).expect("connect");
    let ack = client.handshake(PROTO_V2, FEAT_EDF).expect("handshake");
    assert_eq!(ack.version, PROTO_V2, "server refused to speak v2");
    assert_eq!(ack.features, FEAT_EDF, "EDF not granted at v2");
    let (mut tx, mut rx) = client.split();
    let sender = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(&Request::SubmitV2(SubmitV2 {
                req_id: base_id + i,
                deadline: budget_ns,
                work_ns,
                absolute: false,
            }))
            .expect("send submit v2");
        }
        tx.send(&Request::Drain).expect("send drain");
    });
    let mut accepted = HashSet::new();
    let mut rejected = HashSet::new();
    let mut completed = HashSet::new();
    let (mut met, mut missed) = (0u64, 0u64);
    let mut drained = None;
    while let Some(resp) = rx.recv().expect("recv") {
        match resp {
            Response::Accepted { req_id } => {
                assert!(accepted.insert(req_id), "double Accepted for {req_id}");
            }
            Response::Rejected { req_id, code } => {
                assert_eq!(code, RejectCode::QueueFull);
                assert!(rejected.insert(req_id), "double Rejected for {req_id}");
            }
            Response::CompletedV2(c) => {
                assert!(
                    accepted.contains(&c.req_id),
                    "Completed before Accepted for {}",
                    c.req_id
                );
                assert!(
                    completed.insert(c.req_id),
                    "double Completed for {}",
                    c.req_id
                );
                // The relative budget resolved against the admission
                // stamp: the absolute deadline echoed back must be at
                // least the budget itself.
                assert!(c.deadline_ns >= budget_ns, "deadline resolved backwards");
                assert_eq!(c.met, c.tardiness_ns == 0, "met flag disagrees");
                if c.met {
                    met += 1;
                } else {
                    missed += 1;
                }
            }
            Response::Drained { completed: c } => {
                drained = Some(c);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    sender.join().unwrap();
    assert_eq!(accepted.len() as u64 + rejected.len() as u64, n);
    assert_eq!(completed, accepted);
    assert_eq!(drained, Some(accepted.len() as u64));
    assert_eq!(
        met + missed,
        accepted.len() as u64,
        "a completion had no verdict"
    );
    (accepted.len() as u64, rejected.len() as u64, met, missed)
}

#[test]
fn v2_handshake_negotiates_and_reports_deadline_verdicts() {
    let server = ephemeral(Backend::MqSkiplist, 2, 1024);
    let endpoint = server.endpoint().clone();
    // Clock sanity: the ack carries the server's monotonic reading, and
    // successive handshakes observe it advancing (never backwards).
    let (_c1, ack1) = ServeClient::connect_v2(&endpoint).expect("connect v2");
    let (_c2, ack2) = ServeClient::connect_v2(&endpoint).expect("connect v2");
    assert_eq!(ack1.version, PROTO_V2);
    assert_eq!(ack1.features, FEAT_EDF);
    assert!(
        ack2.server_now_ns >= ack1.server_now_ns,
        "clock ran backwards"
    );
    // A 10 s budget on a loopback microtask is always met; every
    // completion must say so.
    let (acc, rej, met, missed) = drive_client_v2(&endpoint, 0, 200, 1_000, 10_000_000_000);
    assert_eq!((acc, rej), (200, 0));
    assert_eq!((met, missed), (200, 0), "loose budget missed");
    let report = server.shutdown();
    assert_eq!(report.deadline_met, 200);
    assert_eq!(report.deadline_misses, 0);
    assert_eq!(report.miss_permille, 0);
}

#[test]
fn v1_client_negotiates_down_and_interoperates() {
    let server = ephemeral(Backend::MqSkiplist, 2, 1024);
    // A v1 client that *does* handshake gets v1 back and no features.
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    let ack = client.handshake(PROTO_V1, FEAT_EDF).expect("v1 handshake");
    assert_eq!(ack.version, PROTO_V1, "server upgraded a v1 client");
    assert_eq!(ack.features, 0, "features granted below v2");
    drop(client);
    // A v1 client that never says Hello still works verbatim — the
    // whole pre-handshake protocol is the v1 protocol.
    let (acc, rej) = drive_client(server.endpoint(), 0, 100, 1_000);
    assert_eq!((acc, rej), (100, 0));
    let report = server.shutdown();
    assert_eq!(report.completed, 100);
    // v1 traffic carries no deadlines: no verdicts were recorded.
    assert_eq!(report.deadline_met + report.deadline_misses, 0);
}

#[test]
fn unknown_version_hello_is_rejected_and_closed() {
    let server = ephemeral(Backend::MqSkiplist, 1, 64);
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    client
        .send(&Request::Hello(rsched_serve::Hello {
            version: 0,
            features: 0,
        }))
        .unwrap();
    match client.recv().unwrap() {
        Some(Response::Rejected { req_id: 0, code }) => {
            assert_eq!(code, RejectCode::BadVersion);
        }
        other => panic!("expected BadVersion reject, got {other:?}"),
    }
    assert_eq!(
        client.recv().unwrap(),
        None,
        "connection open after bad Hello"
    );
    server.shutdown();
}

#[test]
fn submit_v2_without_handshake_is_rejected_and_closed() {
    let server = ephemeral(Backend::MqSkiplist, 1, 64);
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    client
        .send(&Request::SubmitV2(SubmitV2 {
            req_id: 7,
            deadline: 1_000_000,
            work_ns: 0,
            absolute: false,
        }))
        .unwrap();
    match client.recv().unwrap() {
        Some(Response::Rejected { req_id: 7, code }) => {
            assert_eq!(code, RejectCode::BadVersion);
        }
        other => panic!("expected BadVersion reject, got {other:?}"),
    }
    assert_eq!(
        client.recv().unwrap(),
        None,
        "connection open after v2-on-v1"
    );
    let report = server.shutdown();
    // The protocol error left no trace in admission accounting.
    assert_eq!(report.submitted, 0);
    assert_eq!(report.rejected, 0);
}

#[test]
fn mixed_version_concurrent_clients_conserve() {
    for backend in Backend::ALL {
        let per_client = (300 * stress_mult()) as u64;
        let server = ephemeral(backend, 2, 100_000);
        let endpoint = server.endpoint().clone();
        let v2_verdicts = AtomicU64::new(0);
        std::thread::scope(|scope| {
            // Two v1 clients and two v2-EDF clients share the server.
            for c in 0..2u64 {
                let endpoint = &endpoint;
                scope.spawn(move || {
                    let (acc, rej) = drive_client(endpoint, c * 1_000_000, per_client, 1_000);
                    assert_eq!((acc, rej), (per_client, 0), "v1 client starved");
                });
            }
            for c in 2..4u64 {
                let endpoint = &endpoint;
                let v2_verdicts = &v2_verdicts;
                scope.spawn(move || {
                    let (acc, rej, met, missed) =
                        drive_client_v2(endpoint, c * 1_000_000, per_client, 1_000, 10_000_000_000);
                    assert_eq!((acc, rej), (per_client, 0), "v2 client starved");
                    v2_verdicts.fetch_add(met + missed, Ordering::Relaxed);
                });
            }
        });
        let report = server.shutdown();
        let expect = 4 * per_client;
        assert_eq!(report.submitted, expect, "backend {backend:?}");
        assert_eq!(report.completed, expect, "backend {backend:?}");
        // Exactly the v2 half carried deadlines; v1 completions record
        // no verdict.
        assert_eq!(
            report.deadline_met + report.deadline_misses,
            2 * per_client,
            "backend {backend:?}"
        );
        assert_eq!(v2_verdicts.load(Ordering::Relaxed), 2 * per_client);
    }
}

#[test]
fn rejection_is_side_effect_free_for_deadline_accounting() {
    // A v2 burst into a cap-4 queue with slow (1 ms) work draws
    // rejections. Rejected submits must leave no trace in the deadline
    // ledger: verdicts are recorded at completion only, so
    // met + missed == completed == accepted exactly.
    let server = ephemeral(Backend::MqSkiplist, 1, 4);
    let n = 200u64;
    let (accepted, rejected, met, missed) =
        drive_client_v2(server.endpoint(), 0, n, 1_000_000, 5_000_000);
    assert!(
        rejected > 0,
        "burst of {n} into cap 4 never tripped admission"
    );
    let report = server.shutdown();
    assert_eq!(report.accepted, accepted);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.completed, accepted);
    assert_eq!(
        report.deadline_met + report.deadline_misses,
        accepted,
        "rejected submits leaked into the deadline ledger"
    );
    assert_eq!((report.deadline_met, report.deadline_misses), (met, missed));
}
