//! End-to-end loopback tests: a real server on an ephemeral socket,
//! real clients over the wire, exact conservation of every request.

use rsched_serve::{
    Backend, Endpoint, RejectCode, Request, Response, ServeClient, ServeConfig, Server,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Iteration multiplier for the heavy tests; `RSCHED_STRESS=1` (or a
/// number) raises it in the CI stress job.
fn stress_mult() -> usize {
    match std::env::var("RSCHED_STRESS").as_deref() {
        Ok("0") | Err(_) => 1,
        Ok(v) => v.parse::<usize>().unwrap_or(1).clamp(1, 64) * 4,
    }
}

fn ephemeral(backend: Backend, threads: usize, cap: usize) -> Server {
    Server::start(ServeConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
        backend,
        threads,
        queue_cap: cap,
        seed: 0x00C0_FFEE,
    })
    .expect("server start")
}

/// Pipeline `n` submits, then drain; assert exactly-once completion
/// per request id and Accepted-before-Completed ordering. Returns
/// (accepted, rejected) as observed on the wire.
fn drive_client(endpoint: &Endpoint, base_id: u64, n: u64, work_ns: u64) -> (u64, u64) {
    let client = ServeClient::connect(endpoint).expect("connect");
    let (mut tx, mut rx) = client.split();
    let sender = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(&Request::Submit {
                req_id: base_id + i,
                prio: i,
                work_ns,
            })
            .expect("send submit");
        }
        tx.send(&Request::Drain).expect("send drain");
    });
    let mut accepted = HashSet::new();
    let mut rejected = HashSet::new();
    let mut completed = HashSet::new();
    let mut drained = None;
    while let Some(resp) = rx.recv().expect("recv") {
        match resp {
            Response::Accepted { req_id } => {
                assert!(accepted.insert(req_id), "double Accepted for {req_id}");
            }
            Response::Rejected { req_id, code } => {
                assert_eq!(code, RejectCode::QueueFull);
                assert!(rejected.insert(req_id), "double Rejected for {req_id}");
            }
            Response::Completed {
                req_id,
                sojourn_ns,
                inject_ns,
            } => {
                assert!(
                    accepted.contains(&req_id),
                    "Completed before Accepted for {req_id}"
                );
                assert!(completed.insert(req_id), "double Completed for {req_id}");
                assert!(sojourn_ns >= inject_ns, "sojourn shorter than its prefix");
            }
            Response::Drained { completed: c } => {
                drained = Some(c);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    sender.join().unwrap();
    // Exact conservation on this connection: every submit was answered,
    // every accept completed, and the server's drain count agrees.
    assert_eq!(accepted.len() as u64 + rejected.len() as u64, n);
    assert_eq!(completed, accepted);
    assert_eq!(drained, Some(accepted.len() as u64));
    (accepted.len() as u64, rejected.len() as u64)
}

#[test]
fn loopback_conservation_under_concurrent_clients() {
    for backend in Backend::ALL {
        let per_client = (400 * stress_mult()) as u64;
        let clients = 3u64;
        let server = ephemeral(backend, 2, 100_000);
        let endpoint = server.endpoint().clone();
        let accepted_total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for c in 0..clients {
                let endpoint = &endpoint;
                let accepted_total = &accepted_total;
                scope.spawn(move || {
                    let (acc, rej) = drive_client(endpoint, c * 1_000_000, per_client, 1_000);
                    // Capacity is far above the offered load: nothing
                    // should have been rejected.
                    assert_eq!(rej, 0, "spurious rejection (backend {backend:?})");
                    accepted_total.fetch_add(acc, Ordering::Relaxed);
                });
            }
        });
        let report = server.shutdown();
        let expect = clients * per_client;
        assert_eq!(report.submitted, expect, "backend {backend:?}");
        assert_eq!(report.accepted, expect, "backend {backend:?}");
        assert_eq!(report.rejected, 0, "backend {backend:?}");
        assert_eq!(report.completed, expect, "backend {backend:?}");
        assert_eq!(accepted_total.load(Ordering::Relaxed), expect);
        // Quantiles are monotone by construction; spot-check the report.
        assert!(report.sojourn_p50 <= report.sojourn_p99);
        assert!(report.sojourn_p99 <= report.sojourn_p999);
        assert!(report.sojourn_p999 <= report.sojourn_max);
    }
}

#[test]
fn admission_rejects_when_full_and_never_hangs() {
    // One slow worker (1 ms tasks), capacity 4: a fast burst of 200
    // submits must see QueueFull rejections, every frame must still be
    // answered, and the drain must terminate with exact conservation.
    let server = ephemeral(Backend::MqSkiplist, 1, 4);
    let endpoint = server.endpoint().clone();
    let n = 200u64;
    let (accepted, rejected) = drive_client(&endpoint, 0, n, 1_000_000);
    assert!(
        rejected > 0,
        "burst of {n} into cap 4 never tripped admission"
    );
    assert!(accepted >= 4, "admission rejected even with room");
    let report = server.shutdown();
    assert_eq!(report.submitted, n);
    assert_eq!(report.accepted, accepted);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.completed, accepted, "accepted tasks were dropped");
}

#[test]
fn unix_socket_roundtrip() {
    let path = std::env::temp_dir().join(format!("rsched-serve-test-{}.sock", std::process::id()));
    let server = Server::start(ServeConfig {
        endpoint: Endpoint::Unix(path.clone()),
        backend: Backend::DcboSegring,
        threads: 2,
        queue_cap: 1024,
        seed: 7,
    })
    .expect("unix server start");
    let endpoint = server.endpoint().clone();
    let (accepted, rejected) = drive_client(&endpoint, 0, 300, 10_000);
    assert_eq!((accepted, rejected), (300, 0));
    let report = server.shutdown();
    assert_eq!(report.completed, 300);
    assert!(!path.exists(), "socket file survived shutdown");
}

#[test]
fn ping_and_stats_roundtrip() {
    let server = ephemeral(Backend::MqMutexHeap, 2, 1024);
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    client.send(&Request::Ping { token: 42 }).unwrap();
    assert_eq!(client.recv().unwrap(), Some(Response::Pong { token: 42 }));
    client
        .send(&Request::Submit {
            req_id: 1,
            prio: 0,
            work_ns: 0,
        })
        .unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Some(Response::Accepted { req_id: 1 })
    );
    match client.recv().unwrap() {
        Some(Response::Completed { req_id: 1, .. }) => {}
        other => panic!("expected Completed, got {other:?}"),
    }
    // Stats after one completion: counters consistent, quantiles set.
    client.send(&Request::Stats).unwrap();
    match client.recv().unwrap() {
        Some(Response::Stats(s)) => {
            assert_eq!(s.submitted, 1);
            assert_eq!(s.accepted, 1);
            assert_eq!(s.rejected, 0);
            assert_eq!(s.completed, 1);
            assert_eq!(s.in_flight, 0);
            assert!(s.sojourn_p50 > 0);
            assert!(s.sojourn_p50 <= s.sojourn_p999);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    client.send(&Request::Drain).unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Some(Response::Drained { completed: 1 })
    );
    assert_eq!(
        client.recv().unwrap(),
        None,
        "connection open after Drained"
    );
    server.shutdown();
}

#[test]
fn metrics_roundtrips_full_telemetry_snapshot_over_the_wire() {
    let threads = 2;
    let server = ephemeral(Backend::MqSkiplist, threads, 1024);
    let mut client = ServeClient::connect(server.endpoint()).expect("connect");
    // Render some real service so the snapshot has something to say.
    let n = 64u64;
    for i in 0..n {
        client
            .send(&Request::Submit {
                req_id: i,
                prio: i,
                work_ns: 20_000,
            })
            .unwrap();
    }
    let mut completed = 0u64;
    while completed < n {
        match client.recv().unwrap() {
            Some(Response::Accepted { .. }) => {}
            Some(Response::Completed { .. }) => completed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Workers flush thread-local telemetry when they park; poll until
    // the tick histogram has visibly absorbed our work. Telemetry is
    // process-global, so assertions are ≥, never ==.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let m = loop {
        client.send(&Request::Metrics).unwrap();
        let m = match client.recv().unwrap() {
            Some(Response::Metrics(m)) => m,
            other => panic!("expected Metrics, got {other:?}"),
        };
        if m.telemetry.tick.count >= n {
            break m;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tick count stuck at {} (< {n})",
            m.telemetry.tick.count
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // The full snapshot really crossed the wire: every histogram block
    // carries its complete bucket array and internally-consistent
    // quantiles.
    for hist in [
        &m.telemetry.retry,
        &m.telemetry.steal,
        &m.telemetry.sweep,
        &m.telemetry.floor,
        &m.telemetry.tick,
    ] {
        assert_eq!(hist.buckets.len(), 64, "bucket array truncated in flight");
        assert_eq!(
            hist.buckets.iter().sum::<u64>(),
            hist.count,
            "bucket sum disagrees with count"
        );
        assert!(hist.p50 <= hist.p99 && hist.p99 <= hist.p999);
    }
    assert_eq!(
        m.utilization_permille.len(),
        threads,
        "one gauge per worker"
    );
    assert!(m.utilization_permille.iter().all(|&u| u <= 1000));
    assert_eq!(m.in_flight, 0, "all work completed before the poll");
    // A second poll still decodes: the sampler window reset is not a
    // one-shot.
    client.send(&Request::Metrics).unwrap();
    match client.recv().unwrap() {
        Some(Response::Metrics(m2)) => {
            assert!(m2.telemetry.tick.count >= m.telemetry.tick.count);
        }
        other => panic!("expected second Metrics, got {other:?}"),
    }
    client.send(&Request::Drain).unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Some(Response::Drained { completed: n })
    );
    server.shutdown();
}

#[test]
fn abrupt_disconnect_still_accounts_accepted_work() {
    // A client that vanishes mid-stream must not wedge the server or
    // leak in-flight accounting: every submit the server *decoded* is
    // accepted, completed and balanced. The count decoded may be below
    // what the client wrote — the server's replies to the closed peer
    // draw an RST, and an RST discards frames still queued in the
    // server's receive buffer; TCP offers no delivery guarantee to a
    // vanished client, and neither does the server.
    let server = ephemeral(Backend::MqSkiplist, 2, 1024);
    let n = 100u64;
    {
        let mut client = ServeClient::connect(server.endpoint()).expect("connect");
        for i in 0..n {
            client
                .send(&Request::Submit {
                    req_id: i,
                    prio: i,
                    work_ns: 50_000,
                })
                .unwrap();
        }
        // Drop without draining: both halves close.
    }
    // Give the pool a moment to finish the orphaned work.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = ServeClient::connect(server.endpoint()).expect("probe connect");
        probe.send(&Request::Stats).unwrap();
        match probe.recv().unwrap() {
            Some(Response::Stats(s))
                if s.submitted > 0
                    && s.submitted <= n
                    && s.completed == s.accepted
                    && s.in_flight == 0 =>
            {
                break
            }
            Some(Response::Stats(_)) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("orphaned work never drained: {other:?}"),
        }
    }
    let report = server.shutdown();
    assert!(report.submitted > 0 && report.submitted <= n);
    assert_eq!(report.submitted, report.accepted + report.rejected);
    assert_eq!(report.completed, report.accepted);
}
