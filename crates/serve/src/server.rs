//! The serving front-end: listener, per-connection state machines,
//! admission control and request-lifecycle stamping.
//!
//! # Anatomy of a request
//!
//! ```text
//!  client ──Submit──▶ reader thread ──inject──▶ service pool ──▶ worker
//!                        │  ▲                                      │
//!                        │  └── admission (bounded in_flight) ──┐  │
//!                        ▼                                      │  ▼
//!  client ◀─frames── writer thread ◀──Accepted/Rejected─────────┘
//!                        ▲
//!                        └────── Completed (from the worker) ──────┘
//! ```
//!
//! Each connection runs **two** threads: a *reader* that decodes
//! frames, runs admission and injects accepted tasks through its own
//! [`Injector`](rsched_runtime::Injector) session, and a *writer* that
//! owns the write half and serialises every response — so the worker
//! that completes a task never touches the socket racily; it just sends
//! the [`Response::Completed`] through the connection's channel.
//!
//! Three timestamps bound each request's life, all measured by one
//! server-side clock so the sojourn is free of client/server skew:
//! *submit* (frame decoded), *inject* (pushed into the scheduler) and
//! *complete* (handler finished). `sojourn = complete - submit` and its
//! `inject - submit` prefix land in lock-free [`PowHistogram`]s, which
//! is what makes per-request latency first-class: quantiles come from
//! the same log₂-bucket machinery the rest of the repo's telemetry
//! uses, at one relaxed `fetch_add` per observation.
//!
//! # Admission control
//!
//! `in_flight` is bounded by `queue_cap`: a Submit that would exceed it
//! is answered [`RejectCode::QueueFull`] *without creating a task* —
//! reject-with-code backpressure instead of unbounded queueing, so an
//! overloaded server degrades to a fast, explicit reject path and the
//! sojourn histogram keeps describing *accepted* work. The bound also
//! caps the pending-request slab, whose slot index doubles as the task
//! payload injected into the scheduler.
//!
//! # Drain and shutdown
//!
//! A client's [`Request::Drain`] stops the reader; the writer counts
//! `Accepted` vs `Completed` frames it has relayed and, once they
//! balance, emits [`Response::Drained`] and closes — every accepted
//! task is accounted for. [`Server::shutdown`] does the server-wide
//! version: stop the acceptor, unblock and join every connection, then
//! gracefully drain the worker pool ([`ServiceHandle::join`]), and
//! report final conservation counters.
//!
//! # Deadlines and the EDF timebase
//!
//! Every scheduling key is a nanosecond reading of **one** monotonic
//! clock, the server's epoch ([`Shared::now_ns`]):
//!
//! - a v1 [`Request::Submit`] (and a v2 submit on a connection that
//!   was not granted [`FEAT_EDF`]) is keyed by its *arrival* stamp —
//!   semantically "the deadline is now", so the relaxed queues
//!   approximate FIFO;
//! - a v2 [`Request::SubmitV2`] on an EDF connection is keyed by its
//!   *absolute deadline* (a relative budget is resolved against the
//!   same clock at admission, saturating on overflow).
//!
//! Because both kinds of key live on the same axis, mixed-version
//! traffic coexists in one queue coherently: an arrival-stamped task
//! is simply a task whose deadline already passed, and EDF tasks with
//! slack yield to it. Deadline metadata rides the pending slab to the
//! completing worker, which records the met/missed verdict and the
//! tardiness histogram, and answers v2 submits with
//! [`Response::CompletedV2`].
//!
//! The scheduling key is stamped **after** admission succeeds: a
//! rejected Submit touches nothing but the `submitted`/`rejected`
//! counters — no clock reads, no slab slot, no histogram, no deadline
//! accounting — so reject paths are side-effect-free and an overloaded
//! server's miss-rate describes *accepted* work only.

use crate::codec::{
    decode_request, read_frame, write_response, Completed, CompletedV2, HelloAck, MetricsReply,
    RejectCode, Request, Response, StatsReply, FEAT_EDF, PROTO_V1, PROTO_V2,
};
use rsched_queues::telemetry::{self, HistSnapshot, PowHistogram};
use rsched_queues::trace::{self, EventKind};
use rsched_queues::{MutexHeapSub, QueueBuilder, SkipShard};
use rsched_runtime::pool::Scheduler;
use rsched_runtime::{service, PoolStats, RuntimeConfig, ServiceHandle, TaskOutcome};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a blocked reader wakes to check the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Where the server listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `tcp:HOST:PORT` (or bare `HOST:PORT`). Port 0 binds ephemeral.
    Tcp(String),
    /// `unix:/path/to.sock`; the file is replaced on bind and removed
    /// on shutdown.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse `tcp:host:port`, bare `host:port`, or `unix:/path`.
    pub fn parse(s: &str) -> io::Result<Self> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.contains(':') {
            Ok(Endpoint::Tcp(s.to_string()))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("endpoint {s:?} is neither tcp:host:port nor unix:/path"),
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Which scheduler the pool runs on. The serving layer is generic over
/// [`Scheduler`]; these are the monomorphisations the binary exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// `ConcurrentMultiQueue` over lock-free skiplist shards (`mq`).
    MqSkiplist,
    /// `ConcurrentMultiQueue` over mutex-heap shards (`mq-mutex`).
    MqMutexHeap,
    /// `DCboQueue` relaxed FIFO over segmented rings (`dcbo`).
    DcboSegring,
    /// `BucketFifoQueue` Δ-bucket hybrid (`bucket`): deadline keys land
    /// in Δ-wide buckets ([`ServeConfig::delta_ns`]), FIFO within.
    Bucket,
}

impl Backend {
    /// The wire/env name (`mq`, `mq-mutex`, `dcbo`, `bucket`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::MqSkiplist => "mq",
            Backend::MqMutexHeap => "mq-mutex",
            Backend::DcboSegring => "dcbo",
            Backend::Bucket => "bucket",
        }
    }

    /// Every backend, in the order benches sweep them.
    pub const ALL: [Backend; 4] = [
        Backend::MqSkiplist,
        Backend::MqMutexHeap,
        Backend::DcboSegring,
        Backend::Bucket,
    ];
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mq" => Ok(Backend::MqSkiplist),
            "mq-mutex" => Ok(Backend::MqMutexHeap),
            "dcbo" => Ok(Backend::DcboSegring),
            "bucket" => Ok(Backend::Bucket),
            other => Err(format!(
                "unknown backend {other:?} (expected mq, mq-mutex, dcbo or bucket)"
            )),
        }
    }
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address.
    pub endpoint: Endpoint,
    /// Scheduler backend for the worker pool.
    pub backend: Backend,
    /// Worker threads.
    pub threads: usize,
    /// Admission bound: maximum tasks queued-or-running before Submits
    /// are rejected with [`RejectCode::QueueFull`].
    pub queue_cap: usize,
    /// Pool RNG seed (shard picking, stealing).
    pub seed: u64,
    /// Bucket width for [`Backend::Bucket`], in deadline-nanoseconds.
    /// The default 1 ms gives the Δ-bucket directory roughly 17 minutes
    /// of deadline horizon before keys clamp into the last bucket —
    /// ample for a serving run; ignored by the other backends.
    pub delta_ns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            endpoint: Endpoint::Tcp("127.0.0.1:7411".into()),
            backend: Backend::MqSkiplist,
            threads: 2,
            queue_cap: 4096,
            seed: 0x5EED_5EED,
            delta_ns: 1_000_000,
        }
    }
}

/// One in-flight request: everything the completing worker needs to
/// stamp, reply and account. Lives in the [`Slab`]; its slot index is
/// the `usize` payload the scheduler carries.
struct Pending {
    req_id: u64,
    /// The owning connection's writer channel.
    reply: Sender<WriterMsg>,
    submitted_at: Instant,
    /// submit→inject prefix, stamped by the reader just before inject.
    inject_ns: u64,
    /// Synthetic service time the worker busy-spins.
    work_ns: u64,
    /// Absolute deadline on the server epoch clock; `None` for v1
    /// submits, which carry no deadline contract.
    deadline_ns: Option<u64>,
    /// Reply with [`Response::CompletedV2`] (the submit was a v2 frame).
    v2: bool,
}

/// Fixed-capacity slot map for [`Pending`]. Capacity equals the
/// admission bound, and slots are freed *before* `in_flight` is
/// decremented while allocation happens *after* it is incremented — so
/// occupancy never exceeds `in_flight` and allocation cannot fail while
/// admission holds. `None` on alloc is therefore treated as QueueFull,
/// never grown past the bound.
struct Slab {
    slots: Vec<Option<Pending>>,
    free: Vec<usize>,
}

impl Slab {
    fn with_capacity(cap: usize) -> Self {
        Self {
            slots: (0..cap).map(|_| None).collect(),
            free: (0..cap).rev().collect(),
        }
    }

    fn alloc(&mut self, p: Pending) -> Option<usize> {
        let slot = self.free.pop()?;
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(p);
        Some(slot)
    }

    fn take(&mut self, slot: usize) -> Pending {
        let p = self.slots[slot].take().expect("completing an empty slot");
        self.free.push(slot);
        p
    }
}

/// State shared by every connection thread, the pool handler and the
/// stats path. Deliberately non-generic: only the pool and the
/// injectors know the backend type.
struct Shared {
    stop: AtomicBool,
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    /// Tasks queued or running; the admission gate.
    in_flight: AtomicU64,
    /// The server's timebase origin: every scheduling key and deadline
    /// is nanoseconds since this instant (see the module docs).
    epoch: Instant,
    queue_cap: usize,
    /// Deadline completions that finished at or before their deadline.
    deadline_met: AtomicU64,
    /// Deadline completions that finished after their deadline.
    deadline_missed: AtomicU64,
    /// submit→complete, ns.
    sojourn: PowHistogram,
    /// submit→inject, ns.
    inject: PowHistogram,
    /// complete−deadline lateness, ns (0 recorded when met), over every
    /// deadline completion — so quantiles describe the whole
    /// deadline-bearing population, not just the misses.
    tardiness: PowHistogram,
    pending: Mutex<Slab>,
    /// Cumulative handler busy time per worker tid, ns — the raw feed
    /// for the utilization gauges in [`Response::Metrics`]. One relaxed
    /// `fetch_add` per completed task.
    busy_ns: Vec<AtomicU64>,
    /// Last Metrics poll: wall instant + the `busy_ns` values it saw.
    /// Utilization is the busy delta over the wall delta *since the
    /// previous poll*, so repeated polls behave like `top`, not like a
    /// lifetime average.
    last_poll: Mutex<(Instant, Vec<u64>)>,
}

impl Shared {
    fn new(queue_cap: usize, threads: usize) -> Self {
        Self {
            stop: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            epoch: Instant::now(),
            queue_cap,
            deadline_met: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            sojourn: PowHistogram::new(),
            inject: PowHistogram::new(),
            tardiness: PowHistogram::new(),
            pending: Mutex::new(Slab::with_capacity(queue_cap)),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            last_poll: Mutex::new((Instant::now(), vec![0; threads])),
        }
    }

    /// Nanoseconds since the server epoch — the one clock every
    /// scheduling key and deadline lives on.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn stats(&self) -> StatsReply {
        let met = self.deadline_met.load(Ordering::Relaxed);
        let missed = self.deadline_missed.load(Ordering::Relaxed);
        StatsReply {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            sojourn_p50: self.sojourn.quantile(0.50),
            sojourn_p99: self.sojourn.quantile(0.99),
            sojourn_p999: self.sojourn.quantile(0.999),
            sojourn_max: self.sojourn.max_observed(),
            inject_p99: self.inject.quantile(0.99),
            deadline_met: met,
            deadline_misses: missed,
            miss_permille: miss_permille(met, missed),
            tardiness_p99: self.tardiness.quantile(0.99),
            tardiness_p999: self.tardiness.quantile(0.999),
        }
    }

    /// Build a [`Response::Metrics`] payload: the process-cumulative
    /// telemetry snapshot (non-resetting [`telemetry::capture`], so a
    /// live poll never perturbs what a later drain reports) plus gauges
    /// sampled here — in-flight now, and per-worker busy permille since
    /// the previous poll.
    fn metrics(&self) -> MetricsReply {
        let now = Instant::now();
        let busy: Vec<u64> = self
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mut last = self.last_poll.lock().expect("metrics poll state poisoned");
        let wall_ns = now.duration_since(last.0).as_nanos() as u64;
        let utilization_permille = busy
            .iter()
            .zip(last.1.iter())
            .map(|(cur, prev)| {
                // Saturate at 1000: spin timing can overshoot the
                // wall window by scheduling jitter.
                cur.saturating_sub(*prev)
                    .saturating_mul(1000)
                    .checked_div(wall_ns)
                    .map_or(0, |v| v.min(1000))
            })
            .collect();
        *last = (now, busy);
        drop(last);
        let met = self.deadline_met.load(Ordering::Relaxed);
        let missed = self.deadline_missed.load(Ordering::Relaxed);
        MetricsReply {
            telemetry: telemetry::capture(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            utilization_permille,
            tardiness: HistSnapshot::of(&self.tardiness),
            deadline_met: met,
            deadline_misses: missed,
            miss_permille: miss_permille(met, missed),
        }
    }
}

/// Misses per thousand deadline completions; 0 when nothing carried a
/// deadline yet.
fn miss_permille(met: u64, missed: u64) -> u64 {
    match met + missed {
        0 => 0,
        total => missed * 1000 / total,
    }
}

/// Busy-spin for `ns` nanoseconds — the synthetic service time. A spin
/// (not a sleep) because a real task *occupies its worker*; sleeping
/// would let the pool overlap service times the model says are serial.
pub fn spin_work(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let dur = Duration::from_nanos(ns);
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

/// Complete the task in `slot`: run its synthetic work, stamp the
/// sojourn, record the deadline verdict, reply and release the
/// admission unit. `run_work` is false only on the
/// inject-raced-shutdown fallback, where the promise to the client must
/// still be kept but no service is rendered.
fn complete_task(shared: &Shared, slot: usize, run_work: bool) {
    let p = shared
        .pending
        .lock()
        .expect("pending slab poisoned")
        .take(slot);
    if run_work {
        spin_work(p.work_ns);
    }
    let sojourn_ns = p.submitted_at.elapsed().as_nanos() as u64;
    shared.sojourn.record(sojourn_ns);
    shared.inject.record(p.inject_ns);
    // Deadline verdict before the counters flip: tardiness is measured
    // at the moment service finished, met iff lateness is zero. A met
    // deadline still records (a zero) so the tardiness quantiles
    // describe every deadline completion.
    let verdict = p.deadline_ns.map(|deadline_ns| {
        let tardiness_ns = shared.now_ns().saturating_sub(deadline_ns);
        if tardiness_ns == 0 {
            shared.deadline_met.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.deadline_missed.fetch_add(1, Ordering::Relaxed);
        }
        shared.tardiness.record(tardiness_ns);
        (deadline_ns, tardiness_ns)
    });
    shared.completed.fetch_add(1, Ordering::Relaxed);
    // Release the admission unit after the slab slot is freed (that
    // ordering is what bounds the slab, see [`Slab`]) but *before* the
    // completion is sent: a client that has received its Completed must
    // never observe the request still in flight on a subsequent
    // Stats/Metrics poll.
    shared.in_flight.fetch_sub(1, Ordering::Release);
    let resp = if p.v2 {
        let (deadline_ns, tardiness_ns) = verdict.unwrap_or((0, 0));
        Response::CompletedV2(CompletedV2 {
            req_id: p.req_id,
            sojourn_ns,
            inject_ns: p.inject_ns,
            deadline_ns,
            tardiness_ns,
            met: tardiness_ns == 0,
        })
    } else {
        Response::Completed(Completed {
            req_id: p.req_id,
            sojourn_ns,
            inject_ns: p.inject_ns,
        })
    };
    // The writer may already be gone (client vanished); the task is
    // still accounted, only the notification is lost.
    let _ = p.reply.send(WriterMsg::Resp(resp));
}

/// Messages into a connection's writer thread.
enum WriterMsg {
    Resp(Response),
    /// Negotiation result: write the ack, then encode every subsequent
    /// frame at the negotiated version. Routing the version flip
    /// through the writer's own channel makes it race-free — the flip
    /// is ordered against the response stream, no atomics needed.
    Hello(HelloAck),
    /// The reader saw [`Request::Drain`]: finish relaying outstanding
    /// completions, then send [`Response::Drained`] and close.
    DrainRequested,
    /// Server-wide stop: close now, dropping unsent completions.
    Close,
}

/// A stream of either family, so connection code is family-agnostic.
enum ConnStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl ConnStream {
    fn try_clone(&self) -> io::Result<ConnStream> {
        Ok(match self {
            ConnStream::Tcp(s) => ConnStream::Tcp(s.try_clone()?),
            ConnStream::Unix(s) => ConnStream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            ConnStream::Tcp(s) => s.set_read_timeout(d),
            ConnStream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            ConnStream::Tcp(s) => s.shutdown(Shutdown::Both),
            ConnStream::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            ConnStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            ConnStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnStream::Tcp(s) => s.flush(),
            ConnStream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Unix(path) => {
                // A previous run's socket file would fail the bind.
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The bound address — resolves an ephemeral TCP port 0.
    fn endpoint(&self) -> io::Result<Endpoint> {
        Ok(match self {
            Listener::Tcp(l) => Endpoint::Tcp(l.local_addr()?.to_string()),
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
        })
    }

    fn accept(&self) -> io::Result<ConnStream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(ConnStream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(ConnStream::Unix(s))
            }
        }
    }
}

/// Connections the acceptor has spawned, so shutdown can unblock and
/// join them.
#[derive(Default)]
struct ConnRegistry {
    streams: Vec<ConnStream>,
    joins: Vec<JoinHandle<()>>,
}

/// Final accounting from [`Server::shutdown`]. All counters are
/// server-lifetime totals; conservation (`submitted == accepted +
/// rejected`, `completed == accepted`) holds after a graceful drain.
pub struct ServerReport {
    /// Submits decoded.
    pub submitted: u64,
    /// Submits past admission (each produced exactly one task).
    pub accepted: u64,
    /// Submits refused with a reject code.
    pub rejected: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Sojourn quantiles, ns (log₂-bucket upper bounds).
    pub sojourn_p50: u64,
    /// 99th percentile sojourn, ns.
    pub sojourn_p99: u64,
    /// 99.9th percentile sojourn, ns.
    pub sojourn_p999: u64,
    /// Largest sojourn bucket, ns.
    pub sojourn_max: u64,
    /// 99th percentile submit→inject prefix, ns.
    pub inject_p99: u64,
    /// Deadline completions that met their deadline.
    pub deadline_met: u64,
    /// Deadline completions that missed.
    pub deadline_misses: u64,
    /// Misses per thousand deadline completions.
    pub miss_permille: u64,
    /// 99th percentile tardiness over deadline completions, ns.
    pub tardiness_p99: u64,
    /// Worker-pool statistics from the drain.
    pub pool: PoolStats,
}

/// A running serving front-end. Dropping without
/// [`shutdown`](Self::shutdown) leaks the worker threads; the binary
/// and every test shut down explicitly.
pub struct Server {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<ConnRegistry>>,
    /// Type-erased pool drain (the only place the backend type
    /// survives past [`Server::start`]).
    finish: Option<Box<dyn FnOnce() -> PoolStats + Send>>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Bind, start the worker pool and the acceptor. Returns once the
    /// listener is live (an ephemeral TCP port is resolved in
    /// [`endpoint`](Self::endpoint)).
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let shards = (2 * cfg.threads).max(2);
        let builder = QueueBuilder::new(shards)
            .universe(cfg.queue_cap)
            .seed(cfg.seed)
            .delta(cfg.delta_ns.max(1));
        match cfg.backend {
            Backend::MqSkiplist => Server::start_with(
                Arc::new(builder.multiqueue_on::<u64, SkipShard<u64>>()),
                cfg,
            ),
            Backend::MqMutexHeap => Server::start_with(
                Arc::new(builder.multiqueue_on::<u64, MutexHeapSub<u64>>()),
                cfg,
            ),
            Backend::DcboSegring => {
                Server::start_with(Arc::new(builder.d_cbo::<(usize, u64)>()), cfg)
            }
            Backend::Bucket => Server::start_with(Arc::new(builder.bucket_fifo()), cfg),
        }
    }

    fn start_with<S>(queue: Arc<S>, cfg: ServeConfig) -> io::Result<Server>
    where
        S: Scheduler<u64> + Send + Sync + 'static,
    {
        let listener = Listener::bind(&cfg.endpoint)?;
        let endpoint = listener.endpoint()?;
        let unix_path = match &endpoint {
            Endpoint::Unix(p) => Some(p.clone()),
            Endpoint::Tcp(_) => None,
        };
        let shared = Arc::new(Shared::new(cfg.queue_cap, cfg.threads));
        let handle = {
            let shared = Arc::clone(&shared);
            Arc::new(service(
                queue,
                RuntimeConfig {
                    threads: cfg.threads,
                    seed: cfg.seed,
                    ..RuntimeConfig::default()
                },
                move |w, slot, _| {
                    let started = Instant::now();
                    complete_task(&shared, slot, true);
                    shared.busy_ns[w.tid]
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    TaskOutcome::Executed
                },
            ))
        };
        let conns: Arc<Mutex<ConnRegistry>> = Arc::default();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let handle = Arc::clone(&handle);
            std::thread::Builder::new()
                .name("rsched-serve-acceptor".into())
                .spawn(move || acceptor_loop(listener, shared, conns, handle))
                .expect("spawning acceptor")
        };
        let finish: Box<dyn FnOnce() -> PoolStats + Send> = Box::new(move || {
            Arc::try_unwrap(handle)
                .unwrap_or_else(|_| panic!("service handle still shared at drain"))
                .join()
        });
        Ok(Server {
            shared,
            endpoint,
            acceptor: Some(acceptor),
            conns,
            finish: Some(finish),
            unix_path,
        })
    }

    /// The bound address (ephemeral ports resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stop accepting, close every connection, drain the pool, report.
    pub fn shutdown(mut self) -> ServerReport {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection; it checks
        // the stop flag after every accept.
        match &self.endpoint {
            Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
            Endpoint::Unix(path) => drop(UnixStream::connect(path)),
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Unblock any reader parked in a read and join the connection
        // threads; their writers get a Close from the reader side.
        let registry = {
            let mut guard = self.conns.lock().expect("conn registry poisoned");
            std::mem::take(&mut *guard)
        };
        for s in &registry.streams {
            s.shutdown_both();
        }
        for j in registry.joins {
            let _ = j.join();
        }
        // Graceful drain: every injected task completes before join
        // returns, so the conservation counters below are final.
        let pool = (self.finish.take().expect("shutdown called twice"))();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        let s = self.shared.stats();
        ServerReport {
            submitted: s.submitted,
            accepted: s.accepted,
            rejected: s.rejected,
            completed: s.completed,
            sojourn_p50: s.sojourn_p50,
            sojourn_p99: s.sojourn_p99,
            sojourn_p999: s.sojourn_p999,
            sojourn_max: s.sojourn_max,
            inject_p99: s.inject_p99,
            deadline_met: s.deadline_met,
            deadline_misses: s.deadline_misses,
            miss_permille: s.miss_permille,
            tardiness_p99: s.tardiness_p99,
            pool,
        }
    }
}

fn acceptor_loop<S>(
    listener: Listener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<ConnRegistry>>,
    handle: Arc<ServiceHandle<u64, S>>,
) where
    S: Scheduler<u64> + Send + Sync + 'static,
{
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let Ok(registry_clone) = stream.try_clone() else {
            continue;
        };
        let (tx, rx) = mpsc::channel::<WriterMsg>();
        let writer = {
            let write_half = stream;
            std::thread::Builder::new()
                .name("rsched-serve-writer".into())
                .spawn(move || writer_loop(write_half, rx))
                .expect("spawning connection writer")
        };
        let reader = {
            let shared = Arc::clone(&shared);
            let handle = Arc::clone(&handle);
            std::thread::Builder::new()
                .name("rsched-serve-reader".into())
                .spawn(move || {
                    reader_loop(read_half, shared, &handle, tx);
                    let _ = writer.join();
                })
                .expect("spawning connection reader")
        };
        let mut guard = conns.lock().expect("conn registry poisoned");
        guard.streams.push(registry_clone);
        guard.joins.push(reader);
    }
}

/// Feature bits this server can grant in a [`HelloAck`].
const SERVER_FEATURES: u64 = FEAT_EDF;

/// One admission attempt, version-agnostic: what the reader hands to
/// [`admit_and_inject`] after decoding either Submit flavour.
struct Submission {
    req_id: u64,
    work_ns: u64,
    /// Raw wire deadline `(value, absolute)`; `None` for v1 submits.
    deadline: Option<(u64, bool)>,
    /// Answer with [`Response::CompletedV2`].
    v2: bool,
    /// The connection holds an EDF grant: schedule by deadline, not
    /// arrival.
    edf: bool,
}

/// Admission + inject, shared by both Submit flavours. Reject paths
/// return before any clock read or slab/histogram touch (see the
/// module docs on side-effect-free rejection).
fn admit_and_inject<S>(
    shared: &Arc<Shared>,
    injector: &mut rsched_runtime::Injector<u64, S>,
    writer: &Sender<WriterMsg>,
    sub: Submission,
) where
    S: Scheduler<u64> + Send + Sync + 'static,
{
    let submitted_at = Instant::now();
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    if shared.stop.load(Ordering::Acquire) {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        trace::emit(EventKind::AdmissionReject, sub.req_id);
        let _ = writer.send(WriterMsg::Resp(Response::Rejected {
            req_id: sub.req_id,
            code: RejectCode::Shutdown,
        }));
        return;
    }
    // Admission: reserve an in-flight unit, give it back if over the
    // bound. The increment-then-check keeps the gate race-free without
    // a CAS loop: concurrent Submits may transiently overshoot the
    // counter but never the accept count.
    let prev = shared.in_flight.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.queue_cap as u64 {
        shared.in_flight.fetch_sub(1, Ordering::Release);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        trace::emit(EventKind::AdmissionReject, sub.req_id);
        let _ = writer.send(WriterMsg::Resp(Response::Rejected {
            req_id: sub.req_id,
            code: RejectCode::QueueFull,
        }));
        return;
    }
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    // Accepted is enqueued to the writer *before* the task is injected,
    // so the client (and the writer's drain accounting) always sees
    // Accepted before Completed.
    let _ = writer.send(WriterMsg::Resp(Response::Accepted { req_id: sub.req_id }));
    // Only now, past admission, does the request touch the clock: one
    // epoch reading serves as both the arrival stamp and the base a
    // relative budget resolves against.
    let now_ns = shared.now_ns();
    let deadline_ns = sub.deadline.map(|(value, absolute)| {
        if absolute {
            value
        } else {
            now_ns.saturating_add(value)
        }
    });
    // EDF key = absolute deadline; everything else keys by arrival
    // ("deadline is now"), the same axis — see the module docs.
    let prio = match deadline_ns {
        Some(d) if sub.edf => d,
        _ => now_ns,
    };
    let inject_ns = submitted_at.elapsed().as_nanos() as u64;
    let slot = {
        let mut slab = shared.pending.lock().expect("pending slab poisoned");
        slab.alloc(Pending {
            req_id: sub.req_id,
            reply: writer.clone(),
            submitted_at,
            inject_ns,
            work_ns: sub.work_ns,
            deadline_ns,
            v2: sub.v2,
        })
        .expect("slab exhausted under admission bound")
    };
    if !injector.inject(slot, prio) {
        // Raced a pool shutdown (not reachable through
        // Server::shutdown, which joins readers first). Keep the
        // Accepted promise: account and reply without rendering
        // service.
        complete_task(shared, slot, false);
    }
}

/// Decode frames, run admission, inject. Exits on client EOF, protocol
/// error, [`Request::Drain`] or server stop.
fn reader_loop<S>(
    mut stream: ConnStream,
    shared: Arc<Shared>,
    handle: &ServiceHandle<u64, S>,
    writer: Sender<WriterMsg>,
) where
    S: Scheduler<u64> + Send + Sync + 'static,
{
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut injector = handle.injector();
    let mut payload = Vec::new();
    // Per-connection negotiated state: implicitly v1 with no features
    // until a Hello upgrades it.
    let mut version = PROTO_V1;
    let mut edf = false;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            let _ = writer.send(WriterMsg::Close);
            return;
        }
        match read_frame(&mut stream, &mut payload) {
            // Clean EOF: client is gone. Drop our sender; the writer
            // lingers until outstanding completions are relayed (their
            // slab slots hold sender clones), then its channel closes.
            Ok(false) => return,
            Ok(true) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            // Protocol violation or transport failure: close. Accepted
            // tasks still complete and are accounted server-side.
            Err(_) => {
                let _ = writer.send(WriterMsg::Close);
                return;
            }
        }
        let req = match decode_request(&payload) {
            Ok(r) => r,
            Err(_) => {
                let _ = writer.send(WriterMsg::Close);
                return;
            }
        };
        match req {
            Request::Ping { token } => {
                let _ = writer.send(WriterMsg::Resp(Response::Pong { token }));
            }
            Request::Stats => {
                let _ = writer.send(WriterMsg::Resp(Response::Stats(shared.stats())));
            }
            Request::Metrics => {
                let _ = writer.send(WriterMsg::Resp(Response::Metrics(Box::new(
                    shared.metrics(),
                ))));
            }
            Request::Drain => {
                let _ = writer.send(WriterMsg::DrainRequested);
                return;
            }
            Request::Hello(h) => {
                if h.version == 0 {
                    // A version the protocol reserves as invalid:
                    // refuse and close rather than guess.
                    let _ = writer.send(WriterMsg::Resp(Response::Rejected {
                        req_id: 0,
                        code: RejectCode::BadVersion,
                    }));
                    let _ = writer.send(WriterMsg::Close);
                    return;
                }
                // Negotiate down to the highest version both sides
                // speak; features are granted only at v2+.
                version = h.version.min(PROTO_V2);
                let features = if version >= PROTO_V2 {
                    h.features & SERVER_FEATURES
                } else {
                    0
                };
                edf = features & FEAT_EDF != 0;
                let _ = writer.send(WriterMsg::Hello(HelloAck {
                    version,
                    features,
                    server_now_ns: shared.now_ns(),
                }));
            }
            Request::Submit(s) => {
                admit_and_inject(
                    &shared,
                    &mut injector,
                    &writer,
                    Submission {
                        req_id: s.req_id,
                        work_ns: s.work_ns,
                        deadline: None,
                        v2: false,
                        edf: false,
                    },
                );
            }
            Request::SubmitV2(s) => {
                if version < PROTO_V2 {
                    // SubmitV2 without a v2 handshake is a protocol
                    // violation, same family as an unknown opcode.
                    let _ = writer.send(WriterMsg::Resp(Response::Rejected {
                        req_id: s.req_id,
                        code: RejectCode::BadVersion,
                    }));
                    let _ = writer.send(WriterMsg::Close);
                    return;
                }
                admit_and_inject(
                    &shared,
                    &mut injector,
                    &writer,
                    Submission {
                        req_id: s.req_id,
                        work_ns: s.work_ns,
                        deadline: Some((s.deadline, s.absolute)),
                        v2: true,
                        edf,
                    },
                );
            }
        }
    }
}

/// Own the write half; serialise responses; account the drain protocol.
fn writer_loop(mut stream: ConnStream, rx: Receiver<WriterMsg>) {
    let mut accepted_seen: u64 = 0;
    let mut completed_seen: u64 = 0;
    let mut draining = false;
    // Encoding version for outbound frames; flipped by the reader's
    // Hello message *after* the ack is written, so the ack itself and
    // everything before it stay v1-shaped on the wire.
    let mut version = PROTO_V1;
    // Loop ends when every sender (reader + pending slots) is gone:
    // nothing more can arrive.
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Close => break,
            WriterMsg::Hello(ack) => {
                let ok = write_response(&mut stream, &Response::HelloAck(ack), version).is_ok();
                version = ack.version;
                if !ok {
                    break;
                }
            }
            WriterMsg::DrainRequested => {
                draining = true;
            }
            WriterMsg::Resp(resp) => {
                match resp {
                    Response::Accepted { .. } => accepted_seen += 1,
                    Response::Completed(_) | Response::CompletedV2(_) => completed_seen += 1,
                    _ => {}
                }
                if write_response(&mut stream, &resp, version).is_err() {
                    break;
                }
            }
        }
        if draining && accepted_seen == completed_seen {
            let _ = write_response(
                &mut stream,
                &Response::Drained {
                    completed: completed_seen,
                },
                version,
            );
            break;
        }
    }
    // Actively half-close: the shutdown registry holds another clone of
    // this socket, so merely dropping our FD would leave the client
    // waiting for an EOF that never comes.
    stream.shutdown_both();
}
