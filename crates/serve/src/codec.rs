//! The wire protocol: a minimal length-prefixed binary codec.
//!
//! Every frame is `[u32 LE payload length][payload]`, where the payload
//! is one opcode byte followed by fixed-width little-endian fields —
//! no varints, no self-describing envelope, so a frame can be decoded
//! with zero allocation and encoding is a handful of `extend_from_slice`
//! calls. Payloads are bounded by [`MAX_FRAME`]; a header announcing
//! more than that is rejected *before* any buffer grows, so a corrupt
//! or hostile peer cannot make the server allocate.
//!
//! Decoding is total: truncated frames, oversized frames, unknown
//! opcodes and wrong-length payloads all come back as [`CodecError`]
//! values — never a panic — because a serving front-end's parser is
//! exactly the code an arbitrary peer gets to exercise.
//!
//! | opcode | frame | payload after the opcode byte |
//! |---|---|---|
//! | `0x01` | [`Request::Submit`] | `req_id u64, prio u64, work_ns u64` |
//! | `0x02` | [`Request::Ping`] | `token u64` |
//! | `0x03` | [`Request::Stats`] | — |
//! | `0x04` | [`Request::Drain`] | — |
//! | `0x05` | [`Request::Metrics`] | — |
//! | `0x81` | [`Response::Accepted`] | `req_id u64` |
//! | `0x82` | [`Response::Rejected`] | `req_id u64, code u8` |
//! | `0x83` | [`Response::Completed`] | `req_id u64, sojourn_ns u64, inject_ns u64` |
//! | `0x84` | [`Response::Pong`] | `token u64` |
//! | `0x85` | [`Response::Drained`] | `completed u64` |
//! | `0x86` | [`Response::Stats`] | [`StatsReply`], ten `u64`s |
//! | `0x87` | [`Response::Metrics`] | [`MetricsReply`]: five histogram blocks, counters, gauges |

use rsched_queues::telemetry::{HistSnapshot, TelemetrySnapshot, HIST_BUCKETS};
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload. The largest legitimate frame
/// ([`Response::Metrics`], whose five histogram blocks carry full
/// 64-bucket arrays) is 2873 bytes plus 8 per worker gauge; the slack
/// leaves room for protocol growth while still rejecting nonsense
/// headers instantly.
pub const MAX_FRAME: usize = 4096;

/// Why a frame failed to decode. Every variant is an expected condition
/// of talking to an arbitrary peer — the connection loop reports it and
/// closes, nothing panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended mid-frame (header or payload).
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The header announced a payload larger than [`MAX_FRAME`].
    Oversized(usize),
    /// Empty payload (a frame must carry at least its opcode byte).
    Empty,
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// Known opcode, wrong payload length.
    BadPayload {
        /// The opcode whose payload was malformed.
        opcode: u8,
        /// The malformed payload's length.
        len: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            CodecError::Oversized(len) => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME})")
            }
            CodecError::Empty => write!(f, "empty frame payload"),
            CodecError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            CodecError::BadPayload { opcode, len } => {
                write!(f, "bad payload length {len} for opcode {opcode:#04x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Why the server refused a submission — carried in
/// [`Response::Rejected`] so clients can distinguish backpressure from
/// lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The bounded admission queue is full: back off and retry.
    QueueFull = 1,
    /// The connection is draining; no new work on this socket.
    Draining = 2,
    /// The server is shutting down.
    Shutdown = 3,
}

impl RejectCode {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(RejectCode::QueueFull),
            2 => Some(RejectCode::Draining),
            3 => Some(RejectCode::Shutdown),
            _ => None,
        }
    }
}

/// Client → server frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one task. `req_id` is client-chosen and echoed back on
    /// every response about this request; `prio` is the scheduling
    /// payload handed to the queue; `work_ns` is the synthetic service
    /// time the worker spends on the task.
    Submit {
        req_id: u64,
        prio: u64,
        work_ns: u64,
    },
    /// Liveness probe; the server echoes the token in a [`Response::Pong`].
    Ping { token: u64 },
    /// Ask for a [`StatsReply`] snapshot.
    Stats,
    /// Graceful per-connection drain: the server stops reading this
    /// socket, finishes every task it accepted from it, then sends
    /// [`Response::Drained`] and closes.
    Drain,
    /// Ask for a [`MetricsReply`] — the live telemetry exposition: the
    /// full process telemetry snapshot plus gauge samples.
    Metrics,
}

/// Server → client frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The submission passed admission and was injected into the pool.
    Accepted { req_id: u64 },
    /// The submission was refused; no task was created.
    Rejected { req_id: u64, code: RejectCode },
    /// The task finished. `sojourn_ns` is submit→complete as measured
    /// by the server, `inject_ns` the submit→inject prefix of it.
    Completed {
        req_id: u64,
        sojourn_ns: u64,
        inject_ns: u64,
    },
    /// [`Request::Ping`] echo.
    Pong { token: u64 },
    /// Drain finished: every task accepted on this connection has
    /// completed (`completed` counts them, over the connection's life).
    Drained { completed: u64 },
    /// [`Request::Stats`] answer.
    Stats(StatsReply),
    /// [`Request::Metrics`] answer. Boxed: the reply is ~3.5 KB of
    /// histogram blocks, and the enum rides writer channels whose
    /// common traffic is 24-byte `Completed`s.
    Metrics(Box<MetricsReply>),
}

/// Server-side counters and sojourn quantiles, as reported over the
/// wire. Quantiles come from the server's log₂ `PowHistogram`s, so they
/// are conservative bucket upper bounds in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Submissions seen (accepted + rejected).
    pub submitted: u64,
    /// Submissions that passed admission.
    pub accepted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks currently queued or running (`accepted - completed`).
    pub in_flight: u64,
    /// Median submit→complete sojourn, ns.
    pub sojourn_p50: u64,
    /// 99th-percentile sojourn, ns.
    pub sojourn_p99: u64,
    /// 99.9th-percentile sojourn, ns.
    pub sojourn_p999: u64,
    /// Largest observed sojourn bucket, ns.
    pub sojourn_max: u64,
    /// 99th-percentile submit→inject prefix, ns.
    pub inject_p99: u64,
}

impl StatsReply {
    /// The wire field order, by name. [`encode_response`] and
    /// [`decode_response`] both derive their layout from
    /// [`to_wire`](Self::to_wire) / [`from_wire`](Self::from_wire),
    /// whose indices this list documents — and the codec tests assert
    /// name-by-name that byte offset `i * 8` really carries
    /// `WIRE_FIELDS[i]`, so a silent reorder cannot ship.
    pub const WIRE_FIELDS: [&'static str; 10] = [
        "submitted",
        "accepted",
        "rejected",
        "completed",
        "in_flight",
        "sojourn_p50",
        "sojourn_p99",
        "sojourn_p999",
        "sojourn_max",
        "inject_p99",
    ];

    /// The wire words, in [`WIRE_FIELDS`](Self::WIRE_FIELDS) order.
    pub fn to_wire(&self) -> [u64; 10] {
        [
            self.submitted,
            self.accepted,
            self.rejected,
            self.completed,
            self.in_flight,
            self.sojourn_p50,
            self.sojourn_p99,
            self.sojourn_p999,
            self.sojourn_max,
            self.inject_p99,
        ]
    }

    /// Rebuild from wire words in [`WIRE_FIELDS`](Self::WIRE_FIELDS)
    /// order.
    pub fn from_wire(w: [u64; 10]) -> Self {
        let [submitted, accepted, rejected, completed, in_flight, sojourn_p50, sojourn_p99, sojourn_p999, sojourn_max, inject_p99] =
            w;
        Self {
            submitted,
            accepted,
            rejected,
            completed,
            in_flight,
            sojourn_p50,
            sojourn_p99,
            sojourn_p999,
            sojourn_max,
            inject_p99,
        }
    }

    /// Field value by wire name (`None` for unknown names) — lets tests
    /// and exporters walk [`WIRE_FIELDS`](Self::WIRE_FIELDS) without a
    /// parallel positional list.
    pub fn field(&self, name: &str) -> Option<u64> {
        Some(match name {
            "submitted" => self.submitted,
            "accepted" => self.accepted,
            "rejected" => self.rejected,
            "completed" => self.completed,
            "in_flight" => self.in_flight,
            "sojourn_p50" => self.sojourn_p50,
            "sojourn_p99" => self.sojourn_p99,
            "sojourn_p999" => self.sojourn_p999,
            "sojourn_max" => self.sojourn_max,
            "inject_p99" => self.inject_p99,
            _ => return None,
        })
    }
}

/// The live telemetry exposition carried by [`Response::Metrics`]: the
/// **full** process [`TelemetrySnapshot`] — all five per-op histogram
/// series with their complete 64-bucket arrays and derived quantiles,
/// the event counters, the epoch-GC deltas — plus gauge samples from
/// the serving layer's lightweight sampler.
///
/// Wire layout after the opcode byte (all `u64` LE):
///
/// | block | words |
/// |---|---|
/// | histograms ×5, in order retry/steal/sweep/floor/tick | each `count, p50, p90, p99, p999, max` + 64 buckets |
/// | counters | `empty_pops, registry_probes, seg_installs, flush_published, flush_merged, gc_deferred, gc_collected` |
/// | gauges | `in_flight`, `n_workers`, then `n_workers` per-worker busy-permille samples |
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReply {
    /// Everything recorded since the server's telemetry window opened
    /// (server start, or an explicit reset).
    pub telemetry: TelemetrySnapshot,
    /// Tasks admitted but not yet completed, at reply time.
    pub in_flight: u64,
    /// Per-worker busy time since the previous `Metrics` poll, in
    /// permille of the elapsed wall interval (0 = idle, 1000 = fully
    /// busy), indexed by worker id.
    pub utilization_permille: Vec<u64>,
}

/// Wire size of one histogram block: the six derived words plus the
/// full bucket array.
const HIST_WIRE_WORDS: usize = 6 + HIST_BUCKETS;
/// [`MetricsReply`] payload length before the variable per-worker gauge
/// words (opcode byte included).
const METRICS_FIXED: usize = 1 + (5 * HIST_WIRE_WORDS + 7 + 2) * 8;
/// Per-worker gauge entries are capped so the frame stays under
/// [`MAX_FRAME`] whatever the pool width; pools wider than this report
/// their first 128 workers.
pub const METRICS_MAX_WORKERS: usize = 128;

const OP_SUBMIT: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_DRAIN: u8 = 0x04;
const OP_METRICS: u8 = 0x05;
const OP_ACCEPTED: u8 = 0x81;
const OP_REJECTED: u8 = 0x82;
const OP_COMPLETED: u8 = 0x83;
const OP_PONG: u8 = 0x84;
const OP_DRAINED: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;
const OP_METRICS_REPLY: u8 = 0x87;

fn u64_at(payload: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[off..off + 8]);
    u64::from_le_bytes(b)
}

fn frame(out: &mut Vec<u8>, payload_len: usize) {
    debug_assert!(payload_len <= MAX_FRAME);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Append the full frame (header + payload) for `req` to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Submit {
            req_id,
            prio,
            work_ns,
        } => {
            frame(out, 25);
            out.push(OP_SUBMIT);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.extend_from_slice(&prio.to_le_bytes());
            out.extend_from_slice(&work_ns.to_le_bytes());
        }
        Request::Ping { token } => {
            frame(out, 9);
            out.push(OP_PING);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Request::Stats => {
            frame(out, 1);
            out.push(OP_STATS);
        }
        Request::Drain => {
            frame(out, 1);
            out.push(OP_DRAIN);
        }
        Request::Metrics => {
            frame(out, 1);
            out.push(OP_METRICS);
        }
    }
}

fn encode_hist(h: &HistSnapshot, out: &mut Vec<u8>) {
    for v in [h.count, h.p50, h.p90, h.p99, h.p999, h.max] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    // Always exactly HIST_BUCKETS words: a default-constructed snapshot
    // has an empty bucket vec and encodes as zeros.
    for i in 0..HIST_BUCKETS {
        let b = h.buckets.get(i).copied().unwrap_or(0);
        out.extend_from_slice(&b.to_le_bytes());
    }
}

fn decode_hist(body: &[u8], off: usize) -> HistSnapshot {
    let f = |i: usize| u64_at(body, off + i * 8);
    HistSnapshot {
        count: f(0),
        p50: f(1),
        p90: f(2),
        p99: f(3),
        p999: f(4),
        max: f(5),
        buckets: (0..HIST_BUCKETS).map(|i| f(6 + i)).collect(),
    }
}

/// Append the full frame (header + payload) for `resp` to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Accepted { req_id } => {
            frame(out, 9);
            out.push(OP_ACCEPTED);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        Response::Rejected { req_id, code } => {
            frame(out, 10);
            out.push(OP_REJECTED);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.push(*code as u8);
        }
        Response::Completed {
            req_id,
            sojourn_ns,
            inject_ns,
        } => {
            frame(out, 25);
            out.push(OP_COMPLETED);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.extend_from_slice(&sojourn_ns.to_le_bytes());
            out.extend_from_slice(&inject_ns.to_le_bytes());
        }
        Response::Pong { token } => {
            frame(out, 9);
            out.push(OP_PONG);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Response::Drained { completed } => {
            frame(out, 9);
            out.push(OP_DRAINED);
            out.extend_from_slice(&completed.to_le_bytes());
        }
        Response::Stats(s) => {
            frame(out, 81);
            out.push(OP_STATS_REPLY);
            // One canonical field order: `to_wire` (named fields, same
            // list `from_wire` destructures) is the only place the
            // layout lives.
            for v in s.to_wire() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(m) => {
            let workers = m.utilization_permille.len().min(METRICS_MAX_WORKERS);
            frame(out, METRICS_FIXED + workers * 8);
            out.push(OP_METRICS_REPLY);
            let t = &m.telemetry;
            for h in [&t.retry, &t.steal, &t.sweep, &t.floor, &t.tick] {
                encode_hist(h, out);
            }
            for v in [
                t.empty_pops,
                t.registry_probes,
                t.seg_installs,
                t.flush_published,
                t.flush_merged,
                t.gc_deferred,
                t.gc_collected,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&m.in_flight.to_le_bytes());
            out.extend_from_slice(&(workers as u64).to_le_bytes());
            for u in m.utilization_permille.iter().take(workers) {
                out.extend_from_slice(&u.to_le_bytes());
            }
        }
    }
}

fn expect_len(opcode: u8, payload: &[u8], want: usize) -> Result<(), CodecError> {
    if payload.len() == want {
        Ok(())
    } else {
        Err(CodecError::BadPayload {
            opcode,
            len: payload.len(),
        })
    }
}

/// Decode one request payload (the bytes after the length header).
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let (&opcode, body) = payload.split_first().ok_or(CodecError::Empty)?;
    match opcode {
        OP_SUBMIT => {
            expect_len(opcode, body, 24)?;
            Ok(Request::Submit {
                req_id: u64_at(body, 0),
                prio: u64_at(body, 8),
                work_ns: u64_at(body, 16),
            })
        }
        OP_PING => {
            expect_len(opcode, body, 8)?;
            Ok(Request::Ping {
                token: u64_at(body, 0),
            })
        }
        OP_STATS => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Stats)
        }
        OP_DRAIN => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Drain)
        }
        OP_METRICS => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Metrics)
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Decode one response payload (the bytes after the length header).
pub fn decode_response(payload: &[u8]) -> Result<Response, CodecError> {
    let (&opcode, body) = payload.split_first().ok_or(CodecError::Empty)?;
    match opcode {
        OP_ACCEPTED => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Accepted {
                req_id: u64_at(body, 0),
            })
        }
        OP_REJECTED => {
            expect_len(opcode, body, 9)?;
            let code = RejectCode::from_u8(body[8]).ok_or(CodecError::BadPayload {
                opcode,
                len: body.len(),
            })?;
            Ok(Response::Rejected {
                req_id: u64_at(body, 0),
                code,
            })
        }
        OP_COMPLETED => {
            expect_len(opcode, body, 24)?;
            Ok(Response::Completed {
                req_id: u64_at(body, 0),
                sojourn_ns: u64_at(body, 8),
                inject_ns: u64_at(body, 16),
            })
        }
        OP_PONG => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Pong {
                token: u64_at(body, 0),
            })
        }
        OP_DRAINED => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Drained {
                completed: u64_at(body, 0),
            })
        }
        OP_STATS_REPLY => {
            expect_len(opcode, body, 80)?;
            Ok(Response::Stats(StatsReply::from_wire(std::array::from_fn(
                |i| u64_at(body, i * 8),
            ))))
        }
        OP_METRICS_REPLY => {
            // Fixed blocks plus a self-describing per-worker gauge tail:
            // the declared worker count must match the frame exactly.
            let fixed = METRICS_FIXED - 1;
            if body.len() < fixed {
                return Err(CodecError::BadPayload {
                    opcode,
                    len: body.len(),
                });
            }
            let hists: Vec<HistSnapshot> = (0..5)
                .map(|h| decode_hist(body, h * HIST_WIRE_WORDS * 8))
                .collect();
            let counters_off = 5 * HIST_WIRE_WORDS * 8;
            let c = |i: usize| u64_at(body, counters_off + i * 8);
            let in_flight = c(7);
            let workers = c(8) as usize;
            if workers > METRICS_MAX_WORKERS || body.len() != fixed + workers * 8 {
                return Err(CodecError::BadPayload {
                    opcode,
                    len: body.len(),
                });
            }
            let gauges_off = counters_off + 9 * 8;
            let utilization_permille = (0..workers)
                .map(|i| u64_at(body, gauges_off + i * 8))
                .collect();
            let mut it = hists.into_iter();
            let (retry, steal, sweep, floor, tick) = (
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
            );
            Ok(Response::Metrics(Box::new(MetricsReply {
                telemetry: TelemetrySnapshot {
                    retry,
                    steal,
                    sweep,
                    floor,
                    tick,
                    empty_pops: c(0),
                    registry_probes: c(1),
                    seg_installs: c(2),
                    flush_published: c(3),
                    flush_merged: c(4),
                    gc_deferred: c(5),
                    gc_collected: c(6),
                    // The wire format carries the five original series;
                    // newer snapshot fields (flat-combining batch stats)
                    // decode as empty.
                    ..Default::default()
                },
                in_flight,
                utilization_permille,
            })))
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Read exactly `buf.len()` bytes; `Ok(false)` if the stream ended
/// *cleanly* before the first byte, `Err(Truncated)` if it ended
/// mid-read.
///
/// A read timeout *between* frames is how connection loops poll their
/// shutdown flag — it propagates when `mid_frame` is false and no byte
/// has arrived yet. Once inside a frame the remaining bytes are already
/// in flight: timeouts retry, or the partial header/payload we consumed
/// would desync the stream. A peer that stalls forever mid-frame is
/// unblocked by the server shutting the socket down (read returns 0 →
/// `Truncated`).
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8], mid_frame: bool) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && !mid_frame {
                    return Ok(false);
                }
                return Err(CodecError::Truncated {
                    needed: buf.len(),
                    got,
                }
                .into());
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (got > 0 || mid_frame)
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one frame into `buf` (replacing its contents with the payload).
///
/// Returns `Ok(false)` on a clean end of stream at a frame boundary.
/// Truncation inside a frame, an oversized header and I/O failures all
/// surface as `Err`; the caller must not interpret the buffer then.
/// Timeout errors (`WouldBlock`/`TimedOut`) pass through untouched so
/// connection loops can poll a shutdown flag — but only when they occur
/// before the first header byte; a timeout mid-frame is truncation.
pub fn read_frame<R: Read + ?Sized>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header, false)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::Oversized(len).into());
    }
    if len == 0 {
        return Err(CodecError::Empty.into());
    }
    buf.clear();
    buf.resize(len, 0);
    read_full(r, buf, true)?;
    Ok(true)
}

/// Encode `resp` and write the frame (no flush).
pub fn write_response<W: Write + ?Sized>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut buf = Vec::with_capacity(32);
    encode_response(resp, &mut buf);
    w.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        encode_request(&req, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), req);
        // Nothing after the frame: the next read is a clean EOF.
        assert!(!read_frame(&mut cursor, &mut payload).unwrap());
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        encode_response(&resp, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    /// A fully-populated histogram snapshot (64-element bucket array,
    /// like every snapshot `telemetry::capture` produces — the wire
    /// always carries the full array).
    fn hist(seed: u64) -> HistSnapshot {
        HistSnapshot {
            buckets: (0..HIST_BUCKETS as u64).map(|i| seed + i).collect(),
            count: seed * 100,
            p50: seed,
            p90: seed * 2,
            p99: seed * 4,
            p999: seed * 8,
            max: seed * 16,
        }
    }

    fn metrics_reply() -> MetricsReply {
        MetricsReply {
            telemetry: TelemetrySnapshot {
                retry: hist(1),
                steal: hist(2),
                sweep: hist(3),
                floor: hist(4),
                tick: hist(5),
                empty_pops: 11,
                registry_probes: 22,
                seg_installs: 33,
                flush_published: 44,
                flush_merged: 55,
                gc_deferred: 66,
                gc_collected: 77,
                // Not carried on the wire: the fixed 5-hist/7-counter
                // format predates the flat-combining series, so a
                // decoded snapshot always has them empty.
                ..Default::default()
            },
            in_flight: 9,
            utilization_permille: vec![1000, 517, 0, 250],
        }
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip_request(Request::Submit {
            req_id: u64::MAX,
            prio: 17,
            work_ns: 1_000_000,
        });
        roundtrip_request(Request::Ping { token: 0xDEAD_BEEF });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Drain);
        roundtrip_request(Request::Metrics);
        roundtrip_response(Response::Accepted { req_id: 1 });
        for code in [
            RejectCode::QueueFull,
            RejectCode::Draining,
            RejectCode::Shutdown,
        ] {
            roundtrip_response(Response::Rejected { req_id: 2, code });
        }
        roundtrip_response(Response::Completed {
            req_id: 3,
            sojourn_ns: 123_456,
            inject_ns: 789,
        });
        roundtrip_response(Response::Pong { token: 9 });
        roundtrip_response(Response::Drained { completed: 1_000 });
        roundtrip_response(Response::Stats(StatsReply {
            submitted: 10,
            accepted: 8,
            rejected: 2,
            completed: 7,
            in_flight: 1,
            sojourn_p50: 1023,
            sojourn_p99: 4095,
            sojourn_p999: 8191,
            sojourn_max: 16383,
            inject_p99: 255,
        }));
        roundtrip_response(Response::Metrics(Box::new(metrics_reply())));
        // The gauge tail is genuinely variable-length: empty works too.
        roundtrip_response(Response::Metrics(Box::new(MetricsReply {
            utilization_permille: vec![],
            ..metrics_reply()
        })));
    }

    /// Satellite guard: every [`StatsReply`] field rides the wire at the
    /// offset its name holds in [`StatsReply::WIRE_FIELDS`]. Distinct
    /// sentinels per field mean a reorder of `to_wire`/`from_wire` (or
    /// of the struct itself) fails here by name instead of silently
    /// swapping two counters.
    #[test]
    fn stats_reply_field_order_is_named_end_to_end() {
        let reply = StatsReply {
            submitted: 0xA1,
            accepted: 0xA2,
            rejected: 0xA3,
            completed: 0xA4,
            in_flight: 0xA5,
            sojourn_p50: 0xA6,
            sojourn_p99: 0xA7,
            sojourn_p999: 0xA8,
            sojourn_max: 0xA9,
            inject_p99: 0xAA,
        };
        let mut wire = Vec::new();
        encode_response(&Response::Stats(reply), &mut wire);
        let body = &wire[5..]; // length header + opcode byte
        assert_eq!(body.len(), 80);
        for (i, name) in StatsReply::WIRE_FIELDS.iter().enumerate() {
            assert_eq!(
                u64_at(body, i * 8),
                reply.field(name).unwrap(),
                "wire offset {i} must carry field `{name}`"
            );
            // Sentinels are distinct, so a swapped pair cannot pass.
            assert_eq!(reply.field(name).unwrap(), 0xA1 + i as u64);
        }
        // And the decode side rebuilds by the same names.
        let decoded = decode_response(&wire[4..]).unwrap();
        assert_eq!(decoded, Response::Stats(reply));
    }

    #[test]
    fn metrics_reply_bad_payloads_are_errors() {
        let mut wire = Vec::new();
        encode_response(&Response::Metrics(Box::new(metrics_reply())), &mut wire);
        let payload = wire[4..].to_vec();
        // Truncating below the fixed blocks is a BadPayload.
        assert!(matches!(
            decode_response(&payload[..METRICS_FIXED - 9]),
            Err(CodecError::BadPayload { .. })
        ));
        // A worker count that disagrees with the frame length is too.
        let mut lying = payload.clone();
        let n_off = METRICS_FIXED - 8; // n_workers word (opcode included)
        lying[n_off..n_off + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(matches!(
            decode_response(&lying),
            Err(CodecError::BadPayload { .. })
        ));
        // The largest legitimate frame still fits MAX_FRAME.
        let mut big = Vec::new();
        encode_response(
            &Response::Metrics(Box::new(MetricsReply {
                utilization_permille: vec![1000; METRICS_MAX_WORKERS + 50],
                ..metrics_reply()
            })),
            &mut big,
        );
        assert!(
            big.len() - 4 <= MAX_FRAME,
            "metrics frame exceeds MAX_FRAME"
        );
        match decode_response(&big[4..]).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(
                    m.utilization_permille.len(),
                    METRICS_MAX_WORKERS,
                    "gauge tail is capped, not rejected"
                );
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut wire = Vec::new();
        encode_request(&Request::Ping { token: 1 }, &mut wire);
        encode_request(&Request::Drain, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Ping { token: 1 }
        );
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), Request::Drain);
        assert!(!read_frame(&mut cursor, &mut payload).unwrap());
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        // Header promises 25 bytes; stream ends after 10.
        let mut wire = Vec::new();
        encode_request(
            &Request::Submit {
                req_id: 1,
                prio: 2,
                work_ns: 3,
            },
            &mut wire,
        );
        wire.truncate(4 + 10);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        // Truncated mid-header too.
        let mut cursor = io::Cursor::new(vec![9u8, 0]);
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
        assert!(
            payload.capacity() <= MAX_FRAME,
            "allocated for a bogus header"
        );
    }

    #[test]
    fn unknown_opcode_and_bad_lengths_are_errors() {
        assert_eq!(
            decode_request(&[0x7F]),
            Err(CodecError::UnknownOpcode(0x7F))
        );
        assert_eq!(
            decode_response(&[0x01]),
            Err(CodecError::UnknownOpcode(0x01))
        );
        assert_eq!(decode_request(&[]), Err(CodecError::Empty));
        // Submit with a short body.
        assert_eq!(
            decode_request(&[OP_SUBMIT, 1, 2, 3]),
            Err(CodecError::BadPayload {
                opcode: OP_SUBMIT,
                len: 3
            })
        );
        // Rejected with an out-of-range code byte.
        let mut body = vec![OP_REJECTED];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.push(99);
        assert!(matches!(
            decode_response(&body),
            Err(CodecError::BadPayload { .. })
        ));
        // Zero-length frame on the wire.
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }
}
