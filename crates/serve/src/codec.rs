//! The wire protocol: a minimal length-prefixed binary codec.
//!
//! Every frame is `[u32 LE payload length][payload]`, where the payload
//! is one opcode byte followed by fixed-width little-endian fields —
//! no varints, no self-describing envelope, so a frame can be decoded
//! with zero allocation and encoding is a handful of `extend_from_slice`
//! calls. Payloads are bounded by [`MAX_FRAME`]; a header announcing
//! more than that is rejected *before* any buffer grows, so a corrupt
//! or hostile peer cannot make the server allocate.
//!
//! Decoding is total: truncated frames, oversized frames, unknown
//! opcodes and wrong-length payloads all come back as [`CodecError`]
//! values — never a panic — because a serving front-end's parser is
//! exactly the code an arbitrary peer gets to exercise.
//!
//! | opcode | frame | payload after the opcode byte |
//! |---|---|---|
//! | `0x01` | [`Request::Submit`] | `req_id u64, prio u64, work_ns u64` |
//! | `0x02` | [`Request::Ping`] | `token u64` |
//! | `0x03` | [`Request::Stats`] | — |
//! | `0x04` | [`Request::Drain`] | — |
//! | `0x81` | [`Response::Accepted`] | `req_id u64` |
//! | `0x82` | [`Response::Rejected`] | `req_id u64, code u8` |
//! | `0x83` | [`Response::Completed`] | `req_id u64, sojourn_ns u64, inject_ns u64` |
//! | `0x84` | [`Response::Pong`] | `token u64` |
//! | `0x85` | [`Response::Drained`] | `completed u64` |
//! | `0x86` | [`Response::Stats`] | [`StatsReply`], ten `u64`s |

use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload. The largest legitimate frame
/// ([`Response::Stats`]) is 81 bytes; the slack leaves room for
/// protocol growth while still rejecting nonsense headers instantly.
pub const MAX_FRAME: usize = 1024;

/// Why a frame failed to decode. Every variant is an expected condition
/// of talking to an arbitrary peer — the connection loop reports it and
/// closes, nothing panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended mid-frame (header or payload).
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The header announced a payload larger than [`MAX_FRAME`].
    Oversized(usize),
    /// Empty payload (a frame must carry at least its opcode byte).
    Empty,
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// Known opcode, wrong payload length.
    BadPayload {
        /// The opcode whose payload was malformed.
        opcode: u8,
        /// The malformed payload's length.
        len: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            CodecError::Oversized(len) => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME})")
            }
            CodecError::Empty => write!(f, "empty frame payload"),
            CodecError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            CodecError::BadPayload { opcode, len } => {
                write!(f, "bad payload length {len} for opcode {opcode:#04x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Why the server refused a submission — carried in
/// [`Response::Rejected`] so clients can distinguish backpressure from
/// lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The bounded admission queue is full: back off and retry.
    QueueFull = 1,
    /// The connection is draining; no new work on this socket.
    Draining = 2,
    /// The server is shutting down.
    Shutdown = 3,
}

impl RejectCode {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(RejectCode::QueueFull),
            2 => Some(RejectCode::Draining),
            3 => Some(RejectCode::Shutdown),
            _ => None,
        }
    }
}

/// Client → server frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one task. `req_id` is client-chosen and echoed back on
    /// every response about this request; `prio` is the scheduling
    /// payload handed to the queue; `work_ns` is the synthetic service
    /// time the worker spends on the task.
    Submit {
        req_id: u64,
        prio: u64,
        work_ns: u64,
    },
    /// Liveness probe; the server echoes the token in a [`Response::Pong`].
    Ping { token: u64 },
    /// Ask for a [`StatsReply`] snapshot.
    Stats,
    /// Graceful per-connection drain: the server stops reading this
    /// socket, finishes every task it accepted from it, then sends
    /// [`Response::Drained`] and closes.
    Drain,
}

/// Server → client frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// The submission passed admission and was injected into the pool.
    Accepted { req_id: u64 },
    /// The submission was refused; no task was created.
    Rejected { req_id: u64, code: RejectCode },
    /// The task finished. `sojourn_ns` is submit→complete as measured
    /// by the server, `inject_ns` the submit→inject prefix of it.
    Completed {
        req_id: u64,
        sojourn_ns: u64,
        inject_ns: u64,
    },
    /// [`Request::Ping`] echo.
    Pong { token: u64 },
    /// Drain finished: every task accepted on this connection has
    /// completed (`completed` counts them, over the connection's life).
    Drained { completed: u64 },
    /// [`Request::Stats`] answer.
    Stats(StatsReply),
}

/// Server-side counters and sojourn quantiles, as reported over the
/// wire. Quantiles come from the server's log₂ `PowHistogram`s, so they
/// are conservative bucket upper bounds in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Submissions seen (accepted + rejected).
    pub submitted: u64,
    /// Submissions that passed admission.
    pub accepted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks currently queued or running (`accepted - completed`).
    pub in_flight: u64,
    /// Median submit→complete sojourn, ns.
    pub sojourn_p50: u64,
    /// 99th-percentile sojourn, ns.
    pub sojourn_p99: u64,
    /// 99.9th-percentile sojourn, ns.
    pub sojourn_p999: u64,
    /// Largest observed sojourn bucket, ns.
    pub sojourn_max: u64,
    /// 99th-percentile submit→inject prefix, ns.
    pub inject_p99: u64,
}

const OP_SUBMIT: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_DRAIN: u8 = 0x04;
const OP_ACCEPTED: u8 = 0x81;
const OP_REJECTED: u8 = 0x82;
const OP_COMPLETED: u8 = 0x83;
const OP_PONG: u8 = 0x84;
const OP_DRAINED: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;

fn u64_at(payload: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[off..off + 8]);
    u64::from_le_bytes(b)
}

fn frame(out: &mut Vec<u8>, payload_len: usize) {
    debug_assert!(payload_len <= MAX_FRAME);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Append the full frame (header + payload) for `req` to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Submit {
            req_id,
            prio,
            work_ns,
        } => {
            frame(out, 25);
            out.push(OP_SUBMIT);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.extend_from_slice(&prio.to_le_bytes());
            out.extend_from_slice(&work_ns.to_le_bytes());
        }
        Request::Ping { token } => {
            frame(out, 9);
            out.push(OP_PING);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Request::Stats => {
            frame(out, 1);
            out.push(OP_STATS);
        }
        Request::Drain => {
            frame(out, 1);
            out.push(OP_DRAIN);
        }
    }
}

/// Append the full frame (header + payload) for `resp` to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Accepted { req_id } => {
            frame(out, 9);
            out.push(OP_ACCEPTED);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        Response::Rejected { req_id, code } => {
            frame(out, 10);
            out.push(OP_REJECTED);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.push(*code as u8);
        }
        Response::Completed {
            req_id,
            sojourn_ns,
            inject_ns,
        } => {
            frame(out, 25);
            out.push(OP_COMPLETED);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.extend_from_slice(&sojourn_ns.to_le_bytes());
            out.extend_from_slice(&inject_ns.to_le_bytes());
        }
        Response::Pong { token } => {
            frame(out, 9);
            out.push(OP_PONG);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Response::Drained { completed } => {
            frame(out, 9);
            out.push(OP_DRAINED);
            out.extend_from_slice(&completed.to_le_bytes());
        }
        Response::Stats(s) => {
            frame(out, 81);
            out.push(OP_STATS_REPLY);
            for v in [
                s.submitted,
                s.accepted,
                s.rejected,
                s.completed,
                s.in_flight,
                s.sojourn_p50,
                s.sojourn_p99,
                s.sojourn_p999,
                s.sojourn_max,
                s.inject_p99,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

fn expect_len(opcode: u8, payload: &[u8], want: usize) -> Result<(), CodecError> {
    if payload.len() == want {
        Ok(())
    } else {
        Err(CodecError::BadPayload {
            opcode,
            len: payload.len(),
        })
    }
}

/// Decode one request payload (the bytes after the length header).
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let (&opcode, body) = payload.split_first().ok_or(CodecError::Empty)?;
    match opcode {
        OP_SUBMIT => {
            expect_len(opcode, body, 24)?;
            Ok(Request::Submit {
                req_id: u64_at(body, 0),
                prio: u64_at(body, 8),
                work_ns: u64_at(body, 16),
            })
        }
        OP_PING => {
            expect_len(opcode, body, 8)?;
            Ok(Request::Ping {
                token: u64_at(body, 0),
            })
        }
        OP_STATS => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Stats)
        }
        OP_DRAIN => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Drain)
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Decode one response payload (the bytes after the length header).
pub fn decode_response(payload: &[u8]) -> Result<Response, CodecError> {
    let (&opcode, body) = payload.split_first().ok_or(CodecError::Empty)?;
    match opcode {
        OP_ACCEPTED => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Accepted {
                req_id: u64_at(body, 0),
            })
        }
        OP_REJECTED => {
            expect_len(opcode, body, 9)?;
            let code = RejectCode::from_u8(body[8]).ok_or(CodecError::BadPayload {
                opcode,
                len: body.len(),
            })?;
            Ok(Response::Rejected {
                req_id: u64_at(body, 0),
                code,
            })
        }
        OP_COMPLETED => {
            expect_len(opcode, body, 24)?;
            Ok(Response::Completed {
                req_id: u64_at(body, 0),
                sojourn_ns: u64_at(body, 8),
                inject_ns: u64_at(body, 16),
            })
        }
        OP_PONG => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Pong {
                token: u64_at(body, 0),
            })
        }
        OP_DRAINED => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Drained {
                completed: u64_at(body, 0),
            })
        }
        OP_STATS_REPLY => {
            expect_len(opcode, body, 80)?;
            let f = |i: usize| u64_at(body, i * 8);
            Ok(Response::Stats(StatsReply {
                submitted: f(0),
                accepted: f(1),
                rejected: f(2),
                completed: f(3),
                in_flight: f(4),
                sojourn_p50: f(5),
                sojourn_p99: f(6),
                sojourn_p999: f(7),
                sojourn_max: f(8),
                inject_p99: f(9),
            }))
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Read exactly `buf.len()` bytes; `Ok(false)` if the stream ended
/// *cleanly* before the first byte, `Err(Truncated)` if it ended
/// mid-read.
///
/// A read timeout *between* frames is how connection loops poll their
/// shutdown flag — it propagates when `mid_frame` is false and no byte
/// has arrived yet. Once inside a frame the remaining bytes are already
/// in flight: timeouts retry, or the partial header/payload we consumed
/// would desync the stream. A peer that stalls forever mid-frame is
/// unblocked by the server shutting the socket down (read returns 0 →
/// `Truncated`).
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8], mid_frame: bool) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && !mid_frame {
                    return Ok(false);
                }
                return Err(CodecError::Truncated {
                    needed: buf.len(),
                    got,
                }
                .into());
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (got > 0 || mid_frame)
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one frame into `buf` (replacing its contents with the payload).
///
/// Returns `Ok(false)` on a clean end of stream at a frame boundary.
/// Truncation inside a frame, an oversized header and I/O failures all
/// surface as `Err`; the caller must not interpret the buffer then.
/// Timeout errors (`WouldBlock`/`TimedOut`) pass through untouched so
/// connection loops can poll a shutdown flag — but only when they occur
/// before the first header byte; a timeout mid-frame is truncation.
pub fn read_frame<R: Read + ?Sized>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header, false)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::Oversized(len).into());
    }
    if len == 0 {
        return Err(CodecError::Empty.into());
    }
    buf.clear();
    buf.resize(len, 0);
    read_full(r, buf, true)?;
    Ok(true)
}

/// Encode `resp` and write the frame (no flush).
pub fn write_response<W: Write + ?Sized>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut buf = Vec::with_capacity(32);
    encode_response(resp, &mut buf);
    w.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        encode_request(&req, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), req);
        // Nothing after the frame: the next read is a clean EOF.
        assert!(!read_frame(&mut cursor, &mut payload).unwrap());
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        encode_response(&resp, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip_request(Request::Submit {
            req_id: u64::MAX,
            prio: 17,
            work_ns: 1_000_000,
        });
        roundtrip_request(Request::Ping { token: 0xDEAD_BEEF });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Drain);
        roundtrip_response(Response::Accepted { req_id: 1 });
        for code in [
            RejectCode::QueueFull,
            RejectCode::Draining,
            RejectCode::Shutdown,
        ] {
            roundtrip_response(Response::Rejected { req_id: 2, code });
        }
        roundtrip_response(Response::Completed {
            req_id: 3,
            sojourn_ns: 123_456,
            inject_ns: 789,
        });
        roundtrip_response(Response::Pong { token: 9 });
        roundtrip_response(Response::Drained { completed: 1_000 });
        roundtrip_response(Response::Stats(StatsReply {
            submitted: 10,
            accepted: 8,
            rejected: 2,
            completed: 7,
            in_flight: 1,
            sojourn_p50: 1023,
            sojourn_p99: 4095,
            sojourn_p999: 8191,
            sojourn_max: 16383,
            inject_p99: 255,
        }));
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut wire = Vec::new();
        encode_request(&Request::Ping { token: 1 }, &mut wire);
        encode_request(&Request::Drain, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Ping { token: 1 }
        );
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), Request::Drain);
        assert!(!read_frame(&mut cursor, &mut payload).unwrap());
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        // Header promises 25 bytes; stream ends after 10.
        let mut wire = Vec::new();
        encode_request(
            &Request::Submit {
                req_id: 1,
                prio: 2,
                work_ns: 3,
            },
            &mut wire,
        );
        wire.truncate(4 + 10);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        // Truncated mid-header too.
        let mut cursor = io::Cursor::new(vec![9u8, 0]);
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
        assert!(
            payload.capacity() <= MAX_FRAME,
            "allocated for a bogus header"
        );
    }

    #[test]
    fn unknown_opcode_and_bad_lengths_are_errors() {
        assert_eq!(
            decode_request(&[0x7F]),
            Err(CodecError::UnknownOpcode(0x7F))
        );
        assert_eq!(
            decode_response(&[0x01]),
            Err(CodecError::UnknownOpcode(0x01))
        );
        assert_eq!(decode_request(&[]), Err(CodecError::Empty));
        // Submit with a short body.
        assert_eq!(
            decode_request(&[OP_SUBMIT, 1, 2, 3]),
            Err(CodecError::BadPayload {
                opcode: OP_SUBMIT,
                len: 3
            })
        );
        // Rejected with an out-of-range code byte.
        let mut body = vec![OP_REJECTED];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.push(99);
        assert!(matches!(
            decode_response(&body),
            Err(CodecError::BadPayload { .. })
        ));
        // Zero-length frame on the wire.
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }
}
