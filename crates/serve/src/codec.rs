//! The wire protocol: a minimal length-prefixed binary codec.
//!
//! Every frame is `[u32 LE payload length][payload]`, where the payload
//! is one opcode byte followed by fixed-width little-endian fields —
//! no varints, no self-describing envelope, so a frame can be decoded
//! with zero allocation and encoding is a handful of `extend_from_slice`
//! calls. Payloads are bounded by [`MAX_FRAME`]; a header announcing
//! more than that is rejected *before* any buffer grows, so a corrupt
//! or hostile peer cannot make the server allocate.
//!
//! Decoding is total: truncated frames, oversized frames, unknown
//! opcodes and wrong-length payloads all come back as [`CodecError`]
//! values — never a panic — because a serving front-end's parser is
//! exactly the code an arbitrary peer gets to exercise.
//!
//! ## Versioning
//!
//! The protocol has two negotiated versions. A connection starts at
//! [`PROTO_V1`]; a client that opens with [`Request::Hello`] negotiates
//! up to [`PROTO_V2`] (the server answers [`Response::HelloAck`] with
//! the granted version and feature bits). v1 framing is a strict subset
//! — a v1 client that never sends `Hello` sees exactly the PR 7/8 wire
//! format, including the 80-byte `StatsReply` — and the v2 additions
//! are either new opcodes or length-distinguished extensions of
//! existing replies, so both generations decode with the same
//! [`decode_response`].
//!
//! Fixed-layout frames keep their field order in one place: each
//! carries a struct with a `WIRE_FIELDS` name list and
//! `to_wire`/`from_wire` word arrays (the PR 8 `StatsReply` pattern),
//! and the codec tests assert name-by-name that byte offset `i * 8`
//! really carries `WIRE_FIELDS[i]`.
//!
//! | opcode | frame | payload after the opcode byte |
//! |---|---|---|
//! | `0x01` | [`Request::Submit`] | [`Submit`]: `req_id u64, prio u64, work_ns u64` |
//! | `0x02` | [`Request::Ping`] | `token u64` |
//! | `0x03` | [`Request::Stats`] | — |
//! | `0x04` | [`Request::Drain`] | — |
//! | `0x05` | [`Request::Metrics`] | — |
//! | `0x06` | [`Request::Hello`] | [`Hello`]: `version u64, features u64` |
//! | `0x07` | [`Request::SubmitV2`] | [`SubmitV2`]: `req_id u64, deadline u64, work_ns u64, flags u8` |
//! | `0x81` | [`Response::Accepted`] | `req_id u64` |
//! | `0x82` | [`Response::Rejected`] | `req_id u64, code u8` |
//! | `0x83` | [`Response::Completed`] | [`Completed`]: `req_id u64, sojourn_ns u64, inject_ns u64` |
//! | `0x84` | [`Response::Pong`] | `token u64` |
//! | `0x85` | [`Response::Drained`] | `completed u64` |
//! | `0x86` | [`Response::Stats`] | [`StatsReply`], ten `u64`s (v1) or fifteen (v2) |
//! | `0x87` | [`Response::Metrics`] | [`MetricsReply`]: histogram blocks, counters, gauges (+ deadline block on v2) |
//! | `0x88` | [`Response::HelloAck`] | [`HelloAck`]: `version u64, features u64, server_now_ns u64` |
//! | `0x89` | [`Response::CompletedV2`] | [`CompletedV2`]: five `u64`s + `met u8` |

use rsched_queues::telemetry::{HistSnapshot, TelemetrySnapshot, HIST_BUCKETS};
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload. The largest legitimate frame
/// ([`Response::Metrics`] at v2, whose six histogram blocks carry full
/// 64-bucket arrays plus 128 worker gauges) is 4481 bytes; the slack
/// leaves room for protocol growth while still rejecting nonsense
/// headers instantly. v1 peers (compiled with the old 4096 ceiling)
/// only ever receive v1 frames, which all fit under 4096.
pub const MAX_FRAME: usize = 8192;

/// The original protocol: implicit, no handshake. `Submit.prio` is an
/// opaque word the server overwrites with its own arrival stamp.
pub const PROTO_V1: u64 = 1;
/// The deadline-aware protocol: negotiated via [`Request::Hello`].
/// Adds [`Request::SubmitV2`] (client-set deadlines),
/// [`Response::CompletedV2`] (met/missed verdicts), and the extended
/// Stats/Metrics replies.
pub const PROTO_V2: u64 = 2;

/// Feature bit in [`Hello::features`] / [`HelloAck::features`]:
/// the client asks the server to schedule its deadline-carrying
/// submissions earliest-deadline-first (the deadline becomes the queue
/// priority). Without the grant, deadlines are still tracked and
/// verdicts still reported, but scheduling order stays arrival-order —
/// which is exactly what makes `arrival` vs `edf` an A/B axis at the
/// same offered load.
pub const FEAT_EDF: u64 = 1 << 0;

/// Why a frame failed to decode. Every variant is an expected condition
/// of talking to an arbitrary peer — the connection loop reports it and
/// closes, nothing panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended mid-frame (header or payload).
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The header announced a payload larger than [`MAX_FRAME`].
    Oversized(usize),
    /// Empty payload (a frame must carry at least its opcode byte).
    Empty,
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// Known opcode, wrong payload length (or an invalid flag byte).
    BadPayload {
        /// The opcode whose payload was malformed.
        opcode: u8,
        /// The malformed payload's length.
        len: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            CodecError::Oversized(len) => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME})")
            }
            CodecError::Empty => write!(f, "empty frame payload"),
            CodecError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            CodecError::BadPayload { opcode, len } => {
                write!(f, "bad payload length {len} for opcode {opcode:#04x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Why the server refused a submission — carried in
/// [`Response::Rejected`] so clients can distinguish backpressure from
/// lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The bounded admission queue is full: back off and retry.
    QueueFull = 1,
    /// The connection is draining; no new work on this socket.
    Draining = 2,
    /// The server is shutting down.
    Shutdown = 3,
    /// A [`Request::Hello`] asked for a protocol version this server
    /// cannot speak (currently: version 0). Carried with `req_id = 0`;
    /// the server closes the connection after sending it.
    BadVersion = 4,
}

impl RejectCode {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(RejectCode::QueueFull),
            2 => Some(RejectCode::Draining),
            3 => Some(RejectCode::Shutdown),
            4 => Some(RejectCode::BadVersion),
            _ => None,
        }
    }
}

/// Generates the `WIRE_FIELDS` / `to_wire` / `from_wire` / `field`
/// quartet for a fixed-layout frame struct whose wire image is a run of
/// `u64` words in declaration order. The name list is the single source
/// of truth for the layout; the sentinel tests walk it offset by
/// offset.
macro_rules! wire_table {
    // Structs whose wire image also carries trailing flag *bytes*
    // (bools after the word run): the words are table-driven, the
    // flags decode separately and default to false out of `from_wire`.
    ($ty:ty, $n:literal, [$($f:ident),+ $(,)?], flags: [$($x:ident),+ $(,)?]) => {
        impl $ty {
            /// The wire word order, by field name. Byte offset `i * 8`
            /// of the frame body carries `WIRE_FIELDS[i]` — asserted
            /// name-by-name in the codec's sentinel tests, so a silent
            /// reorder cannot ship. Flag bytes follow the word run and
            /// are not part of this table.
            pub const WIRE_FIELDS: [&'static str; $n] = [$(stringify!($f)),+];

            /// The wire words, in [`WIRE_FIELDS`](Self::WIRE_FIELDS) order.
            pub fn to_wire(&self) -> [u64; $n] {
                [$(self.$f),+]
            }

            /// Rebuild from wire words in
            /// [`WIRE_FIELDS`](Self::WIRE_FIELDS) order; flag fields
            /// start false and are set by the frame decoder.
            pub fn from_wire(w: [u64; $n]) -> Self {
                let [$($f),+] = w;
                Self { $($f,)+ $($x: false),+ }
            }

            /// Field value by wire name (`None` for unknown names) —
            /// lets tests and exporters walk
            /// [`WIRE_FIELDS`](Self::WIRE_FIELDS) without a parallel
            /// positional list.
            pub fn field(&self, name: &str) -> Option<u64> {
                match name {
                    $(stringify!($f) => Some(self.$f),)+
                    _ => None,
                }
            }
        }
    };
    ($ty:ty, $n:literal, [$($f:ident),+ $(,)?]) => {
        impl $ty {
            /// The wire word order, by field name. Byte offset `i * 8`
            /// of the frame body carries `WIRE_FIELDS[i]` — asserted
            /// name-by-name in the codec's sentinel tests, so a silent
            /// reorder cannot ship.
            pub const WIRE_FIELDS: [&'static str; $n] = [$(stringify!($f)),+];

            /// The wire words, in [`WIRE_FIELDS`](Self::WIRE_FIELDS) order.
            pub fn to_wire(&self) -> [u64; $n] {
                [$(self.$f),+]
            }

            /// Rebuild from wire words in
            /// [`WIRE_FIELDS`](Self::WIRE_FIELDS) order.
            pub fn from_wire(w: [u64; $n]) -> Self {
                let [$($f),+] = w;
                Self { $($f),+ }
            }

            /// Field value by wire name (`None` for unknown names) —
            /// lets tests and exporters walk
            /// [`WIRE_FIELDS`](Self::WIRE_FIELDS) without a parallel
            /// positional list.
            pub fn field(&self, name: &str) -> Option<u64> {
                match name {
                    $(stringify!($f) => Some(self.$f),)+
                    _ => None,
                }
            }
        }
    };
}

/// The v1 submission body: `prio` is an opaque scheduling word. The
/// server ignores it (it stamps its own arrival clock), but it stays on
/// the wire for v1 compatibility.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Submit {
    /// Client-chosen id, echoed on every response about this request.
    pub req_id: u64,
    /// Legacy priority word (ignored by the server since v2).
    pub prio: u64,
    /// Synthetic service time the worker spends on the task, ns.
    pub work_ns: u64,
}

wire_table!(Submit, 3, [req_id, prio, work_ns]);

/// The v2 submission body: the scheduling word is a client-set
/// **deadline**. `flags` bit 0 selects the timebase: set = `deadline`
/// is absolute nanoseconds on the server's monotonic clock (as learned
/// from [`HelloAck::server_now_ns`]); clear = `deadline` is a relative
/// budget in nanoseconds from server receipt. All other flag bits must
/// be zero. Deadline arithmetic on the server saturates, so
/// `u64::MAX` budgets mean "effectively never misses" rather than
/// wrapping into the past.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitV2 {
    /// Client-chosen id, echoed on every response about this request.
    pub req_id: u64,
    /// Deadline: absolute server-clock ns, or a relative budget
    /// (see [`SubmitV2::absolute`]).
    pub deadline: u64,
    /// Synthetic service time the worker spends on the task, ns.
    pub work_ns: u64,
    /// Timebase flag (wire flag bit 0): absolute vs relative budget.
    pub absolute: bool,
}

wire_table!(SubmitV2, 3, [req_id, deadline, work_ns], flags: [absolute]);

/// The v1 completion body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Completed {
    /// Echo of the submission's id.
    pub req_id: u64,
    /// Submit→complete as measured by the server, ns.
    pub sojourn_ns: u64,
    /// Submit→inject prefix of the sojourn, ns.
    pub inject_ns: u64,
}

wire_table!(Completed, 3, [req_id, sojourn_ns, inject_ns]);

/// The v2 completion body: every deadline-carrying task reports its
/// verdict. `tardiness_ns` is `completion - deadline` saturated at zero
/// (a met deadline has tardiness 0), `met` is the boolean verdict.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompletedV2 {
    /// Echo of the submission's id.
    pub req_id: u64,
    /// Submit→complete as measured by the server, ns.
    pub sojourn_ns: u64,
    /// Submit→inject prefix of the sojourn, ns.
    pub inject_ns: u64,
    /// The absolute deadline the server held the task to, server-clock ns.
    pub deadline_ns: u64,
    /// `max(0, completion - deadline)`, ns.
    pub tardiness_ns: u64,
    /// Wire flag byte: did the task complete by its deadline?
    pub met: bool,
}

wire_table!(
    CompletedV2,
    5,
    [req_id, sojourn_ns, inject_ns, deadline_ns, tardiness_ns],
    flags: [met]
);

/// The client's opening handshake. Optional: a connection that submits
/// without one is a v1 connection. `version` is the highest protocol
/// the client speaks; `features` the capabilities it requests (the
/// server grants the intersection with its own).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hello {
    /// Highest protocol version the client speaks.
    pub version: u64,
    /// Requested feature bits ([`FEAT_EDF`], ...).
    pub features: u64,
}

wire_table!(Hello, 2, [version, features]);

/// The server's handshake answer: the negotiated version
/// (`min(client, server)`), the granted feature bits, and the server's
/// monotonic clock at reply time — the epoch clients use to convert
/// wall deadlines into absolute [`SubmitV2::deadline`] values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HelloAck {
    /// Negotiated protocol version for this connection.
    pub version: u64,
    /// Granted feature bits (subset of the request).
    pub features: u64,
    /// The server's monotonic clock at reply time, ns since its epoch.
    pub server_now_ns: u64,
}

wire_table!(HelloAck, 3, [version, features, server_now_ns]);

/// Client → server frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one task (v1 body).
    Submit(Submit),
    /// Submit one deadline-carrying task (v2 body). Accepted on any
    /// connection that negotiated [`PROTO_V2`].
    SubmitV2(SubmitV2),
    /// Liveness probe; the server echoes the token in a [`Response::Pong`].
    Ping { token: u64 },
    /// Ask for a [`StatsReply`] snapshot.
    Stats,
    /// Graceful per-connection drain: the server stops reading this
    /// socket, finishes every task it accepted from it, then sends
    /// [`Response::Drained`] and closes.
    Drain,
    /// Ask for a [`MetricsReply`] — the live telemetry exposition: the
    /// full process telemetry snapshot plus gauge samples.
    Metrics,
    /// Version/feature handshake; answered with [`Response::HelloAck`].
    Hello(Hello),
}

/// Server → client frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The submission passed admission and was injected into the pool.
    Accepted { req_id: u64 },
    /// The submission was refused; no task was created and no serving
    /// state was touched (reject paths are side-effect-free beyond the
    /// `rejected` counter).
    Rejected { req_id: u64, code: RejectCode },
    /// The task finished (v1 body — replies to [`Request::Submit`]).
    Completed(Completed),
    /// The task finished with a deadline verdict (replies to
    /// [`Request::SubmitV2`]).
    CompletedV2(CompletedV2),
    /// [`Request::Ping`] echo.
    Pong { token: u64 },
    /// Drain finished: every task accepted on this connection has
    /// completed (`completed` counts them, over the connection's life).
    Drained { completed: u64 },
    /// [`Request::Stats`] answer.
    Stats(StatsReply),
    /// [`Request::Metrics`] answer. Boxed: the reply is ~4 KB of
    /// histogram blocks, and the enum rides writer channels whose
    /// common traffic is 24-byte `Completed`s.
    Metrics(Box<MetricsReply>),
    /// [`Request::Hello`] answer.
    HelloAck(HelloAck),
}

/// Server-side counters and sojourn quantiles, as reported over the
/// wire. Quantiles come from the server's log₂ `PowHistogram`s, so they
/// are conservative bucket upper bounds in nanoseconds.
///
/// The v1 frame carries the first [`StatsReply::V1_WORDS`] words; the
/// v2 frame appends the deadline block (`deadline_met` onward). Both
/// lengths decode — missing fields come back zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Submissions seen (accepted + rejected).
    pub submitted: u64,
    /// Submissions that passed admission.
    pub accepted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks currently queued or running (`accepted - completed`).
    pub in_flight: u64,
    /// Median submit→complete sojourn, ns.
    pub sojourn_p50: u64,
    /// 99th-percentile sojourn, ns.
    pub sojourn_p99: u64,
    /// 99.9th-percentile sojourn, ns.
    pub sojourn_p999: u64,
    /// Largest observed sojourn bucket, ns.
    pub sojourn_max: u64,
    /// 99th-percentile submit→inject prefix, ns.
    pub inject_p99: u64,
    /// Deadline-carrying completions that met their deadline.
    pub deadline_met: u64,
    /// Deadline-carrying completions that missed.
    pub deadline_misses: u64,
    /// `deadline_misses` per thousand deadline-carrying completions
    /// (0 when none have completed).
    pub miss_permille: u64,
    /// 99th-percentile tardiness over deadline-carrying completions,
    /// ns (met deadlines record tardiness 0).
    pub tardiness_p99: u64,
    /// 99.9th-percentile tardiness, ns.
    pub tardiness_p999: u64,
}

wire_table!(
    StatsReply,
    15,
    [
        submitted,
        accepted,
        rejected,
        completed,
        in_flight,
        sojourn_p50,
        sojourn_p99,
        sojourn_p999,
        sojourn_max,
        inject_p99,
        deadline_met,
        deadline_misses,
        miss_permille,
        tardiness_p99,
        tardiness_p999,
    ]
);

impl StatsReply {
    /// How many leading [`WIRE_FIELDS`](Self::WIRE_FIELDS) words the v1
    /// frame carries (everything before the deadline block).
    pub const V1_WORDS: usize = 10;
}

/// The live telemetry exposition carried by [`Response::Metrics`]: the
/// **full** process [`TelemetrySnapshot`] — all five per-op histogram
/// series with their complete 64-bucket arrays and derived quantiles,
/// the event counters, the epoch-GC deltas — plus gauge samples from
/// the serving layer's lightweight sampler. On v2 connections a
/// deadline block rides after the gauges: the full tardiness histogram
/// and the [`MetricsReply::DEADLINE_FIELDS`] counters.
///
/// Wire layout after the opcode byte (all `u64` LE):
///
/// | block | words |
/// |---|---|
/// | histograms ×5, in order retry/steal/sweep/floor/tick | each `count, p50, p90, p99, p999, max` + 64 buckets |
/// | counters | `empty_pops, registry_probes, seg_installs, flush_published, flush_merged, gc_deferred, gc_collected` |
/// | gauges | `in_flight`, `n_workers`, then `n_workers` per-worker busy-permille samples |
/// | v2 only: deadline block | tardiness histogram (same shape), then `deadline_met, deadline_misses, miss_permille` |
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReply {
    /// Everything recorded since the server's telemetry window opened
    /// (server start, or an explicit reset).
    pub telemetry: TelemetrySnapshot,
    /// Tasks admitted but not yet completed, at reply time.
    pub in_flight: u64,
    /// Per-worker busy time since the previous `Metrics` poll, in
    /// permille of the elapsed wall interval (0 = idle, 1000 = fully
    /// busy), indexed by worker id.
    pub utilization_permille: Vec<u64>,
    /// Tardiness histogram over deadline-carrying completions, ns
    /// (v2 frames only; zero/empty on a v1 frame).
    pub tardiness: HistSnapshot,
    /// Deadline-carrying completions that met their deadline (v2 only).
    pub deadline_met: u64,
    /// Deadline-carrying completions that missed (v2 only).
    pub deadline_misses: u64,
    /// Misses per thousand deadline-carrying completions (v2 only).
    pub miss_permille: u64,
}

impl MetricsReply {
    /// The scalar counter block's wire order, by
    /// [`TelemetrySnapshot`] field name — byte offsets within the
    /// counter block follow this list, asserted by the sentinel tests.
    pub const COUNTER_FIELDS: [&'static str; 7] = [
        "empty_pops",
        "registry_probes",
        "seg_installs",
        "flush_published",
        "flush_merged",
        "gc_deferred",
        "gc_collected",
    ];

    /// The v2 deadline block's trailing scalar words, in wire order
    /// (they follow the tardiness histogram block).
    pub const DEADLINE_FIELDS: [&'static str; 3] =
        ["deadline_met", "deadline_misses", "miss_permille"];

    /// Counter-block word by wire name, reading through to the
    /// underlying telemetry snapshot.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let t = &self.telemetry;
        Some(match name {
            "empty_pops" => t.empty_pops,
            "registry_probes" => t.registry_probes,
            "seg_installs" => t.seg_installs,
            "flush_published" => t.flush_published,
            "flush_merged" => t.flush_merged,
            "gc_deferred" => t.gc_deferred,
            "gc_collected" => t.gc_collected,
            _ => return None,
        })
    }

    /// Deadline-block scalar by wire name.
    pub fn deadline_field(&self, name: &str) -> Option<u64> {
        Some(match name {
            "deadline_met" => self.deadline_met,
            "deadline_misses" => self.deadline_misses,
            "miss_permille" => self.miss_permille,
            _ => return None,
        })
    }
}

/// Wire size of one histogram block: the six derived words plus the
/// full bucket array.
const HIST_WIRE_WORDS: usize = 6 + HIST_BUCKETS;
/// [`MetricsReply`] payload length before the variable per-worker gauge
/// words (opcode byte included).
const METRICS_FIXED: usize = 1 + (5 * HIST_WIRE_WORDS + 7 + 2) * 8;
/// The v2 deadline block appended after the gauges: one histogram plus
/// the three scalar words.
const METRICS_DEADLINE_BYTES: usize = (HIST_WIRE_WORDS + 3) * 8;
/// Per-worker gauge entries are capped so the frame stays under
/// [`MAX_FRAME`] whatever the pool width; pools wider than this report
/// their first 128 workers.
pub const METRICS_MAX_WORKERS: usize = 128;

const OP_SUBMIT: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_DRAIN: u8 = 0x04;
const OP_METRICS: u8 = 0x05;
const OP_HELLO: u8 = 0x06;
const OP_SUBMIT2: u8 = 0x07;
const OP_ACCEPTED: u8 = 0x81;
const OP_REJECTED: u8 = 0x82;
const OP_COMPLETED: u8 = 0x83;
const OP_PONG: u8 = 0x84;
const OP_DRAINED: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;
const OP_METRICS_REPLY: u8 = 0x87;
const OP_HELLO_ACK: u8 = 0x88;
const OP_COMPLETED2: u8 = 0x89;

fn u64_at(payload: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[off..off + 8]);
    u64::from_le_bytes(b)
}

fn frame(out: &mut Vec<u8>, payload_len: usize) {
    debug_assert!(payload_len <= MAX_FRAME);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

fn put_words<const N: usize>(out: &mut Vec<u8>, words: [u64; N]) {
    for v in words {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append the full frame (header + payload) for `req` to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Submit(s) => {
            frame(out, 25);
            out.push(OP_SUBMIT);
            put_words(out, s.to_wire());
        }
        Request::SubmitV2(s) => {
            frame(out, 26);
            out.push(OP_SUBMIT2);
            put_words(out, s.to_wire());
            out.push(s.absolute as u8);
        }
        Request::Ping { token } => {
            frame(out, 9);
            out.push(OP_PING);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Request::Stats => {
            frame(out, 1);
            out.push(OP_STATS);
        }
        Request::Drain => {
            frame(out, 1);
            out.push(OP_DRAIN);
        }
        Request::Metrics => {
            frame(out, 1);
            out.push(OP_METRICS);
        }
        Request::Hello(h) => {
            frame(out, 17);
            out.push(OP_HELLO);
            put_words(out, h.to_wire());
        }
    }
}

fn encode_hist(h: &HistSnapshot, out: &mut Vec<u8>) {
    for v in [h.count, h.p50, h.p90, h.p99, h.p999, h.max] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    // Always exactly HIST_BUCKETS words: a default-constructed snapshot
    // has an empty bucket vec and encodes as zeros.
    for i in 0..HIST_BUCKETS {
        let b = h.buckets.get(i).copied().unwrap_or(0);
        out.extend_from_slice(&b.to_le_bytes());
    }
}

fn decode_hist(body: &[u8], off: usize) -> HistSnapshot {
    let f = |i: usize| u64_at(body, off + i * 8);
    HistSnapshot {
        count: f(0),
        p50: f(1),
        p90: f(2),
        p99: f(3),
        p999: f(4),
        max: f(5),
        buckets: (0..HIST_BUCKETS).map(|i| f(6 + i)).collect(),
    }
}

/// Append the full frame (header + payload) for `resp` to `out`,
/// encoded for a connection that negotiated `version`. Only the
/// [`Response::Stats`] and [`Response::Metrics`] layouts depend on it
/// (v1 peers get the original shorter frames, with the deadline blocks
/// dropped); every other frame encodes identically at either version.
pub fn encode_response(resp: &Response, version: u64, out: &mut Vec<u8>) {
    match resp {
        Response::Accepted { req_id } => {
            frame(out, 9);
            out.push(OP_ACCEPTED);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        Response::Rejected { req_id, code } => {
            frame(out, 10);
            out.push(OP_REJECTED);
            out.extend_from_slice(&req_id.to_le_bytes());
            out.push(*code as u8);
        }
        Response::Completed(c) => {
            frame(out, 25);
            out.push(OP_COMPLETED);
            put_words(out, c.to_wire());
        }
        Response::CompletedV2(c) => {
            frame(out, 42);
            out.push(OP_COMPLETED2);
            put_words(out, c.to_wire());
            out.push(c.met as u8);
        }
        Response::Pong { token } => {
            frame(out, 9);
            out.push(OP_PONG);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Response::Drained { completed } => {
            frame(out, 9);
            out.push(OP_DRAINED);
            out.extend_from_slice(&completed.to_le_bytes());
        }
        Response::Stats(s) => {
            // One canonical field order: `to_wire` (named fields, same
            // list `from_wire` destructures) is the only place the
            // layout lives. v1 peers get the leading V1_WORDS words.
            let words = if version >= PROTO_V2 {
                StatsReply::WIRE_FIELDS.len()
            } else {
                StatsReply::V1_WORDS
            };
            frame(out, 1 + words * 8);
            out.push(OP_STATS_REPLY);
            for v in s.to_wire().into_iter().take(words) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(m) => {
            let workers = m.utilization_permille.len().min(METRICS_MAX_WORKERS);
            let deadline = if version >= PROTO_V2 {
                METRICS_DEADLINE_BYTES
            } else {
                0
            };
            frame(out, METRICS_FIXED + workers * 8 + deadline);
            out.push(OP_METRICS_REPLY);
            let t = &m.telemetry;
            for h in [&t.retry, &t.steal, &t.sweep, &t.floor, &t.tick] {
                encode_hist(h, out);
            }
            for name in MetricsReply::COUNTER_FIELDS {
                let v = m.counter(name).expect("COUNTER_FIELDS is exhaustive");
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&m.in_flight.to_le_bytes());
            out.extend_from_slice(&(workers as u64).to_le_bytes());
            for u in m.utilization_permille.iter().take(workers) {
                out.extend_from_slice(&u.to_le_bytes());
            }
            if deadline > 0 {
                encode_hist(&m.tardiness, out);
                for name in MetricsReply::DEADLINE_FIELDS {
                    let v = m
                        .deadline_field(name)
                        .expect("DEADLINE_FIELDS is exhaustive");
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Response::HelloAck(a) => {
            frame(out, 25);
            out.push(OP_HELLO_ACK);
            put_words(out, a.to_wire());
        }
    }
}

fn expect_len(opcode: u8, payload: &[u8], want: usize) -> Result<(), CodecError> {
    if payload.len() == want {
        Ok(())
    } else {
        Err(CodecError::BadPayload {
            opcode,
            len: payload.len(),
        })
    }
}

/// Decode a wire flag byte that must be 0 or 1; anything else is a
/// malformed payload, not a silent truth-coercion.
fn expect_bool(opcode: u8, payload: &[u8], byte: u8) -> Result<bool, CodecError> {
    match byte {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::BadPayload {
            opcode,
            len: payload.len(),
        }),
    }
}

fn words_at<const N: usize>(body: &[u8], off: usize) -> [u64; N] {
    std::array::from_fn(|i| u64_at(body, off + i * 8))
}

/// Decode one request payload (the bytes after the length header).
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let (&opcode, body) = payload.split_first().ok_or(CodecError::Empty)?;
    match opcode {
        OP_SUBMIT => {
            expect_len(opcode, body, 24)?;
            Ok(Request::Submit(Submit::from_wire(words_at(body, 0))))
        }
        OP_SUBMIT2 => {
            expect_len(opcode, body, 25)?;
            let mut s = SubmitV2::from_wire(words_at(body, 0));
            s.absolute = expect_bool(opcode, body, body[24])?;
            Ok(Request::SubmitV2(s))
        }
        OP_PING => {
            expect_len(opcode, body, 8)?;
            Ok(Request::Ping {
                token: u64_at(body, 0),
            })
        }
        OP_STATS => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Stats)
        }
        OP_DRAIN => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Drain)
        }
        OP_METRICS => {
            expect_len(opcode, body, 0)?;
            Ok(Request::Metrics)
        }
        OP_HELLO => {
            expect_len(opcode, body, 16)?;
            Ok(Request::Hello(Hello::from_wire(words_at(body, 0))))
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Decode one response payload (the bytes after the length header).
pub fn decode_response(payload: &[u8]) -> Result<Response, CodecError> {
    let (&opcode, body) = payload.split_first().ok_or(CodecError::Empty)?;
    match opcode {
        OP_ACCEPTED => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Accepted {
                req_id: u64_at(body, 0),
            })
        }
        OP_REJECTED => {
            expect_len(opcode, body, 9)?;
            let code = RejectCode::from_u8(body[8]).ok_or(CodecError::BadPayload {
                opcode,
                len: body.len(),
            })?;
            Ok(Response::Rejected {
                req_id: u64_at(body, 0),
                code,
            })
        }
        OP_COMPLETED => {
            expect_len(opcode, body, 24)?;
            Ok(Response::Completed(Completed::from_wire(words_at(body, 0))))
        }
        OP_COMPLETED2 => {
            expect_len(opcode, body, 41)?;
            let mut c = CompletedV2::from_wire(words_at(body, 0));
            c.met = expect_bool(opcode, body, body[40])?;
            Ok(Response::CompletedV2(c))
        }
        OP_PONG => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Pong {
                token: u64_at(body, 0),
            })
        }
        OP_DRAINED => {
            expect_len(opcode, body, 8)?;
            Ok(Response::Drained {
                completed: u64_at(body, 0),
            })
        }
        OP_STATS_REPLY => {
            // Length-distinguished versions: 10 words from a v1 server,
            // 15 from v2. Missing trailing fields decode as zero.
            let n = StatsReply::WIRE_FIELDS.len();
            if body.len() != StatsReply::V1_WORDS * 8 && body.len() != n * 8 {
                return Err(CodecError::BadPayload {
                    opcode,
                    len: body.len(),
                });
            }
            let mut w = [0u64; 15];
            for (i, slot) in w.iter_mut().enumerate().take(body.len() / 8) {
                *slot = u64_at(body, i * 8);
            }
            Ok(Response::Stats(StatsReply::from_wire(w)))
        }
        OP_METRICS_REPLY => {
            // Fixed blocks plus a self-describing per-worker gauge tail:
            // the declared worker count must match the frame exactly —
            // either the v1 length or the v1 length plus the deadline
            // block.
            let fixed = METRICS_FIXED - 1;
            if body.len() < fixed {
                return Err(CodecError::BadPayload {
                    opcode,
                    len: body.len(),
                });
            }
            let hists: Vec<HistSnapshot> = (0..5)
                .map(|h| decode_hist(body, h * HIST_WIRE_WORDS * 8))
                .collect();
            let counters_off = 5 * HIST_WIRE_WORDS * 8;
            let c = |i: usize| u64_at(body, counters_off + i * 8);
            let in_flight = c(7);
            let workers = c(8) as usize;
            let v1_len = fixed + workers * 8;
            let v2_len = v1_len + METRICS_DEADLINE_BYTES;
            if workers > METRICS_MAX_WORKERS || (body.len() != v1_len && body.len() != v2_len) {
                return Err(CodecError::BadPayload {
                    opcode,
                    len: body.len(),
                });
            }
            let gauges_off = counters_off + 9 * 8;
            let utilization_permille = (0..workers)
                .map(|i| u64_at(body, gauges_off + i * 8))
                .collect();
            let (tardiness, deadline_met, deadline_misses, miss_permille) = if body.len() == v2_len
            {
                let off = gauges_off + workers * 8;
                let scalars = off + HIST_WIRE_WORDS * 8;
                (
                    decode_hist(body, off),
                    u64_at(body, scalars),
                    u64_at(body, scalars + 8),
                    u64_at(body, scalars + 16),
                )
            } else {
                (HistSnapshot::default(), 0, 0, 0)
            };
            let mut it = hists.into_iter();
            let (retry, steal, sweep, floor, tick) = (
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
            );
            Ok(Response::Metrics(Box::new(MetricsReply {
                telemetry: TelemetrySnapshot {
                    retry,
                    steal,
                    sweep,
                    floor,
                    tick,
                    empty_pops: c(0),
                    registry_probes: c(1),
                    seg_installs: c(2),
                    flush_published: c(3),
                    flush_merged: c(4),
                    gc_deferred: c(5),
                    gc_collected: c(6),
                    // The wire format carries the five original series;
                    // newer snapshot fields (flat-combining batch stats)
                    // decode as empty.
                    ..Default::default()
                },
                in_flight,
                utilization_permille,
                tardiness,
                deadline_met,
                deadline_misses,
                miss_permille,
            })))
        }
        OP_HELLO_ACK => {
            expect_len(opcode, body, 24)?;
            Ok(Response::HelloAck(HelloAck::from_wire(words_at(body, 0))))
        }
        other => Err(CodecError::UnknownOpcode(other)),
    }
}

/// Read exactly `buf.len()` bytes; `Ok(false)` if the stream ended
/// *cleanly* before the first byte, `Err(Truncated)` if it ended
/// mid-read.
///
/// A read timeout *between* frames is how connection loops poll their
/// shutdown flag — it propagates when `mid_frame` is false and no byte
/// has arrived yet. Once inside a frame the remaining bytes are already
/// in flight: timeouts retry, or the partial header/payload we consumed
/// would desync the stream. A peer that stalls forever mid-frame is
/// unblocked by the server shutting the socket down (read returns 0 →
/// `Truncated`).
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8], mid_frame: bool) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && !mid_frame {
                    return Ok(false);
                }
                return Err(CodecError::Truncated {
                    needed: buf.len(),
                    got,
                }
                .into());
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (got > 0 || mid_frame)
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one frame into `buf` (replacing its contents with the payload).
///
/// Returns `Ok(false)` on a clean end of stream at a frame boundary.
/// Truncation inside a frame, an oversized header and I/O failures all
/// surface as `Err`; the caller must not interpret the buffer then.
/// Timeout errors (`WouldBlock`/`TimedOut`) pass through untouched so
/// connection loops can poll a shutdown flag — but only when they occur
/// before the first header byte; a timeout mid-frame is truncation.
pub fn read_frame<R: Read + ?Sized>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header, false)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::Oversized(len).into());
    }
    if len == 0 {
        return Err(CodecError::Empty.into());
    }
    buf.clear();
    buf.resize(len, 0);
    read_full(r, buf, true)?;
    Ok(true)
}

/// Encode `resp` at `version` and write the frame (no flush).
pub fn write_response<W: Write + ?Sized>(
    w: &mut W,
    resp: &Response,
    version: u64,
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(32);
    encode_response(resp, version, &mut buf);
    w.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        encode_request(&req, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), req);
        // Nothing after the frame: the next read is a clean EOF.
        assert!(!read_frame(&mut cursor, &mut payload).unwrap());
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        encode_response(&resp, PROTO_V2, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    /// A fully-populated histogram snapshot (64-element bucket array,
    /// like every snapshot `telemetry::capture` produces — the wire
    /// always carries the full array).
    fn hist(seed: u64) -> HistSnapshot {
        HistSnapshot {
            buckets: (0..HIST_BUCKETS as u64).map(|i| seed + i).collect(),
            count: seed * 100,
            p50: seed,
            p90: seed * 2,
            p99: seed * 4,
            p999: seed * 8,
            max: seed * 16,
        }
    }

    fn metrics_reply() -> MetricsReply {
        MetricsReply {
            telemetry: TelemetrySnapshot {
                retry: hist(1),
                steal: hist(2),
                sweep: hist(3),
                floor: hist(4),
                tick: hist(5),
                empty_pops: 11,
                registry_probes: 22,
                seg_installs: 33,
                flush_published: 44,
                flush_merged: 55,
                gc_deferred: 66,
                gc_collected: 77,
                // Not carried on the wire: the fixed 5-hist/7-counter
                // format predates the flat-combining series, so a
                // decoded snapshot always has them empty.
                ..Default::default()
            },
            in_flight: 9,
            utilization_permille: vec![1000, 517, 0, 250],
            tardiness: hist(6),
            deadline_met: 88,
            deadline_misses: 12,
            miss_permille: 120,
        }
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip_request(Request::Submit(Submit {
            req_id: u64::MAX,
            prio: 17,
            work_ns: 1_000_000,
        }));
        for absolute in [false, true] {
            roundtrip_request(Request::SubmitV2(SubmitV2 {
                req_id: 7,
                deadline: u64::MAX,
                work_ns: 20_000,
                absolute,
            }));
        }
        roundtrip_request(Request::Ping { token: 0xDEAD_BEEF });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Drain);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Hello(Hello {
            version: PROTO_V2,
            features: FEAT_EDF,
        }));
        roundtrip_response(Response::Accepted { req_id: 1 });
        for code in [
            RejectCode::QueueFull,
            RejectCode::Draining,
            RejectCode::Shutdown,
            RejectCode::BadVersion,
        ] {
            roundtrip_response(Response::Rejected { req_id: 2, code });
        }
        roundtrip_response(Response::Completed(Completed {
            req_id: 3,
            sojourn_ns: 123_456,
            inject_ns: 789,
        }));
        for met in [false, true] {
            roundtrip_response(Response::CompletedV2(CompletedV2 {
                req_id: 4,
                sojourn_ns: 55_555,
                inject_ns: 444,
                deadline_ns: 1_000_000,
                tardiness_ns: if met { 0 } else { 2_000 },
                met,
            }));
        }
        roundtrip_response(Response::Pong { token: 9 });
        roundtrip_response(Response::Drained { completed: 1_000 });
        roundtrip_response(Response::Stats(StatsReply {
            submitted: 10,
            accepted: 8,
            rejected: 2,
            completed: 7,
            in_flight: 1,
            sojourn_p50: 1023,
            sojourn_p99: 4095,
            sojourn_p999: 8191,
            sojourn_max: 16383,
            inject_p99: 255,
            deadline_met: 6,
            deadline_misses: 1,
            miss_permille: 142,
            tardiness_p99: 511,
            tardiness_p999: 1023,
        }));
        roundtrip_response(Response::HelloAck(HelloAck {
            version: PROTO_V2,
            features: FEAT_EDF,
            server_now_ns: 123_456_789,
        }));
        roundtrip_response(Response::Metrics(Box::new(metrics_reply())));
        // The gauge tail is genuinely variable-length: empty works too.
        roundtrip_response(Response::Metrics(Box::new(MetricsReply {
            utilization_permille: vec![],
            ..metrics_reply()
        })));
    }

    /// A v1-encoded Stats frame (80 bytes) still decodes — the deadline
    /// block comes back zero — and a v1-encoded Metrics frame drops the
    /// deadline block the same way. This is the compatibility contract
    /// for v1 clients talking to a v2 server and vice versa.
    #[test]
    fn v1_frames_decode_with_zero_deadline_blocks() {
        let full = StatsReply {
            submitted: 10,
            deadline_met: 7,
            deadline_misses: 3,
            miss_permille: 300,
            tardiness_p99: 99,
            tardiness_p999: 999,
            ..Default::default()
        };
        let mut wire = Vec::new();
        encode_response(&Response::Stats(full), PROTO_V1, &mut wire);
        assert_eq!(wire.len(), 4 + 1 + StatsReply::V1_WORDS * 8);
        match decode_response(&wire[4..]).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.submitted, 10);
                assert_eq!(
                    (s.deadline_met, s.deadline_misses, s.miss_permille),
                    (0, 0, 0),
                    "v1 frame must not carry the deadline block"
                );
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        let mut wire = Vec::new();
        encode_response(
            &Response::Metrics(Box::new(metrics_reply())),
            PROTO_V1,
            &mut wire,
        );
        match decode_response(&wire[4..]).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.telemetry.empty_pops, 11);
                assert_eq!(m.deadline_misses, 0);
                assert_eq!(m.tardiness, HistSnapshot::default());
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    /// Sentinel guard shared by every fixed-layout frame: each wire
    /// word must ride at the offset its name holds in `WIRE_FIELDS`.
    /// Distinct sentinels per field mean a reorder of
    /// `to_wire`/`from_wire` (or of the struct itself) fails here by
    /// name instead of silently swapping two counters.
    fn assert_field_order<const N: usize>(
        wire: &[u8],
        body_len: usize,
        fields: [&str; N],
        field: impl Fn(&str) -> u64,
    ) {
        let body = &wire[5..]; // length header + opcode byte
        assert_eq!(body.len(), body_len);
        for (i, name) in fields.iter().enumerate() {
            assert_eq!(
                u64_at(body, i * 8),
                field(name),
                "wire offset {i} must carry field `{name}`"
            );
            // Sentinels are distinct, so a swapped pair cannot pass.
            assert_eq!(field(name), 0xA1 + i as u64);
        }
    }

    #[test]
    fn stats_reply_field_order_is_named_end_to_end() {
        let w: [u64; 15] = std::array::from_fn(|i| 0xA1 + i as u64);
        let reply = StatsReply::from_wire(w);
        let mut wire = Vec::new();
        encode_response(&Response::Stats(reply), PROTO_V2, &mut wire);
        assert_field_order(&wire, 120, StatsReply::WIRE_FIELDS, |n| {
            reply.field(n).unwrap()
        });
        // And the decode side rebuilds by the same names.
        let decoded = decode_response(&wire[4..]).unwrap();
        assert_eq!(decoded, Response::Stats(reply));
    }

    #[test]
    fn submit_field_order_is_named_end_to_end() {
        let s = Submit::from_wire(std::array::from_fn(|i| 0xA1 + i as u64));
        let mut wire = Vec::new();
        encode_request(&Request::Submit(s), &mut wire);
        assert_field_order(&wire, 24, Submit::WIRE_FIELDS, |n| s.field(n).unwrap());
        assert_eq!(decode_request(&wire[4..]).unwrap(), Request::Submit(s));
    }

    #[test]
    fn submit_v2_field_order_is_named_end_to_end() {
        let mut s = SubmitV2::from_wire(std::array::from_fn(|i| 0xA1 + i as u64));
        s.absolute = true;
        let mut wire = Vec::new();
        encode_request(&Request::SubmitV2(s), &mut wire);
        assert_field_order(&wire, 25, SubmitV2::WIRE_FIELDS, |n| s.field(n).unwrap());
        // The flag byte rides after the word block.
        assert_eq!(wire[5 + 24], 1);
        assert_eq!(decode_request(&wire[4..]).unwrap(), Request::SubmitV2(s));
    }

    #[test]
    fn completed_field_order_is_named_end_to_end() {
        let c = Completed::from_wire(std::array::from_fn(|i| 0xA1 + i as u64));
        let mut wire = Vec::new();
        encode_response(&Response::Completed(c), PROTO_V1, &mut wire);
        assert_field_order(&wire, 24, Completed::WIRE_FIELDS, |n| c.field(n).unwrap());
        assert_eq!(decode_response(&wire[4..]).unwrap(), Response::Completed(c));
    }

    #[test]
    fn completed_v2_field_order_is_named_end_to_end() {
        let mut c = CompletedV2::from_wire(std::array::from_fn(|i| 0xA1 + i as u64));
        c.met = true;
        let mut wire = Vec::new();
        encode_response(&Response::CompletedV2(c), PROTO_V2, &mut wire);
        assert_field_order(&wire, 41, CompletedV2::WIRE_FIELDS, |n| c.field(n).unwrap());
        assert_eq!(wire[5 + 40], 1);
        assert_eq!(
            decode_response(&wire[4..]).unwrap(),
            Response::CompletedV2(c)
        );
    }

    #[test]
    fn hello_and_ack_field_order_is_named_end_to_end() {
        let h = Hello::from_wire(std::array::from_fn(|i| 0xA1 + i as u64));
        let mut wire = Vec::new();
        encode_request(&Request::Hello(h), &mut wire);
        assert_field_order(&wire, 16, Hello::WIRE_FIELDS, |n| h.field(n).unwrap());
        assert_eq!(decode_request(&wire[4..]).unwrap(), Request::Hello(h));

        let a = HelloAck::from_wire(std::array::from_fn(|i| 0xA1 + i as u64));
        let mut wire = Vec::new();
        encode_response(&Response::HelloAck(a), PROTO_V2, &mut wire);
        assert_field_order(&wire, 24, HelloAck::WIRE_FIELDS, |n| a.field(n).unwrap());
        assert_eq!(decode_response(&wire[4..]).unwrap(), Response::HelloAck(a));
    }

    /// The Metrics counter block and v2 deadline block are positional
    /// on the wire; this pins each scalar to its named offset the same
    /// way the frame structs pin theirs.
    #[test]
    fn metrics_scalar_blocks_are_named_end_to_end() {
        let m = metrics_reply();
        let mut wire = Vec::new();
        encode_response(&Response::Metrics(Box::new(m.clone())), PROTO_V2, &mut wire);
        let body = &wire[5..];
        let counters_off = 5 * HIST_WIRE_WORDS * 8;
        for (i, name) in MetricsReply::COUNTER_FIELDS.iter().enumerate() {
            assert_eq!(
                u64_at(body, counters_off + i * 8),
                m.counter(name).unwrap(),
                "counter offset {i} must carry `{name}`"
            );
        }
        let scalars_off = counters_off + 9 * 8 // in_flight + n_workers
            + m.utilization_permille.len() * 8
            + HIST_WIRE_WORDS * 8; // tardiness histogram
        for (i, name) in MetricsReply::DEADLINE_FIELDS.iter().enumerate() {
            assert_eq!(
                u64_at(body, scalars_off + i * 8),
                m.deadline_field(name).unwrap(),
                "deadline-block offset {i} must carry `{name}`"
            );
        }
    }

    /// Malformed deadline payloads — wrong lengths, invalid flag bytes,
    /// extreme values — are errors or valid extremes, never panics.
    #[test]
    fn malformed_deadline_payloads_never_panic() {
        // SubmitV2 with a flag byte that is neither 0 nor 1.
        let mut wire = Vec::new();
        encode_request(
            &Request::SubmitV2(SubmitV2 {
                req_id: 1,
                deadline: 2,
                work_ns: 3,
                absolute: false,
            }),
            &mut wire,
        );
        let mut payload = wire[4..].to_vec();
        *payload.last_mut().unwrap() = 2;
        assert!(matches!(
            decode_request(&payload),
            Err(CodecError::BadPayload { .. })
        ));
        // SubmitV2 truncated to the v1 Submit length.
        assert!(matches!(
            decode_request(&payload[..25]),
            Err(CodecError::BadPayload { .. })
        ));
        // CompletedV2 with a met byte out of range.
        let mut wire = Vec::new();
        encode_response(
            &Response::CompletedV2(CompletedV2::default()),
            PROTO_V2,
            &mut wire,
        );
        let mut payload = wire[4..].to_vec();
        *payload.last_mut().unwrap() = 7;
        assert!(matches!(
            decode_response(&payload),
            Err(CodecError::BadPayload { .. })
        ));
        // Hello with a short body.
        assert!(matches!(
            decode_request(&[OP_HELLO, 1, 2, 3]),
            Err(CodecError::BadPayload { .. })
        ));
        // Overflowing deadlines are legal wire values (the server
        // saturates); the codec must pass them through unchanged.
        let extreme = SubmitV2 {
            req_id: u64::MAX,
            deadline: u64::MAX,
            work_ns: u64::MAX,
            absolute: true,
        };
        let mut wire = Vec::new();
        encode_request(&Request::SubmitV2(extreme), &mut wire);
        assert_eq!(
            decode_request(&wire[4..]).unwrap(),
            Request::SubmitV2(extreme)
        );
        // Stats frames at any length other than the two versions fail.
        let mut bogus = vec![OP_STATS_REPLY];
        bogus.extend_from_slice(&[0u8; 88]);
        assert!(matches!(
            decode_response(&bogus),
            Err(CodecError::BadPayload { .. })
        ));
    }

    #[test]
    fn metrics_reply_bad_payloads_are_errors() {
        let mut wire = Vec::new();
        encode_response(
            &Response::Metrics(Box::new(metrics_reply())),
            PROTO_V2,
            &mut wire,
        );
        let payload = wire[4..].to_vec();
        // Truncating below the fixed blocks is a BadPayload.
        assert!(matches!(
            decode_response(&payload[..METRICS_FIXED - 9]),
            Err(CodecError::BadPayload { .. })
        ));
        // Chopping the deadline block in half leaves a length that is
        // neither v1 nor v2.
        assert!(matches!(
            decode_response(&payload[..payload.len() - 16]),
            Err(CodecError::BadPayload { .. })
        ));
        // A worker count that disagrees with the frame length is too.
        let mut lying = payload.clone();
        let n_off = METRICS_FIXED - 8; // n_workers word (opcode included)
        lying[n_off..n_off + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(matches!(
            decode_response(&lying),
            Err(CodecError::BadPayload { .. })
        ));
        // The largest legitimate frame still fits MAX_FRAME.
        let mut big = Vec::new();
        encode_response(
            &Response::Metrics(Box::new(MetricsReply {
                utilization_permille: vec![1000; METRICS_MAX_WORKERS + 50],
                ..metrics_reply()
            })),
            PROTO_V2,
            &mut big,
        );
        assert!(
            big.len() - 4 <= MAX_FRAME,
            "metrics frame exceeds MAX_FRAME"
        );
        match decode_response(&big[4..]).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(
                    m.utilization_permille.len(),
                    METRICS_MAX_WORKERS,
                    "gauge tail is capped, not rejected"
                );
                assert_eq!(m.deadline_met, 88, "deadline block survives the cap");
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
        // The v1 encoding of the same maximal reply stays under the
        // *old* 4096-byte ceiling — v1 peers never see a bigger frame.
        let mut v1 = Vec::new();
        encode_response(
            &Response::Metrics(Box::new(MetricsReply {
                utilization_permille: vec![1000; METRICS_MAX_WORKERS],
                ..metrics_reply()
            })),
            PROTO_V1,
            &mut v1,
        );
        assert!(v1.len() - 4 <= 4096, "v1 metrics frame exceeds old ceiling");
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut wire = Vec::new();
        encode_request(&Request::Ping { token: 1 }, &mut wire);
        encode_request(&Request::Drain, &mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Ping { token: 1 }
        );
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), Request::Drain);
        assert!(!read_frame(&mut cursor, &mut payload).unwrap());
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        // Header promises 25 bytes; stream ends after 10.
        let mut wire = Vec::new();
        encode_request(
            &Request::Submit(Submit {
                req_id: 1,
                prio: 2,
                work_ns: 3,
            }),
            &mut wire,
        );
        wire.truncate(4 + 10);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        // Truncated mid-header too.
        let mut cursor = io::Cursor::new(vec![9u8, 0]);
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
        assert!(
            payload.capacity() <= MAX_FRAME,
            "allocated for a bogus header"
        );
    }

    #[test]
    fn unknown_opcode_and_bad_lengths_are_errors() {
        assert_eq!(
            decode_request(&[0x7F]),
            Err(CodecError::UnknownOpcode(0x7F))
        );
        assert_eq!(
            decode_response(&[0x01]),
            Err(CodecError::UnknownOpcode(0x01))
        );
        assert_eq!(decode_request(&[]), Err(CodecError::Empty));
        // Submit with a short body.
        assert_eq!(
            decode_request(&[OP_SUBMIT, 1, 2, 3]),
            Err(CodecError::BadPayload {
                opcode: OP_SUBMIT,
                len: 3
            })
        );
        // Rejected with an out-of-range code byte.
        let mut body = vec![OP_REJECTED];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.push(99);
        assert!(matches!(
            decode_response(&body),
            Err(CodecError::BadPayload { .. })
        ));
        // Zero-length frame on the wire.
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }
}
