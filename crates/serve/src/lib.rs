//! rsched-serve — the open-system serving front-end over the relaxed
//! schedulers.
//!
//! Everything else in this repository measures the schedulers
//! *closed-loop*: seed a queue, drain it to quiescence, divide work by
//! wall-clock. A serving system is the opposite, *open* shape — tasks
//! arrive from outside at their own rate, the pool outlives any one of
//! them, and the quantity that matters is not throughput at saturation
//! but the **sojourn time** each request experiences at a given offered
//! load (the "Practically Wait-Free?" methodology: tails, not means).
//! This crate is that front-end, made of three layers:
//!
//! * [`codec`] — the wire protocol: length-prefixed binary frames
//!   (`u32` LE length, opcode byte, fixed-width LE fields), total
//!   decoding (truncated/oversized/unknown frames are errors, never
//!   panics), `MAX_FRAME`-bounded before any allocation.
//! * [`server`] — the connection machinery: a TCP or Unix-socket
//!   acceptor, a reader+writer thread pair per connection, bounded
//!   admission (`queue_cap` in-flight tasks, beyond which Submits get
//!   an explicit [`RejectCode::QueueFull`] instead of queueing), and
//!   per-request stamping at *submit*, *inject* and *complete* into
//!   lock-free `PowHistogram`s so sojourn quantiles are always one
//!   `Stats` frame away. Accepted tasks flow into the runtime through
//!   [`rsched_runtime::service()`] — the long-lived worker pool whose
//!   [`Injector`](rsched_runtime::Injector) handles let connection
//!   threads push into a running pool without being workers.
//! * [`client`] — a small synchronous client whose split halves
//!   ([`ClientSender`] / [`ClientReceiver`]) let an open-loop load
//!   generator submit and drain on separate threads.
//!
//! # Protocol versions and the v2 handshake
//!
//! The wire protocol is versioned. A connection that just starts
//! submitting is a **v1** peer: its Submit carries an opaque `prio`
//! word (ignored — the server schedules by arrival), and it receives
//! v1-shaped replies. A client that wants more opens with
//! [`Request::Hello`]`{version, features}`; the server answers
//! [`Response::HelloAck`] with the negotiated version (`min` of the two
//! sides — it never answers higher than asked), the granted feature
//! bits (the intersection with its own; [`FEAT_EDF`] is the only bit
//! today) and its current monotonic clock reading `server_now_ns`, the
//! timebase absolute deadlines are expressed in.
//!
//! At v2 the submission verb is [`Request::SubmitV2`]: the scheduling
//! word becomes a client-set **deadline**, either absolute server-clock
//! nanoseconds or a relative budget (flag bit 0 selects). On an
//! EDF-granted connection the deadline *is* the scheduling key —
//! earliest-deadline-first through whichever relaxed queue backs the
//! pool — and every completion comes back as
//! [`Response::CompletedV2`] with the met/missed verdict and the
//! tardiness. Stats and Metrics replies grow deadline blocks
//! (`deadline_met`, `deadline_misses`, `miss_permille`,
//! tardiness quantiles / histogram); v1 peers keep receiving the
//! shorter v1 frames, negotiated per connection, so mixed-version
//! clients coexist on one server.
//!
//! The request lifecycle is conservation-checked end to end: every
//! Submit is answered Accepted or Rejected, every Accepted eventually
//! produces exactly one Completed, and a Drain closes the connection
//! only after the two balance. [`Server::shutdown`] extends the same
//! guarantee server-wide by joining connections and gracefully
//! draining the pool before reporting final counters.
//!
//! Beyond per-request stamping, the wire carries **live exposition**:
//! a [`Request::Metrics`] frame is answered with the server's full
//! telemetry snapshot (every per-op histogram with its 64 log₂ buckets,
//! the event counters and GC deltas) plus gauges sampled at the poll —
//! in-flight tasks and per-worker busy permille since the previous
//! poll — so an operator or a bench harness can watch a running server
//! without touching its filesystem or perturbing its counters (the
//! capture is non-resetting). When `RSCHED_TRACE=1` the server's
//! workers also feed the flight recorder in `rsched_queues::trace`,
//! and a graceful shutdown exports the Chrome-trace JSON.
//!
//! The `rsched-serve` binary wraps [`Server`] with env-knob
//! configuration (`RSCHED_SERVE_ADDR`, `RSCHED_SERVE_BACKEND`,
//! `RSCHED_SERVE_THREADS`, `RSCHED_SERVE_CAP`); the `serve_latency`
//! bench in rsched-bench drives either an in-process server or an
//! external one through this crate's client.

pub mod client;
pub mod codec;
pub mod server;

pub use client::{ClientReceiver, ClientSender, ServeClient};
pub use codec::{
    CodecError, Completed, CompletedV2, Hello, HelloAck, MetricsReply, RejectCode, Request,
    Response, StatsReply, Submit, SubmitV2, FEAT_EDF, MAX_FRAME, METRICS_MAX_WORKERS, PROTO_V1,
    PROTO_V2,
};
pub use server::{spin_work, Backend, Endpoint, ServeConfig, Server, ServerReport};
