//! The serving daemon: bind, serve until told to stop, drain, report.
//!
//! Configuration is entirely by environment, matching the repo's bench
//! conventions:
//!
//! | knob | default | meaning |
//! |---|---|---|
//! | `RSCHED_SERVE_ADDR` | `tcp:127.0.0.1:7411` | `tcp:host:port` or `unix:/path` |
//! | `RSCHED_SERVE_BACKEND` | `mq` | `mq`, `mq-mutex`, `dcbo` or `bucket` |
//! | `RSCHED_SERVE_THREADS` | `2` | worker threads |
//! | `RSCHED_SERVE_CAP` | `4096` | admission bound (in-flight tasks) |
//! | `RSCHED_SERVE_SEED` | `0x5EED5EED` | pool RNG seed |
//! | `RSCHED_SERVE_DELTA_NS` | `1000000` | Δ-bucket width for the `bucket` backend, ns |
//! | `RSCHED_SERVE_LIFETIME_S` | unset | exit after this many seconds (CI); unset = run until SIGTERM/SIGINT kills the process |
//!
//! On start the daemon prints `rsched-serve listening on <endpoint>`
//! so harnesses can wait for readiness, and on a timed exit it prints
//! the final conservation counters and sojourn quantiles.

use rsched_runtime::env::{env_f64, env_u64, env_usize};
use rsched_serve::{Backend, Endpoint, ServeConfig, Server};
use std::time::Duration;

fn main() {
    let addr = std::env::var("RSCHED_SERVE_ADDR").unwrap_or_else(|_| "tcp:127.0.0.1:7411".into());
    let endpoint = match Endpoint::parse(&addr) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("rsched-serve: bad RSCHED_SERVE_ADDR: {e}");
            std::process::exit(2);
        }
    };
    let backend = match std::env::var("RSCHED_SERVE_BACKEND") {
        Ok(s) => match s.parse::<Backend>() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rsched-serve: bad RSCHED_SERVE_BACKEND: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => Backend::MqSkiplist,
    };
    let cfg = ServeConfig {
        endpoint,
        backend,
        threads: env_usize("RSCHED_SERVE_THREADS", 2).max(1),
        queue_cap: env_usize("RSCHED_SERVE_CAP", 4096).max(1),
        seed: env_u64("RSCHED_SERVE_SEED", 0x5EED_5EED),
        delta_ns: env_u64("RSCHED_SERVE_DELTA_NS", 1_000_000).max(1),
    };
    let lifetime_s = env_f64("RSCHED_SERVE_LIFETIME_S", 0.0);

    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rsched-serve: failed to start on {}: {e}", cfg.endpoint);
            std::process::exit(1);
        }
    };
    println!("rsched-serve listening on {}", server.endpoint());
    println!(
        "rsched-serve config backend={} threads={} cap={}",
        cfg.backend.name(),
        cfg.threads,
        cfg.queue_cap
    );

    if lifetime_s > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(lifetime_s));
        let report = server.shutdown();
        println!(
            "rsched-serve done submitted={} accepted={} rejected={} completed={} \
             sojourn_p50_ns={} sojourn_p99_ns={} sojourn_p999_ns={} inject_p99_ns={} \
             deadline_met={} deadline_misses={} miss_permille={} tardiness_p99_ns={}",
            report.submitted,
            report.accepted,
            report.rejected,
            report.completed,
            report.sojourn_p50,
            report.sojourn_p99,
            report.sojourn_p999,
            report.inject_p99,
            report.deadline_met,
            report.deadline_misses,
            report.miss_permille,
            report.tardiness_p99,
        );
    } else {
        // Run until the process is killed; the OS reclaims everything.
        // Clients that care about conservation issue Drain first.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
