//! A small synchronous client for the serve protocol — used by the
//! load generator, the loopback tests and anything scripting the
//! server.
//!
//! The client splits the socket into an owned send half and an owned
//! receive half ([`ServeClient::split`]) so an open-loop generator can
//! submit from one thread while another drains responses — the wire
//! protocol is fully pipelined; nothing waits for a reply.
//!
//! A freshly connected client is a v1 peer. [`ServeClient::handshake`]
//! (or the [`ServeClient::connect_v2`] shorthand) upgrades the
//! connection: it sends [`Request::Hello`] and blocks for the
//! [`Response::HelloAck`], returning the negotiated version and
//! granted feature bits. The handshake must run before the halves are
//! split and before any pipelined traffic, since it consumes exactly
//! one response frame.

use crate::codec::{
    decode_response, encode_request, read_frame, Hello, HelloAck, Request, Response, FEAT_EDF,
    PROTO_V2,
};
use crate::server::Endpoint;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Half {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Half {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Half::Tcp(s) => s.read(buf),
            Half::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Half {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Half::Tcp(s) => s.write(buf),
            Half::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Half::Tcp(s) => s.flush(),
            Half::Unix(s) => s.flush(),
        }
    }
}

/// The sending half: encodes and writes request frames.
pub struct ClientSender {
    stream: Half,
    buf: Vec<u8>,
}

impl ClientSender {
    /// Encode and write one request (one syscall; TCP_NODELAY is set).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.buf.clear();
        encode_request(req, &mut self.buf);
        self.stream.write_all(&self.buf)
    }
}

/// The receiving half: reads and decodes response frames.
pub struct ClientReceiver {
    stream: Half,
    buf: Vec<u8>,
}

impl ClientReceiver {
    /// Read one response; `Ok(None)` on clean server close.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Ok(None);
        }
        Ok(Some(decode_response(&self.buf)?))
    }

    /// Bound how long [`recv`](Self::recv) blocks (`WouldBlock` /
    /// `TimedOut` errors then surface between frames).
    pub fn set_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match &self.stream {
            Half::Tcp(s) => s.set_read_timeout(d),
            Half::Unix(s) => s.set_read_timeout(d),
        }
    }
}

/// A connected client (both halves together, for simple sequential
/// request/reply use).
pub struct ServeClient {
    tx: ClientSender,
    rx: ClientReceiver,
}

impl ServeClient {
    /// Connect to a server endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ServeClient> {
        let (tx_half, rx_half) = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                let r = s.try_clone()?;
                (Half::Tcp(s), Half::Tcp(r))
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let r = s.try_clone()?;
                (Half::Unix(s), Half::Unix(r))
            }
        };
        Ok(ServeClient {
            tx: ClientSender {
                stream: tx_half,
                buf: Vec::with_capacity(64),
            },
            rx: ClientReceiver {
                stream: rx_half,
                buf: Vec::with_capacity(128),
            },
        })
    }

    /// Connect and negotiate v2 with the EDF feature — the common
    /// deadline-client spelling. Returns the client and the ack; check
    /// `ack.features & FEAT_EDF` to learn whether deadlines will
    /// actually steer scheduling (an un-granted v2 connection still
    /// submits deadlines and gets verdicts, it just runs arrival-order).
    pub fn connect_v2(endpoint: &Endpoint) -> io::Result<(ServeClient, HelloAck)> {
        let mut client = ServeClient::connect(endpoint)?;
        let ack = client.handshake(PROTO_V2, FEAT_EDF)?;
        Ok((client, ack))
    }

    /// Negotiate: send [`Request::Hello`] and block for the ack. The
    /// server may answer with a *lower* version than requested (it
    /// never answers higher); a [`Response::Rejected`] here (bad
    /// version) or a close surfaces as `InvalidData`.
    pub fn handshake(&mut self, version: u64, features: u64) -> io::Result<HelloAck> {
        self.send(&Request::Hello(Hello { version, features }))?;
        match self.recv()? {
            Some(Response::HelloAck(ack)) => Ok(ack),
            Some(Response::Rejected { code, .. }) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake rejected: {code:?}"),
            )),
            Some(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake got unexpected response: {other:?}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed during handshake",
            )),
        }
    }

    /// Encode and write one request.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.tx.send(req)
    }

    /// Read one response; `Ok(None)` on clean server close.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        self.rx.recv()
    }

    /// Split into independently-owned halves for pipelined use from
    /// two threads.
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (self.tx, self.rx)
    }
}
