//! A small synchronous client for the serve protocol — used by the
//! load generator, the loopback tests and anything scripting the
//! server.
//!
//! The client splits the socket into an owned send half and an owned
//! receive half ([`ServeClient::split`]) so an open-loop generator can
//! submit from one thread while another drains responses — the wire
//! protocol is fully pipelined; nothing waits for a reply.

use crate::codec::{decode_response, encode_request, read_frame, Request, Response};
use crate::server::Endpoint;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Half {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Half {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Half::Tcp(s) => s.read(buf),
            Half::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Half {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Half::Tcp(s) => s.write(buf),
            Half::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Half::Tcp(s) => s.flush(),
            Half::Unix(s) => s.flush(),
        }
    }
}

/// The sending half: encodes and writes request frames.
pub struct ClientSender {
    stream: Half,
    buf: Vec<u8>,
}

impl ClientSender {
    /// Encode and write one request (one syscall; TCP_NODELAY is set).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.buf.clear();
        encode_request(req, &mut self.buf);
        self.stream.write_all(&self.buf)
    }
}

/// The receiving half: reads and decodes response frames.
pub struct ClientReceiver {
    stream: Half,
    buf: Vec<u8>,
}

impl ClientReceiver {
    /// Read one response; `Ok(None)` on clean server close.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Ok(None);
        }
        Ok(Some(decode_response(&self.buf)?))
    }

    /// Bound how long [`recv`](Self::recv) blocks (`WouldBlock` /
    /// `TimedOut` errors then surface between frames).
    pub fn set_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match &self.stream {
            Half::Tcp(s) => s.set_read_timeout(d),
            Half::Unix(s) => s.set_read_timeout(d),
        }
    }
}

/// A connected client (both halves together, for simple sequential
/// request/reply use).
pub struct ServeClient {
    tx: ClientSender,
    rx: ClientReceiver,
}

impl ServeClient {
    /// Connect to a server endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ServeClient> {
        let (tx_half, rx_half) = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                let r = s.try_clone()?;
                (Half::Tcp(s), Half::Tcp(r))
            }
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let r = s.try_clone()?;
                (Half::Unix(s), Half::Unix(r))
            }
        };
        Ok(ServeClient {
            tx: ClientSender {
                stream: tx_half,
                buf: Vec::with_capacity(64),
            },
            rx: ClientReceiver {
                stream: rx_half,
                buf: Vec::with_capacity(128),
            },
        })
    }

    /// Encode and write one request.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.tx.send(req)
    }

    /// Read one response; `Ok(None)` on clean server close.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        self.rx.recv()
    }

    /// Split into independently-owned halves for pipelined use from
    /// two threads.
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (self.tx, self.rx)
    }
}
