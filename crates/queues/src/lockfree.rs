//! Lock-free sub-queues for the relaxed FIFO family.
//!
//! PR 1 built every relaxed structure on one `parking_lot::Mutex` per
//! shard, which caps scalability exactly where choice-of-two relaxation
//! is supposed to shine: under contention, a preempted lock holder
//! stalls every other thread on that shard. "Are Lock-Free Concurrent
//! Algorithms Practically Wait-Free?" (Alistarh, Censor-Hillel, Shavit)
//! argues lock-free designs behave wait-free under realistic
//! schedulers — a descheduled thread mid-operation costs only its own
//! progress. This module provides two such sub-queues, both implementing
//! [`SubFifo`] so [`DRaQueue`](crate::fifo::DRaQueue)
//! and [`DCboQueue`](crate::fifo::DCboQueue) compose them per shard:
//!
//! # [`MsQueue`] — Michael–Scott linked queue
//!
//! The classic two-pointer linked queue (PODC 1996). A sentinel node
//! heads a singly linked list; `push` CASes the new node onto
//! `tail.next` (helping a lagging tail forward first), `pop` CASes
//! `head` to `head.next` and takes the value out of the *new* sentinel.
//! One allocation per element, unbounded, no spinning anywhere: an
//! operation that loses a CAS retries against fresh state, and a
//! preempted thread never blocks others.
//!
//! # [`SegRingQueue`] — segmented ring buffer
//!
//! A linked list of fixed-size segments ([`SEGMENT_CAP`] slots each).
//! Within a segment, `push` claims a slot with one `fetch_add` on the
//! segment's enqueue cursor and publishes it with one release store;
//! `pop` claims with a CAS on the dequeue cursor. A full segment is
//! *never reused in place*: the overflowing pusher links a successor
//! and swings the shared tail, so **pops never spin on a full
//! segment** — the only wait in the structure is a popper briefly
//! yielding to a claimed-but-not-yet-published slot's writer. Retired
//! segments come back through a bounded per-queue free list, but only
//! via an **epoch-deferred recycling callback** — after the grace
//! period, when no thread can still hold a pointer into them — so
//! steady-state churn runs with (amortized) zero allocator traffic and
//! cache-resident slots; within a segment's lifetime cursors only grow,
//! so there is no ABA.
//!
//! # [`FaaRingQueue`] — fetch-add claimed ring (CRQ-style)
//!
//! The same segment chain and reuse pool as [`SegRingQueue`], but the
//! *popper* side claims with one `fetch_add` on the dequeue cursor
//! instead of a CAS loop — the LCRQ/CRQ idea (Morrison & Afek, PPoPP
//! 2013) applied to this workspace's segments. Under popper/popper
//! contention the CAS-claimed ring degrades to a retry loop on the hot
//! cursor; the fetch-add ring completes every claim in one wait-free
//! RMW, and a per-slot `seq|state` word arbitrates what the claimed
//! index holds:
//!
//! * **published** (odd word): the value is there — take it;
//! * **empty** (zero word): the matching pusher has not published yet —
//!   after a short bounded spin the popper CASes the word to a dead
//!   [`SKIP`](Slot::SKIP) state and fetch-adds again. The CAS is the
//!   publish-or-skip arbitration: exactly one of {pusher publish,
//!   popper skip} wins, so no value is ever lost or seen twice.
//!
//! A pusher whose publish CAS keeps losing to skippers (poppers
//! outrunning it) sets the segment's **closed bit** — the high bit of
//! the enqueue cursor — and appends a fresh segment through the shared
//! epoch-recycled pool, which ends the push/pop livelock the
//! publish-or-skip dance could otherwise sustain. Closed or full
//! segments drain and retire exactly like [`SegRingQueue`] segments.
//! Empty pops pre-check the cursors and consume no claim, so an idle
//! queue does not burn slots.
//!
//! # Memory reclamation
//!
//! Both queues reclaim through the epoch scheme in [`crossbeam::epoch`]
//! (the vendored stand-in): every operation pins the thread, unlinked
//! nodes/segments are `defer_destroy`ed, and the allocation is freed two
//! epoch advances later, when no pinned thread can still reach it.
//! Values are moved out at pop time; a reclaimed MS node or drained
//! segment destructs no element. Arrival stamps (`u64`) are stored in a
//! field that is written once before publication and never mutated, so
//! [`SubFifo::head_seq`] can peek the
//! head's stamp without racing the popper that moves the value out.
//!
//! # Choosing a backend
//!
//! * **[`SegRingQueue`]** (the family default): best throughput under
//!   moderate contention — slot claims are a single RMW on a cursor
//!   shared only by one side of the queue, and allocation is amortized.
//!   Use it whenever elements are `Send` and throughput matters.
//! * **[`FaaRingQueue`]**: the same ring with wait-free pop *claims*
//!   (one `fetch_add`, no CAS retry loop). Its retry tail — the
//!   practically-wait-free evidence `bench_compare` gates — stays
//!   flatter than the CAS ring's as popper counts grow, at the price of
//!   occasionally skipping a slot when it races a slow pusher.
//! * **[`MsQueue`]**: simplest possible lock-free baseline, useful to
//!   isolate how much of the win is "no locks" versus "fewer, batched
//!   allocations"; also the better citizen when elements are huge (a
//!   segment pre-reserves `SEGMENT_CAP` slots of `T` up front).
//! * **[`MutexSub`](crate::fifo::MutexSub)**: the PR 1 baseline, kept
//!   for comparison (`fifo_contention` sweeps all four) and for
//!   single-threaded use, where an uncontended lock beats an epoch pin.

use crate::fifo::{SubFifo, TryPop};
use crate::telemetry;
use crossbeam::epoch::{self, Atomic, Owned, Pointer, Shared};
use crossbeam::utils::{Backoff, CachePadded};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Slots per [`SegRingQueue`] segment. Small enough that unit tests
/// cross segment boundaries constantly; large enough to amortize the
/// segment allocation across real workloads.
pub const SEGMENT_CAP: usize = 256;

// ---------------------------------------------------------------------
// Michael–Scott queue
// ---------------------------------------------------------------------

struct MsNode<T> {
    /// Arrival stamp; written before the node is published, never
    /// mutated, so racy head peeks are sound.
    seq: u64,
    /// The element; moved out by the unique pop winner.
    value: UnsafeCell<MaybeUninit<T>>,
    next: Atomic<MsNode<T>>,
}

/// Lock-free Michael–Scott linked FIFO with arrival stamps.
///
/// # Examples
///
/// ```
/// use rsched_queues::lockfree::MsQueue;
///
/// let q = MsQueue::new();
/// q.push_stamped(0, "a");
/// q.push_stamped(1, "b");
/// assert_eq!(q.head_seq(), Some(0));
/// assert_eq!(q.pop_stamped(), Some((0, "a")));
/// assert_eq!(q.pop_stamped(), Some((1, "b")));
/// assert_eq!(q.pop_stamped(), None);
/// ```
pub struct MsQueue<T> {
    head: CachePadded<Atomic<MsNode<T>>>,
    tail: CachePadded<Atomic<MsNode<T>>>,
    pushes: CachePadded<AtomicU64>,
    pops: CachePadded<AtomicU64>,
}

// SAFETY: elements are accessed by at most one thread at a time (the
// publishing pusher before the release CAS, the unique pop winner after
// the head CAS); everything else is atomics.
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MsQueue<T> {
    /// An empty queue (allocates the sentinel node).
    pub fn new() -> Self {
        let sentinel = Box::into_raw(Box::new(MsNode {
            seq: 0,
            value: UnsafeCell::new(MaybeUninit::uninit()),
            next: Atomic::null(),
        }));
        MsQueue {
            head: CachePadded::new(Atomic::from_raw(sentinel)),
            tail: CachePadded::new(Atomic::from_raw(sentinel)),
            pushes: CachePadded::new(AtomicU64::new(0)),
            pops: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Completed pushes minus completed pops — exact when quiescent.
    pub fn len(&self) -> usize {
        let pushes = self.pushes.load(Ordering::Acquire);
        let pops = self.pops.load(Ordering::Acquire);
        pushes.saturating_sub(pops) as usize
    }

    /// `true` if [`len`](Self::len) is zero (a hint under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `value` stamped with `seq`.
    pub fn push_stamped(&self, seq: u64, value: T) {
        self.push_with(seq, value, &epoch::pin());
    }

    /// [`push_stamped`](Self::push_stamped) under a caller-held pin.
    pub fn push_with(&self, seq: u64, value: T, guard: &epoch::Guard) {
        let node = Owned::new(MsNode {
            seq,
            value: UnsafeCell::new(MaybeUninit::new(value)),
            next: Atomic::null(),
        })
        .into_shared(guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, guard);
            // SAFETY: tail is never null and is protected by the guard.
            let t = unsafe { tail.deref() };
            let next = t.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                // Tail lags: help it forward, then retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                continue;
            }
            if t.next
                .compare_exchange(
                    Shared::null(),
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                )
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                self.pushes.fetch_add(1, Ordering::Release);
                return;
            }
        }
    }

    /// Remove the head element, returning its stamp and value.
    pub fn pop_stamped(&self) -> Option<(u64, T)> {
        self.pop_with(&epoch::pin())
    }

    /// [`pop_stamped`](Self::pop_stamped) under a caller-held pin.
    pub fn pop_with(&self, guard: &epoch::Guard) -> Option<(u64, T)> {
        let mut retries = 0u64;
        loop {
            let head = self.head.load(Ordering::Acquire, guard);
            // SAFETY: head is never null and is protected by the guard.
            let h = unsafe { head.deref() };
            let next = h.next.load(Ordering::Acquire, guard);
            // SAFETY: non-null `next` is protected by the guard.
            let n = (unsafe { next.as_ref() })?;
            // Keep the tail at or ahead of the head so no thread can load
            // an unlinked (soon reclaimed) node from `tail`.
            let tail = self.tail.load(Ordering::Acquire, guard);
            if tail.as_raw() == head.as_raw() {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, guard)
                .is_ok()
            {
                // SAFETY: winning the head CAS grants unique ownership of
                // the value in the new sentinel `n`; the pusher's release
                // CAS made the write visible.
                let value = unsafe { (*n.value.get()).assume_init_read() };
                let seq = n.seq;
                // SAFETY: the old sentinel is unlinked and its value slot
                // is uninit (moved out by a previous pop or never set).
                unsafe { guard.defer_destroy(head) };
                self.pops.fetch_add(1, Ordering::Release);
                telemetry::record(telemetry::OpHist::Retry, retries);
                return Some((seq, value));
            }
            retries += 1;
        }
    }

    /// The arrival stamp of the current head element, if one is visible.
    pub fn head_seq(&self) -> Option<u64> {
        self.head_seq_with(&epoch::pin())
    }

    /// [`head_seq`](Self::head_seq) under a caller-held pin.
    pub fn head_seq_with(&self, guard: &epoch::Guard) -> Option<u64> {
        let head = self.head.load(Ordering::Acquire, guard);
        // SAFETY: head is never null and is protected by the guard.
        let h = unsafe { head.deref() };
        let next = h.next.load(Ordering::Acquire, guard);
        // SAFETY: non-null `next` is protected by the guard; only the
        // immutable `seq` field is read, never the racy value slot.
        unsafe { next.as_ref() }.map(|n| n.seq)
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the raw list. The first node is the
        // sentinel (value already moved out or never set); every node
        // after it holds a live element.
        let mut node = self.head.load_raw();
        let mut is_sentinel = true;
        while !node.is_null() {
            // SAFETY: nodes reachable from head at drop time are owned by
            // the queue; each is freed exactly once.
            let boxed = unsafe { Box::from_raw(node) };
            if !is_sentinel {
                // SAFETY: non-sentinel nodes hold an initialized value.
                unsafe { (*boxed.value.get()).assume_init_drop() };
            }
            is_sentinel = false;
            node = boxed.next.load_raw();
        }
    }
}

impl<T> std::fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsQueue").field("len", &self.len()).finish()
    }
}

impl<T: Send> SubFifo<T> for MsQueue<T> {
    const NEEDS_EPOCH: bool = true;

    type Token = epoch::Guard;

    fn token() -> epoch::Guard {
        epoch::pin()
    }

    fn borrow_token(session: &crate::fifo::PinSession) -> crate::fifo::TokRef<'_, epoch::Guard> {
        match session.guard() {
            Some(g) => crate::fifo::TokRef::Borrowed(g),
            None => crate::fifo::TokRef::Owned(epoch::pin()),
        }
    }

    fn new() -> Self {
        MsQueue::new()
    }

    fn push(&self, seq: u64, item: T, tok: &epoch::Guard) {
        self.push_with(seq, item, tok);
    }

    fn try_pop(&self, tok: &epoch::Guard) -> TryPop<T> {
        match self.pop_with(tok) {
            Some(pair) => TryPop::Item(pair),
            None => TryPop::Empty,
        }
    }

    fn pop_wait(&self, tok: &epoch::Guard) -> Option<(u64, T)> {
        self.pop_with(tok)
    }

    fn head_seq(&self, tok: &epoch::Guard) -> Option<u64> {
        self.head_seq_with(tok)
    }
}

// ---------------------------------------------------------------------
// Segmented ring queue
// ---------------------------------------------------------------------

struct Slot<T> {
    /// Publication flag and arrival stamp in one word: `0` while empty,
    /// `(seq << 1) | 1` once the value is written. A single acquire load
    /// gives poppers and peekers both the "published?" answer and the
    /// stamp, and the slot stays two words wide.
    seq_state: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Slot<T> {
    const EMPTY: u64 = 0;
    /// Dead-slot sentinel for the fetch-add ring: a popper that claimed
    /// this index before the pusher published writes `SKIP` (even, so
    /// [`is_published`](Self::is_published) stays a one-bit test) and
    /// the slot never carries a value. Only [`FaaRingQueue`] writes it.
    const SKIP: u64 = 2;

    fn pack(seq: u64) -> u64 {
        debug_assert!(seq < u64::MAX / 2, "arrival stamp overflows the packing");
        (seq << 1) | 1
    }

    /// `true` iff `word` is a published `pack(seq)` value (odd). `EMPTY`
    /// and `SKIP` are both even, so this is the single liveness test for
    /// both ring variants.
    #[inline]
    fn is_published(word: u64) -> bool {
        word & 1 == 1
    }
}

/// Closed bit of a fetch-add ring segment's enqueue cursor: once set, no
/// pusher writes another slot in this segment — the closer appends a
/// successor instead. [`SegRingQueue`] never sets it (its cursors stay
/// far below the bit), so the shared [`Segment`] machinery masks it
/// unconditionally.
const SEG_CLOSED: usize = 1 << (usize::BITS - 1);
/// Index bits of an enqueue cursor (everything below [`SEG_CLOSED`]).
const SEG_IDX: usize = !SEG_CLOSED;

struct Segment<T> {
    /// Global position of slot 0 (successor segments get
    /// `base + SEGMENT_CAP`); lets [`SegRingQueue::len`] derive the live
    /// count from the two end cursors with no hot-path counters.
    base: u64,
    /// Next slot a pusher claims (grows past `SEGMENT_CAP` when the
    /// segment overflows; the excess is the signal to link a successor).
    enq: CachePadded<AtomicUsize>,
    /// Next slot a popper claims (claimed by CAS, so it never overshoots
    /// the published prefix and an empty pop loses no reservation).
    deq: CachePadded<AtomicUsize>,
    next: Atomic<Segment<T>>,
    /// Owned strong reference (via `Arc::into_raw`) to the queue's
    /// segment pool, so the grace-period recycling callback can find the
    /// pool from the segment alone. Null once the reference has been
    /// taken (pooled segments) or for segments that should just drop.
    /// Only mutated under exclusive (`Box`) ownership.
    pool: *const SegPool<T>,
    slots: [Slot<T>; SEGMENT_CAP],
}

impl<T> Segment<T> {
    fn new(base: u64) -> Self {
        Segment {
            base,
            enq: CachePadded::new(AtomicUsize::new(0)),
            deq: CachePadded::new(AtomicUsize::new(0)),
            next: Atomic::null(),
            pool: std::ptr::null(),
            slots: std::array::from_fn(|_| Slot {
                seq_state: AtomicU64::new(Slot::<T>::EMPTY),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            }),
        }
    }

    /// Rewind a fully-drained (or never-published) pooled segment for
    /// reuse at `base`. The relaxed stores are published to other
    /// threads by the Release link CAS that re-inserts the segment into
    /// a queue.
    fn reset(&mut self, base: u64, pool: *const SegPool<T>) {
        debug_assert!(
            self.deq.load(Ordering::Relaxed) >= SEGMENT_CAP
                || self.enq.load(Ordering::Relaxed) & SEG_IDX == 0,
            "resetting a segment that still holds live elements"
        );
        self.base = base;
        self.enq.store(0, Ordering::Relaxed);
        self.deq.store(0, Ordering::Relaxed);
        self.next.store(Shared::null(), Ordering::Relaxed);
        self.pool = pool;
        for slot in &self.slots {
            slot.seq_state.store(Slot::<T>::EMPTY, Ordering::Relaxed);
        }
    }

    /// Take the owned pool reference out of the segment, if any.
    fn take_pool(&mut self) -> Option<Arc<SegPool<T>>> {
        let ptr = std::mem::replace(&mut self.pool, std::ptr::null());
        // SAFETY: a non-null `pool` is an owned `Arc::into_raw` reference
        // installed at allocation time and taken at most once.
        (!ptr.is_null()).then(|| unsafe { Arc::from_raw(ptr) })
    }
}

impl<T> Drop for Segment<T> {
    fn drop(&mut self) {
        // Exclusive access: slots in [deq, min(enq, CAP)) that were
        // published still hold live elements (a fully drained segment has
        // deq == CAP and drops nothing). The liveness test is the odd
        // publication bit, not merely non-zero: a fetch-add ring leaves
        // dead SKIP words (even) behind, and a closed segment leaves
        // EMPTY slots below its claimed enqueue index — neither holds a
        // value.
        let deq = self.deq.load(Ordering::Relaxed).min(SEGMENT_CAP);
        let enq = (self.enq.load(Ordering::Relaxed) & SEG_IDX).min(SEGMENT_CAP);
        for slot in &self.slots[deq.min(enq)..enq] {
            if Slot::<T>::is_published(slot.seq_state.load(Ordering::Relaxed)) {
                // SAFETY: published and never claimed by a popper.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
        drop(self.take_pool());
    }
}

/// How many retired segments a queue keeps for reuse. Beyond this the
/// recycling callback lets the segment drop — the pool bounds memory,
/// it does not hoard it.
const POOL_CAP: usize = 8;

/// Per-queue free list of retired segments (ROADMAP follow-up from
/// PR 2): a retired segment reaches the pool through an **epoch-deferred
/// callback** — i.e. only after every thread that could still hold a
/// pointer into it has unpinned — so reuse carries exactly the ABA
/// protection `defer_destroy` gave outright destruction. The allocating
/// path `try_lock`s the pool (falling back to a fresh allocation on
/// contention, preserving lock-freedom) and rewinds the segment, cutting
/// allocator traffic and keeping slot memory cache-resident under churn.
struct SegPool<T> {
    stack: Mutex<Vec<Box<Segment<T>>>>,
    /// Segments handed back for reuse (monotone; for tests/benchmarks).
    recycled: AtomicU64,
    /// Segments taken from the pool instead of the allocator.
    reused: AtomicU64,
}

// SAFETY: the raw back-pointers inside pooled segments are only
// dereferenced by the single owner of the containing Box; everything
// else behind the mutex/atomics is ordinary Send data (for T: Send).
unsafe impl<T: Send> Send for SegPool<T> {}
unsafe impl<T: Send> Sync for SegPool<T> {}

impl<T> SegPool<T> {
    fn new() -> Arc<Self> {
        Arc::new(SegPool {
            stack: Mutex::new(Vec::new()),
            recycled: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        })
    }
}

/// Grace-period callback: hand a retired segment back to its queue's
/// pool (or drop it if the pool is full or gone).
///
/// # Safety
///
/// `ptr` must be a retired, fully-claimed `Segment<T>` allocated via
/// `Box`, unreachable from any queue, past its grace period, and not
/// recycled twice.
unsafe fn recycle_segment<T>(ptr: *mut u8) {
    // SAFETY: per contract, we own the segment exclusively now.
    let mut seg = unsafe { Box::from_raw(ptr.cast::<Segment<T>>()) };
    let Some(pool) = seg.take_pool() else {
        return; // no pool: plain deferred destruction
    };
    let mut stack = pool.stack.lock();
    if stack.len() < POOL_CAP {
        stack.push(seg);
        pool.recycled.fetch_add(1, Ordering::Relaxed);
    }
    // else: drop `seg` (it is fully drained; only memory is released).
}

/// A segment positioned at `base`: reused from `pool` when one is
/// available and the pool lock is free, freshly allocated otherwise
/// (`try_lock`, so the push path never blocks on the pool). Shared by
/// both ring variants.
fn alloc_pooled_segment<T>(pool: &Arc<SegPool<T>>, base: u64) -> Owned<Segment<T>> {
    let pooled = pool.stack.try_lock().and_then(|mut s| s.pop());
    let raw = match pooled {
        Some(mut seg) => {
            pool.reused.fetch_add(1, Ordering::Relaxed);
            seg.reset(base, Arc::into_raw(Arc::clone(pool)));
            Box::into_raw(seg)
        }
        None => {
            let mut seg = Box::new(Segment::new(base));
            seg.pool = Arc::into_raw(Arc::clone(pool));
            Box::into_raw(seg)
        }
    };
    // SAFETY: `raw` came from `Box::into_raw` and ownership moves into
    // the returned `Owned`.
    unsafe { Owned::from_raw(raw) }
}

/// Give back a segment that was allocated (possibly from the pool) but
/// never published — the loser of a tail-link race. An unpublished
/// segment was never reachable, so it needs no grace period to be
/// pooled again.
fn return_unpublished_segment<T>(pool: &SegPool<T>, seg: Owned<Segment<T>>) {
    // SAFETY: an `Owned` is exclusively ours; recover the `Box`.
    let mut boxed = unsafe { Box::from_raw(seg.into_raw()) };
    drop(boxed.take_pool());
    // `try_lock`, like the allocation path: blocking here would
    // reintroduce the preempted-holder convoy on `push`. On contention
    // the unpublished segment simply drops.
    if let Some(mut stack) = pool.stack.try_lock() {
        if stack.len() < POOL_CAP {
            stack.push(boxed);
            pool.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Lock-free segmented ring-buffer FIFO with arrival stamps.
///
/// Bounded segments are linked lock-free: a full segment is abandoned to
/// its poppers and a fresh one appended, so pushes never wait for pops
/// and pops never spin on a full segment.
///
/// # Examples
///
/// ```
/// use rsched_queues::lockfree::{SegRingQueue, SEGMENT_CAP};
///
/// let q = SegRingQueue::new();
/// for i in 0..(3 * SEGMENT_CAP as u64) {
///     q.push_stamped(i, i);
/// }
/// for i in 0..(3 * SEGMENT_CAP as u64) {
///     assert_eq!(q.pop_stamped(), Some((i, i)));
/// }
/// assert_eq!(q.pop_stamped(), None);
/// ```
pub struct SegRingQueue<T> {
    head: CachePadded<Atomic<Segment<T>>>,
    tail: CachePadded<Atomic<Segment<T>>>,
    pool: Arc<SegPool<T>>,
}

// SAFETY: slot values are accessed by at most one thread at a time (the
// claiming pusher before the release store, the unique claiming popper
// after its CAS); cursors and states are atomics.
unsafe impl<T: Send> Send for SegRingQueue<T> {}
unsafe impl<T: Send> Sync for SegRingQueue<T> {}

impl<T> Default for SegRingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegRingQueue<T> {
    /// An empty queue (allocates the first segment and its reuse pool).
    pub fn new() -> Self {
        let pool = SegPool::new();
        let mut seg = Box::new(Segment::new(0));
        seg.pool = Arc::into_raw(Arc::clone(&pool));
        let first = Box::into_raw(seg);
        SegRingQueue {
            head: CachePadded::new(Atomic::from_raw(first)),
            tail: CachePadded::new(Atomic::from_raw(first)),
            pool,
        }
    }

    /// `(recycled, reused)` segment counts of the per-queue free list —
    /// how many retired segments entered the pool and how many
    /// allocations it absorbed. For tests and benchmarks.
    pub fn segment_reuse_stats(&self) -> (u64, u64) {
        (
            self.pool.recycled.load(Ordering::Relaxed),
            self.pool.reused.load(Ordering::Relaxed),
        )
    }

    /// A segment positioned at `base`: reused from the pool when one is
    /// available and the pool lock is free, freshly allocated otherwise
    /// (`try_lock`, so the push path never blocks on the pool).
    fn alloc_segment(&self, base: u64) -> Owned<Segment<T>> {
        alloc_pooled_segment(&self.pool, base)
    }

    /// Give back a segment that was allocated (possibly from the pool)
    /// but never published — the loser of the tail-link race.
    fn pool_return(&self, seg: Owned<Segment<T>>) {
        return_unpublished_segment(&self.pool, seg);
    }

    /// Tail push position minus head pop position, derived from the end
    /// segments' base offsets and cursors — exact when quiescent, an
    /// approximation mid-flight, and free of hot-path counters.
    pub fn len(&self) -> usize {
        let guard = epoch::pin();
        let tail = self.tail.load(Ordering::Acquire, &guard);
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: both ends are never null and protected by the guard.
        let (t, h) = unsafe { (tail.deref(), head.deref()) };
        let push_pos = t.base + t.enq.load(Ordering::Acquire).min(SEGMENT_CAP) as u64;
        let pop_pos = h.base + h.deq.load(Ordering::Acquire).min(SEGMENT_CAP) as u64;
        push_pos.saturating_sub(pop_pos) as usize
    }

    /// `true` if [`len`](Self::len) is zero (a hint under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `value` stamped with `seq`.
    pub fn push_stamped(&self, seq: u64, value: T) {
        self.push_with(seq, value, &epoch::pin());
    }

    /// [`push_stamped`](Self::push_stamped) under a caller-held pin.
    pub fn push_with(&self, seq: u64, value: T, guard: &epoch::Guard) {
        loop {
            let tail = self.tail.load(Ordering::Acquire, guard);
            // SAFETY: tail is never null and is protected by the guard.
            let t = unsafe { tail.deref() };
            let i = t.enq.fetch_add(1, Ordering::SeqCst);
            if i < SEGMENT_CAP {
                let slot = &t.slots[i];
                // SAFETY: the fetch_add claimed slot `i` exclusively for
                // this pusher; nothing reads it until the release store.
                unsafe {
                    (*slot.value.get()).write(value);
                }
                slot.seq_state
                    .store(Slot::<T>::pack(seq), Ordering::Release);
                return;
            }
            // Segment full: link a successor (or help whoever did), swing
            // the tail, and retry there.
            let next = t.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                continue;
            }
            match t.next.compare_exchange(
                Shared::null(),
                self.alloc_segment(t.base + SEGMENT_CAP as u64),
                Ordering::Release,
                Ordering::Relaxed,
                guard,
            ) {
                Ok(linked) => {
                    let _ = self.tail.compare_exchange(
                        tail,
                        linked,
                        Ordering::Release,
                        Ordering::Relaxed,
                        guard,
                    );
                }
                Err(lost) => {
                    // Another pusher linked first; its segment wins and
                    // ours — never published — goes straight back to
                    // the pool instead of paying the allocator
                    // round-trip this race makes most frequent.
                    let _ = self.tail.compare_exchange(
                        tail,
                        lost.current,
                        Ordering::Release,
                        Ordering::Relaxed,
                        guard,
                    );
                    self.pool_return(lost.new);
                }
            }
        }
    }

    /// Remove the head element, returning its stamp and value.
    pub fn pop_stamped(&self) -> Option<(u64, T)> {
        self.pop_with(&epoch::pin())
    }

    /// [`pop_stamped`](Self::pop_stamped) under a caller-held pin.
    pub fn pop_with(&self, guard: &epoch::Guard) -> Option<(u64, T)> {
        let mut retries = 0u64;
        'segment: loop {
            let head = self.head.load(Ordering::Acquire, guard);
            // SAFETY: head is never null and is protected by the guard.
            let h = unsafe { head.deref() };
            loop {
                let d = h.deq.load(Ordering::SeqCst);
                if d >= SEGMENT_CAP {
                    // Segment fully claimed: retire it and move on.
                    let next = h.next.load(Ordering::Acquire, guard);
                    if next.is_null() {
                        return None;
                    }
                    // Push the tail past the dying segment first so no
                    // future pusher can load a reclaimed pointer from it.
                    let tail = self.tail.load(Ordering::Acquire, guard);
                    if tail.as_raw() == head.as_raw() {
                        let _ = self.tail.compare_exchange(
                            tail,
                            next,
                            Ordering::Release,
                            Ordering::Relaxed,
                            guard,
                        );
                    }
                    if self
                        .head
                        .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, guard)
                        .is_ok()
                    {
                        // SAFETY: the segment is unlinked and all its
                        // slots were claimed; in-flight claimants hold
                        // epoch guards, so the recycling callback runs
                        // only after the grace period (reuse is then as
                        // safe as destruction was).
                        unsafe {
                            guard.defer_with_raw(head.as_raw() as *mut u8, recycle_segment::<T>)
                        };
                    }
                    continue 'segment;
                }
                let slot = &h.slots[d];
                let published = slot.seq_state.load(Ordering::Acquire);
                if Slot::<T>::is_published(published) {
                    // Fast path: the head slot is already published, so a
                    // successful claim needs no cursor comparison and no
                    // publication wait.
                    if h.deq
                        .compare_exchange(d, d + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        // SAFETY: the deq CAS claimed slot `d` exclusively
                        // and the acquire load above saw the publication.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        telemetry::record(telemetry::OpHist::Retry, retries);
                        return Some((published >> 1, value));
                    }
                    retries += 1;
                    continue;
                }
                let e = h.enq.load(Ordering::SeqCst).min(SEGMENT_CAP);
                if d >= e {
                    // Nothing published here right now. A non-null next
                    // pointer proves the segment overflowed, so re-read
                    // the cursor; otherwise report empty (a hint — the
                    // callers own termination detection).
                    let next = h.next.load(Ordering::Acquire, guard);
                    if next.is_null() {
                        return None;
                    }
                    continue;
                }
                if h.deq
                    .compare_exchange(d, d + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // The claiming pusher has not published yet; yield to
                    // it briefly (never on a *full* segment — full
                    // segments are left behind, not waited on). The claim
                    // is already consumed, so the wait cannot abandon —
                    // but it is *bounded* per round (backoff saturates to
                    // plain yields) and every round is counted under the
                    // Sweep series so the tail gate sees a pop that paid
                    // for losing the publish race.
                    let backoff = Backoff::new();
                    let mut rounds = 0u64;
                    let mut published = slot.seq_state.load(Ordering::Acquire);
                    while published == Slot::<T>::EMPTY {
                        if backoff.is_completed() {
                            std::thread::yield_now();
                        } else {
                            backoff.snooze();
                        }
                        rounds += 1;
                        published = slot.seq_state.load(Ordering::Acquire);
                    }
                    if rounds > 0 {
                        telemetry::record(telemetry::OpHist::Sweep, rounds);
                    }
                    // SAFETY: the deq CAS claimed slot `d` exclusively
                    // and the acquire load above saw the publication.
                    let value = unsafe { (*slot.value.get()).assume_init_read() };
                    telemetry::record(telemetry::OpHist::Retry, retries);
                    return Some((published >> 1, value));
                }
                retries += 1;
            }
        }
    }

    /// The arrival stamp of the current head element, if one is visible.
    pub fn head_seq(&self) -> Option<u64> {
        self.head_seq_with(&epoch::pin())
    }

    /// [`head_seq`](Self::head_seq) under a caller-held pin.
    pub fn head_seq_with(&self, guard: &epoch::Guard) -> Option<u64> {
        let mut current = self.head.load(Ordering::Acquire, guard);
        loop {
            // SAFETY: segment pointers walked here are protected by the
            // guard (reached from head, destruction deferred).
            let h = unsafe { current.as_ref() }?;
            let d = h.deq.load(Ordering::SeqCst);
            if d < SEGMENT_CAP {
                // The packed word is written once before publication and
                // never mutated; racing the value move-out is fine (a
                // dead SKIP word reads as not-published).
                let published = h.slots[d].seq_state.load(Ordering::Acquire);
                if Slot::<T>::is_published(published) {
                    return Some(published >> 1);
                }
                return None;
            }
            current = h.next.load(Ordering::Acquire, guard);
        }
    }
}

impl<T> Drop for SegRingQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the raw segment chain; each segment's
        // own Drop releases its unconsumed elements.
        let mut seg = self.head.load_raw();
        while !seg.is_null() {
            // SAFETY: segments reachable from head at drop time are owned
            // by the queue; each is freed exactly once.
            let boxed = unsafe { Box::from_raw(seg) };
            seg = boxed.next.load_raw();
        }
    }
}

impl<T> std::fmt::Debug for SegRingQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegRingQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Send> SubFifo<T> for SegRingQueue<T> {
    const NEEDS_EPOCH: bool = true;

    type Token = epoch::Guard;

    fn token() -> epoch::Guard {
        epoch::pin()
    }

    fn borrow_token(session: &crate::fifo::PinSession) -> crate::fifo::TokRef<'_, epoch::Guard> {
        match session.guard() {
            Some(g) => crate::fifo::TokRef::Borrowed(g),
            None => crate::fifo::TokRef::Owned(epoch::pin()),
        }
    }

    fn new() -> Self {
        SegRingQueue::new()
    }

    fn push(&self, seq: u64, item: T, tok: &epoch::Guard) {
        self.push_with(seq, item, tok);
    }

    fn try_pop(&self, tok: &epoch::Guard) -> TryPop<T> {
        match self.pop_with(tok) {
            Some(pair) => TryPop::Item(pair),
            None => TryPop::Empty,
        }
    }

    fn pop_wait(&self, tok: &epoch::Guard) -> Option<(u64, T)> {
        self.pop_with(tok)
    }

    fn head_seq(&self, tok: &epoch::Guard) -> Option<u64> {
        self.head_seq_with(tok)
    }
}

// ---------------------------------------------------------------------
// Fetch-add claimed ring queue (CRQ-style)
// ---------------------------------------------------------------------

/// How many brief spins a fetch-add popper grants a claimed-but-silent
/// slot's pusher before killing the slot with [`Slot::SKIP`]. Small: the
/// pop path must stay bounded — a slow pusher re-routes its value, it is
/// never waited out.
const SKIP_PATIENCE: u32 = 16;

/// How many consecutive publish-CAS losses a pusher tolerates before it
/// closes the segment and appends a fresh one — the livelock breaker for
/// the publish-or-skip dance.
const CLOSE_AFTER: u32 = 3;

/// Lock-free segmented ring FIFO with **fetch-add claimed pops**
/// (CRQ-style; see the [module docs](self)).
///
/// Shares [`SegRingQueue`]'s segment layout and epoch-recycled segment
/// pool; differs only in the claim protocol — a popper claims its slot
/// index with one `fetch_add` (wait-free), then arbitrates the slot's
/// `seq|state` word: take the published value, or kill the empty slot
/// with a `SKIP` CAS and fetch-add again. Pushers publish with a CAS
/// instead of a blind store so the arbitration has exactly one winner,
/// and a pusher that keeps losing closes the segment (high bit of the
/// enqueue cursor) and appends a successor.
///
/// # Examples
///
/// ```
/// use rsched_queues::lockfree::{FaaRingQueue, SEGMENT_CAP};
///
/// let q = FaaRingQueue::new();
/// for i in 0..(3 * SEGMENT_CAP as u64) {
///     q.push_stamped(i, i);
/// }
/// for i in 0..(3 * SEGMENT_CAP as u64) {
///     assert_eq!(q.pop_stamped(), Some((i, i)));
/// }
/// assert_eq!(q.pop_stamped(), None);
/// ```
pub struct FaaRingQueue<T> {
    head: CachePadded<Atomic<Segment<T>>>,
    tail: CachePadded<Atomic<Segment<T>>>,
    pool: Arc<SegPool<T>>,
}

// SAFETY: slot values are accessed by at most one thread at a time — the
// claiming pusher before its publish CAS succeeds (and again after it
// *fails*, to take the value back), the unique claiming popper after the
// publish CAS it observed or lost to; the publish-or-skip CAS arbitrates
// the one racy case. Cursors and states are atomics.
unsafe impl<T: Send> Send for FaaRingQueue<T> {}
unsafe impl<T: Send> Sync for FaaRingQueue<T> {}

impl<T> Default for FaaRingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FaaRingQueue<T> {
    /// An empty queue (allocates the first segment and its reuse pool).
    pub fn new() -> Self {
        let pool = SegPool::new();
        let mut seg = Box::new(Segment::new(0));
        seg.pool = Arc::into_raw(Arc::clone(&pool));
        let first = Box::into_raw(seg);
        FaaRingQueue {
            head: CachePadded::new(Atomic::from_raw(first)),
            tail: CachePadded::new(Atomic::from_raw(first)),
            pool,
        }
    }

    /// `(recycled, reused)` segment counts of the per-queue free list.
    pub fn segment_reuse_stats(&self) -> (u64, u64) {
        (
            self.pool.recycled.load(Ordering::Relaxed),
            self.pool.reused.load(Ordering::Relaxed),
        )
    }

    /// Tail push position minus head pop position — exact when quiescent
    /// with no closed segment awaiting retirement, an approximation
    /// otherwise (a closed segment's skipped tail counts until it
    /// retires; the dequeue cursor may overshoot on skips).
    pub fn len(&self) -> usize {
        let guard = epoch::pin();
        let tail = self.tail.load(Ordering::Acquire, &guard);
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: both ends are never null and protected by the guard.
        let (t, h) = unsafe { (tail.deref(), head.deref()) };
        let push_pos = t.base + (t.enq.load(Ordering::Acquire) & SEG_IDX).min(SEGMENT_CAP) as u64;
        let pop_pos = h.base + h.deq.load(Ordering::Acquire).min(SEGMENT_CAP) as u64;
        push_pos.saturating_sub(pop_pos) as usize
    }

    /// `true` if [`len`](Self::len) is zero (a hint under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `value` stamped with `seq`.
    pub fn push_stamped(&self, seq: u64, value: T) {
        self.push_with(seq, value, &epoch::pin());
    }

    /// [`push_stamped`](Self::push_stamped) under a caller-held pin.
    pub fn push_with(&self, seq: u64, mut value: T, guard: &epoch::Guard) {
        let mut fails = 0u32;
        loop {
            let tail = self.tail.load(Ordering::Acquire, guard);
            // SAFETY: tail is never null and is protected by the guard.
            let t = unsafe { tail.deref() };
            let e = t.enq.fetch_add(1, Ordering::SeqCst);
            if e & SEG_CLOSED == 0 && e < SEGMENT_CAP {
                let slot = &t.slots[e];
                // SAFETY: the fetch_add claimed index `e` exclusively for
                // this pusher; the only other writer of this slot is the
                // popper's SKIP CAS on `seq_state`, which never touches
                // the value cell.
                unsafe {
                    (*slot.value.get()).write(value);
                }
                match slot.seq_state.compare_exchange(
                    Slot::<T>::EMPTY,
                    Slot::<T>::pack(seq),
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(_) => {
                        // A popper skipped this slot first; the slot is
                        // dead and nothing will ever read its value cell.
                        // SAFETY: exclusive access as above — take the
                        // value back and re-route it to a later slot.
                        value = unsafe { (*slot.value.get()).assume_init_read() };
                        fails += 1;
                        if fails >= CLOSE_AFTER {
                            // Poppers are outrunning us in this segment;
                            // close it so every side moves to a fresh
                            // one instead of livelocking on skips.
                            t.enq.fetch_or(SEG_CLOSED, Ordering::SeqCst);
                            fails = 0;
                        }
                        continue;
                    }
                }
            }
            // Closed or full: link a successor (or help whoever did),
            // swing the tail, and retry there.
            let next = t.next.load(Ordering::Acquire, guard);
            if !next.is_null() {
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    guard,
                );
                continue;
            }
            match t.next.compare_exchange(
                Shared::null(),
                alloc_pooled_segment(&self.pool, t.base + SEGMENT_CAP as u64),
                Ordering::Release,
                Ordering::Relaxed,
                guard,
            ) {
                Ok(linked) => {
                    let _ = self.tail.compare_exchange(
                        tail,
                        linked,
                        Ordering::Release,
                        Ordering::Relaxed,
                        guard,
                    );
                }
                Err(lost) => {
                    let _ = self.tail.compare_exchange(
                        tail,
                        lost.current,
                        Ordering::Release,
                        Ordering::Relaxed,
                        guard,
                    );
                    return_unpublished_segment(&self.pool, lost.new);
                }
            }
        }
    }

    /// Remove the head element, returning its stamp and value.
    pub fn pop_stamped(&self) -> Option<(u64, T)> {
        self.pop_with(&epoch::pin())
    }

    /// [`pop_stamped`](Self::pop_stamped) under a caller-held pin.
    ///
    /// The claim is one `fetch_add`; `retries` (recorded under the Retry
    /// telemetry series) counts slots the claim had to skip, which is
    /// this queue's analogue of the CAS ring's claim retries.
    pub fn pop_with(&self, guard: &epoch::Guard) -> Option<(u64, T)> {
        let mut retries = 0u64;
        'segment: loop {
            let head = self.head.load(Ordering::Acquire, guard);
            // SAFETY: head is never null and is protected by the guard.
            let h = unsafe { head.deref() };
            loop {
                let d = h.deq.load(Ordering::SeqCst);
                if d >= SEGMENT_CAP {
                    // Segment fully claimed: retire it and move on.
                    let next = h.next.load(Ordering::Acquire, guard);
                    if next.is_null() {
                        return None;
                    }
                    // Push the tail past the dying segment first so no
                    // future pusher can load a reclaimed pointer from it.
                    let tail = self.tail.load(Ordering::Acquire, guard);
                    if tail.as_raw() == head.as_raw() {
                        let _ = self.tail.compare_exchange(
                            tail,
                            next,
                            Ordering::Release,
                            Ordering::Relaxed,
                            guard,
                        );
                    }
                    if self
                        .head
                        .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, guard)
                        .is_ok()
                    {
                        // SAFETY: the segment is unlinked and all its
                        // slots were claimed; in-flight claimants hold
                        // epoch guards, so the recycling callback runs
                        // only after the grace period.
                        unsafe {
                            guard.defer_with_raw(head.as_raw() as *mut u8, recycle_segment::<T>)
                        };
                    }
                    continue 'segment;
                }
                let e_raw = h.enq.load(Ordering::SeqCst);
                let closed = e_raw & SEG_CLOSED != 0;
                let e = (e_raw & SEG_IDX).min(SEGMENT_CAP);
                if d >= e {
                    // Nothing claimable below the enqueue index. Pre-
                    // checking here keeps empty pops from burning slot
                    // claims — the FAA only runs when a value is (or was
                    // about to be) there.
                    let next = h.next.load(Ordering::Acquire, guard);
                    if closed || !next.is_null() {
                        // No pusher will ever publish the rest of this
                        // segment; declare it fully claimed so the
                        // retire path above can recycle it. fetch_max
                        // races cleanly with concurrent claims.
                        h.deq.fetch_max(SEGMENT_CAP, Ordering::SeqCst);
                        continue;
                    }
                    return None;
                }
                // Claim the slot index with one wait-free fetch_add.
                let d = h.deq.fetch_add(1, Ordering::SeqCst);
                if d >= SEGMENT_CAP {
                    continue;
                }
                let slot = &h.slots[d];
                let mut published = slot.seq_state.load(Ordering::Acquire);
                let backoff = Backoff::new();
                for _ in 0..SKIP_PATIENCE {
                    if Slot::<T>::is_published(published) {
                        break;
                    }
                    backoff.spin();
                    published = slot.seq_state.load(Ordering::Acquire);
                }
                if !Slot::<T>::is_published(published) {
                    // Publish-or-skip arbitration: kill the slot, or
                    // lose to the pusher's publish and take the value.
                    match slot.seq_state.compare_exchange(
                        Slot::<T>::EMPTY,
                        Slot::<T>::SKIP,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            retries += 1;
                            continue;
                        }
                        Err(now) => published = now,
                    }
                }
                // SAFETY: the fetch_add claimed slot `d` exclusively for
                // this popper and the acquire load/CAS-failure above saw
                // the pusher's Release publication.
                let value = unsafe { (*slot.value.get()).assume_init_read() };
                telemetry::record(telemetry::OpHist::Retry, retries);
                return Some((published >> 1, value));
            }
        }
    }

    /// The arrival stamp of the current head element, if one is visible.
    pub fn head_seq(&self) -> Option<u64> {
        self.head_seq_with(&epoch::pin())
    }

    /// [`head_seq`](Self::head_seq) under a caller-held pin.
    pub fn head_seq_with(&self, guard: &epoch::Guard) -> Option<u64> {
        let mut current = self.head.load(Ordering::Acquire, guard);
        loop {
            // SAFETY: segment pointers walked here are protected by the
            // guard (reached from head, destruction deferred).
            let h = unsafe { current.as_ref() }?;
            let d = h.deq.load(Ordering::SeqCst);
            if d < SEGMENT_CAP {
                // Slots at or above the dequeue cursor are never SKIP
                // (skips happen strictly below a moved cursor), but the
                // cursor may move under us — the odd-bit test keeps a
                // stale read safe.
                let published = h.slots[d].seq_state.load(Ordering::Acquire);
                if Slot::<T>::is_published(published) {
                    return Some(published >> 1);
                }
                return None;
            }
            current = h.next.load(Ordering::Acquire, guard);
        }
    }
}

impl<T> Drop for FaaRingQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the raw segment chain; each segment's
        // own Drop releases its unconsumed elements (published slots
        // only — SKIP words are dead by construction).
        let mut seg = self.head.load_raw();
        while !seg.is_null() {
            // SAFETY: segments reachable from head at drop time are owned
            // by the queue; each is freed exactly once.
            let boxed = unsafe { Box::from_raw(seg) };
            seg = boxed.next.load_raw();
        }
    }
}

impl<T> std::fmt::Debug for FaaRingQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaaRingQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Send> SubFifo<T> for FaaRingQueue<T> {
    const NEEDS_EPOCH: bool = true;

    type Token = epoch::Guard;

    fn token() -> epoch::Guard {
        epoch::pin()
    }

    fn borrow_token(session: &crate::fifo::PinSession) -> crate::fifo::TokRef<'_, epoch::Guard> {
        match session.guard() {
            Some(g) => crate::fifo::TokRef::Borrowed(g),
            None => crate::fifo::TokRef::Owned(epoch::pin()),
        }
    }

    fn new() -> Self {
        FaaRingQueue::new()
    }

    fn push(&self, seq: u64, item: T, tok: &epoch::Guard) {
        self.push_with(seq, item, tok);
    }

    fn try_pop(&self, tok: &epoch::Guard) -> TryPop<T> {
        match self.pop_with(tok) {
            Some(pair) => TryPop::Item(pair),
            None => TryPop::Empty,
        }
    }

    fn pop_wait(&self, tok: &epoch::Guard) -> Option<(u64, T)> {
        self.pop_with(tok)
    }

    fn head_seq(&self, tok: &epoch::Guard) -> Option<u64> {
        self.head_seq_with(tok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    /// Iteration multiplier for the heavy tests; `RSCHED_STRESS=1` (or a
    /// number) raises it in the CI stress job.
    fn stress_mult() -> usize {
        match std::env::var("RSCHED_STRESS").as_deref() {
            Ok("0") | Err(_) => 1,
            Ok(v) => v.parse::<usize>().unwrap_or(1).clamp(1, 64) * 4,
        }
    }

    #[test]
    fn ms_exact_fifo_single_thread() {
        let q = MsQueue::new();
        assert_eq!(q.pop_stamped(), None);
        for i in 0..500u64 {
            q.push_stamped(i, i * 3);
        }
        assert_eq!(q.len(), 500);
        for i in 0..500u64 {
            assert_eq!(q.head_seq(), Some(i));
            assert_eq!(q.pop_stamped(), Some((i, i * 3)));
        }
        assert_eq!(q.pop_stamped(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn segring_exact_fifo_across_segment_boundaries() {
        let q = SegRingQueue::new();
        let n = (5 * SEGMENT_CAP + 3) as u64;
        for i in 0..n {
            q.push_stamped(i, i);
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.head_seq(), Some(i));
            assert_eq!(q.pop_stamped(), Some((i, i)));
        }
        assert_eq!(q.pop_stamped(), None);
    }

    #[test]
    fn segring_wraparound_mixed_ops_at_boundaries() {
        // Alternate fill/drain patterns sized to land exactly on, one
        // short of, and one past the segment boundary.
        let q = SegRingQueue::new();
        let mut next = 0u64;
        let mut expect = 0u64;
        for delta in [
            SEGMENT_CAP,
            SEGMENT_CAP - 1,
            SEGMENT_CAP + 1,
            2 * SEGMENT_CAP,
            1,
            3,
        ] {
            for _ in 0..delta {
                q.push_stamped(next, next);
                next += 1;
            }
            for _ in 0..delta {
                assert_eq!(q.pop_stamped(), Some((expect, expect)));
                expect += 1;
            }
            // Empty pop at a segment boundary must not lose a slot
            // reservation: the next push must still come out.
            assert_eq!(q.pop_stamped(), None);
        }
        assert_eq!(next, expect);
        q.push_stamped(next, next);
        assert_eq!(q.pop_stamped(), Some((next, next)));
    }

    #[test]
    fn empty_pop_then_push_recovers() {
        let ms = MsQueue::new();
        let sr = SegRingQueue::new();
        let fa = FaaRingQueue::new();
        for round in 0..(3 * SEGMENT_CAP as u64) {
            assert_eq!(ms.pop_stamped(), None);
            assert_eq!(sr.pop_stamped(), None);
            assert_eq!(fa.pop_stamped(), None);
            ms.push_stamped(round, round);
            sr.push_stamped(round, round);
            fa.push_stamped(round, round);
            assert_eq!(ms.pop_stamped(), Some((round, round)));
            assert_eq!(sr.pop_stamped(), Some((round, round)));
            assert_eq!(fa.pop_stamped(), Some((round, round)));
        }
    }

    fn conservation_storm<Q: SubFifo<usize> + 'static>(q: Arc<Q>, threads: usize, per: usize) {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let tok = Q::token();
                    for i in 0..per {
                        let v = t * per + i;
                        q.push(v as u64, v, &tok);
                        if i % 3 == 0 {
                            if let TryPop::Item((_, v)) = q.try_pop(&tok) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate pop of {v}");
            }
        }
        let tok = Q::token();
        while let Some((_, v)) = q.pop_wait(&tok) {
            assert!(seen.insert(v), "duplicate pop of {v}");
        }
        assert_eq!(seen.len(), threads * per, "elements lost");
    }

    #[test]
    fn ms_multithread_conservation() {
        conservation_storm(Arc::new(MsQueue::new()), 8, 5_000 * stress_mult());
    }

    #[test]
    fn segring_multithread_conservation() {
        conservation_storm(Arc::new(SegRingQueue::new()), 8, 5_000 * stress_mult());
    }

    #[test]
    fn segring_recycles_retired_segments() {
        // Churn enough segments single-threadedly that the epoch
        // collector runs (every COLLECT_EVERY deferrals) and the pool
        // starts absorbing allocations.
        let q: SegRingQueue<u64> = SegRingQueue::new();
        let segments = 300u64; // > 64 deferrals, forcing collections
        for i in 0..segments * SEGMENT_CAP as u64 {
            q.push_stamped(i, i);
            assert_eq!(q.pop_stamped(), Some((i, i)));
        }
        let (recycled, reused) = q.segment_reuse_stats();
        assert!(
            recycled > 0,
            "no retired segment ever reached the pool over {segments} segments"
        );
        assert!(
            reused > 0,
            "the pool absorbed no allocation ({recycled} recycled)"
        );
        // Reused segments must still deliver exact FIFO.
        let n = 3 * SEGMENT_CAP as u64;
        for i in 0..n {
            q.push_stamped(i, i * 7);
        }
        for i in 0..n {
            assert_eq!(q.pop_stamped(), Some((i, i * 7)));
        }
    }

    #[test]
    fn segring_pool_conserves_elements_under_contention() {
        // Multithreaded churn across many segment boundaries with the
        // pool active: conservation must hold and stats stay coherent.
        let q: Arc<SegRingQueue<usize>> = Arc::new(SegRingQueue::new());
        conservation_storm(Arc::clone(&q), 8, 3 * SEGMENT_CAP * stress_mult());
        let (recycled, reused) = q.segment_reuse_stats();
        assert!(reused <= recycled + POOL_CAP as u64);
    }

    #[test]
    fn drop_releases_every_remaining_element() {
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let n = 2 * SEGMENT_CAP + 7;
        let popped = 10;
        for which in 0..3 {
            drops.store(0, Ordering::SeqCst);
            match which {
                0 => {
                    let q = MsQueue::new();
                    for i in 0..n {
                        q.push_stamped(i as u64, Counted(Arc::clone(&drops)));
                    }
                    for _ in 0..popped {
                        drop(q.pop_stamped());
                    }
                    drop(q);
                }
                1 => {
                    let q = SegRingQueue::new();
                    for i in 0..n {
                        q.push_stamped(i as u64, Counted(Arc::clone(&drops)));
                    }
                    for _ in 0..popped {
                        drop(q.pop_stamped());
                    }
                    drop(q);
                }
                _ => {
                    let q = FaaRingQueue::new();
                    for i in 0..n {
                        q.push_stamped(i as u64, Counted(Arc::clone(&drops)));
                    }
                    for _ in 0..popped {
                        drop(q.pop_stamped());
                    }
                    drop(q);
                }
            }
            assert_eq!(
                drops.load(Ordering::SeqCst),
                n,
                "queue {which} leaked elements on drop"
            );
        }
    }

    #[test]
    fn head_seq_is_racy_but_memory_safe() {
        // Peeks racing pops must never crash or return stamps that were
        // never pushed.
        let q: Arc<SegRingQueue<u64>> = Arc::new(SegRingQueue::new());
        let n = 20_000 * stress_mult() as u64;
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            for i in 0..n {
                q2.push_stamped(i, i);
            }
        });
        let q3 = Arc::clone(&q);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let peeker = std::thread::spawn(move || {
            let mut peeks = 0u64;
            while !done2.load(Ordering::Acquire) {
                if let Some(s) = q3.head_seq() {
                    assert!(s < n, "peeked stamp {s} never pushed");
                    peeks += 1;
                }
            }
            peeks
        });
        let mut got = 0u64;
        while got < n {
            if q.pop_stamped().is_some() {
                got += 1;
            }
        }
        done.store(true, Ordering::Release);
        pusher.join().unwrap();
        // Liveness is scheduler-dependent (a single-core host may never
        // run the peeker mid-drain); the test's assertions are the bounds
        // checks inside the peeker loop.
        let _peeks = peeker.join().unwrap();
        assert_eq!(q.pop_stamped(), None);
    }

    #[test]
    fn faa_exact_fifo_across_segment_boundaries() {
        // Single-threaded the publish CAS can never lose, so no slot is
        // ever skipped or closed: exact FIFO and exact len must hold.
        let q = FaaRingQueue::new();
        let n = (5 * SEGMENT_CAP + 3) as u64;
        for i in 0..n {
            q.push_stamped(i, i);
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.head_seq(), Some(i));
            assert_eq!(q.pop_stamped(), Some((i, i)));
        }
        assert_eq!(q.pop_stamped(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn faa_wraparound_mixed_ops_at_boundaries() {
        let q = FaaRingQueue::new();
        let mut next = 0u64;
        let mut expect = 0u64;
        for delta in [
            SEGMENT_CAP,
            SEGMENT_CAP - 1,
            SEGMENT_CAP + 1,
            2 * SEGMENT_CAP,
            1,
            3,
        ] {
            for _ in 0..delta {
                q.push_stamped(next, next);
                next += 1;
            }
            for _ in 0..delta {
                assert_eq!(q.pop_stamped(), Some((expect, expect)));
                expect += 1;
            }
            // An empty pop at a segment boundary must not consume a slot
            // claim that would orphan the next push.
            assert_eq!(q.pop_stamped(), None);
        }
        assert_eq!(next, expect);
        q.push_stamped(next, next);
        assert_eq!(q.pop_stamped(), Some((next, next)));
    }

    #[test]
    fn faa_closed_segment_hands_off_to_successor() {
        // White-box: close the tail segment by hand (as a pusher losing
        // CLOSE_AFTER publish races would) and verify pushes re-route to
        // a fresh segment while every prior element still drains.
        let q: FaaRingQueue<u64> = FaaRingQueue::new();
        let guard = epoch::pin();
        let half = (SEGMENT_CAP / 2) as u64;
        for i in 0..half {
            q.push_stamped(i, i);
        }
        {
            let tail = q.tail.load(Ordering::Acquire, &guard);
            let t = unsafe { tail.deref() };
            t.enq.fetch_or(SEG_CLOSED, Ordering::SeqCst);
        }
        // These pushes must skip the closed segment and land in a linked
        // successor.
        for i in half..(half + SEGMENT_CAP as u64) {
            q.push_stamped(i, i);
        }
        {
            let tail = q.tail.load(Ordering::Acquire, &guard);
            let head = q.head.load(Ordering::Acquire, &guard);
            assert_ne!(
                tail.as_raw(),
                head.as_raw(),
                "push into a closed segment did not append a successor"
            );
        }
        drop(guard);
        // FIFO across the closed-segment handoff stays exact: elements
        // below the closed segment's enqueue index were all published.
        for i in 0..(half + SEGMENT_CAP as u64) {
            assert_eq!(q.pop_stamped(), Some((i, i)));
        }
        assert_eq!(q.pop_stamped(), None);
        // The closed segment retired cleanly; the queue keeps working.
        for i in 0..(2 * SEGMENT_CAP as u64) {
            q.push_stamped(i, i * 11);
            assert_eq!(q.pop_stamped(), Some((i, i * 11)));
        }
    }

    #[test]
    fn faa_multithread_conservation() {
        conservation_storm(Arc::new(FaaRingQueue::new()), 8, 5_000 * stress_mult());
    }

    #[test]
    fn faa_pool_conserves_elements_under_contention() {
        let q: Arc<FaaRingQueue<usize>> = Arc::new(FaaRingQueue::new());
        conservation_storm(Arc::clone(&q), 8, 3 * SEGMENT_CAP * stress_mult());
        let (recycled, reused) = q.segment_reuse_stats();
        assert!(reused <= recycled + POOL_CAP as u64);
    }

    #[test]
    fn faa_recycles_retired_segments() {
        let q: FaaRingQueue<u64> = FaaRingQueue::new();
        let segments = 300u64;
        for i in 0..segments * SEGMENT_CAP as u64 {
            q.push_stamped(i, i);
            assert_eq!(q.pop_stamped(), Some((i, i)));
        }
        let (recycled, reused) = q.segment_reuse_stats();
        assert!(recycled > 0, "no retired segment ever reached the pool");
        assert!(reused > 0, "the pool absorbed no allocation");
    }

    #[test]
    fn faa_concurrent_drop_accounting_with_skips() {
        // Pop-heavy storm over owned values: empty pops force skip/close
        // traffic while pushes race in. Every value must be dropped
        // exactly once — popped values by the poppers, survivors by the
        // queue's Drop — or the skip arbitration double-frees/leaks.
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let per = SEGMENT_CAP * stress_mult();
        let threads = 8;
        {
            let q: Arc<FaaRingQueue<Counted>> = Arc::new(FaaRingQueue::new());
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let q = Arc::clone(&q);
                    let drops = Arc::clone(&drops);
                    std::thread::spawn(move || {
                        for i in 0..per {
                            if t % 2 == 0 {
                                q.push_stamped(i as u64, Counted(Arc::clone(&drops)));
                            } else {
                                // Poppers outnumber available items early
                                // on, exercising the skip path.
                                drop(q.pop_stamped());
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            (threads / 2) * per,
            "skip arbitration lost or double-dropped values"
        );
    }

    #[test]
    fn faa_head_seq_is_racy_but_memory_safe() {
        let q: Arc<FaaRingQueue<u64>> = Arc::new(FaaRingQueue::new());
        let n = 20_000 * stress_mult() as u64;
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            for i in 0..n {
                q2.push_stamped(i, i);
            }
        });
        let q3 = Arc::clone(&q);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let peeker = std::thread::spawn(move || {
            while !done2.load(Ordering::Acquire) {
                if let Some(s) = q3.head_seq() {
                    assert!(s < n, "peeked stamp {s} never pushed");
                }
            }
        });
        let mut got = 0u64;
        while got < n {
            if q.pop_stamped().is_some() {
                got += 1;
            }
        }
        done.store(true, Ordering::Release);
        pusher.join().unwrap();
        peeker.join().unwrap();
        assert_eq!(q.pop_stamped(), None);
    }
}
