//! **Bucketed relaxed-FIFO hybrid** — the Δ-stepping unification of the
//! two relaxed engines.
//!
//! The workspace grew two relaxed families in parallel: relaxed
//! *priority* scheduling ([`ConcurrentMultiQueue`]) and relaxed *FIFO*
//! scheduling ([`DRaQueue`](crate::fifo::DRaQueue) /
//! [`DCboQueue`](crate::fifo::DCboQueue)). Δ-stepping is exactly the
//! algorithm that wants both at once: distances quantize into Δ-wide
//! **buckets** that must drain in (approximately) FIFO order, while the
//! order *within* a bucket is free — the paper's Theorem 6.1
//! correspondence between Δ-stepping and relaxed SSSP made explicit as a
//! data structure.
//!
//! [`BucketFifoQueue`] is that structure, a two-level hybrid:
//!
//! * the **outer level** is a relaxed FIFO of *buckets*: bucket `b`
//!   holds every element whose priority `p` satisfies `⌊p/Δ⌋ = b`.
//!   Buckets are keyed by their monotone index and popped by the
//!   d-CBO **oldest-visible discipline**: each bucket carries completed
//!   enqueue/dequeue counters (the d-CBO balanced-operation pair), and a
//!   shared [`floor`](BucketFifoQueue::floor) tracks the oldest bucket
//!   whose counters still show live elements. Pops scan forward from
//!   the floor; a bucket observed drained advances it. The floor is a
//!   *hint* in exactly the sense of the rest of the family: pushes that
//!   land below it pull it back down (`fetch_min` after publication),
//!   and a last-resort directory sweep keeps the sequential guarantee
//!   that a quiescent non-empty queue never reports empty.
//! * each **bucket** is itself a relaxed priority shard set reusing the
//!   MultiQueue's [`SubPriority`] backends (lock-free [`SkipShard`] by
//!   default, [`MutexHeapSub`](crate::skipshard::MutexHeapSub) as the
//!   locked baseline): keyed placement within the bucket so
//!   `push_or_decrease` merges repeated items, choice-of-two pops over
//!   the bucket's shards, mutex-free on the default backend.
//!
//! The hybrid's relaxation factors **compose**: the priority
//! displacement of a pop is at most Δ (everything in one bucket) plus
//! the outer FIFO slack (how far past a live bucket the floor can race,
//! bounded by in-flight operations), instead of the MultiQueue's
//! unbounded `O(q log q)` *rank* slack turning into unbounded *priority*
//! slack on heavy-tailed distributions.
//!
//! Workers drive the queue through a [`BucketSession`] — the bucket
//! member of the worker-session layer (see the [crate docs](crate)):
//! amortized epoch pin, owned home *shard columns* (the same shard
//! index in every bucket, strided across workers), and the bounded
//! spawn buffer whose flush publishes **per bucket**: the buffer is
//! grouped by bucket index so each touched bucket pays one counter
//! bump, and repeated items merge inside the buffer before any shared
//! traffic happens.
//!
//! `rsched-runtime` adapts this as a [`Scheduler`] so
//! `relaxed_delta_stepping` runs on it with plain quiescence
//! termination — no bucket barriers anywhere.
//!
//! [`ConcurrentMultiQueue`]: crate::multiqueue::ConcurrentMultiQueue
//! [`Scheduler`]: ../../rsched_runtime/trait.Scheduler.html

use crate::fifo::PinSession;
use crate::multiqueue::queue_of;
use crate::skipshard::{SkipShard, SubPriority, TryPopMin};
use crate::telemetry;
use crate::{FlushReport, PopSource, PushOutcome, SessionConfig, SessionPush, MAX_SPAWN_BATCH};
use crossbeam::utils::CachePadded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Spine length of the bucket directory.
const SPINE: usize = 1024;

/// Bucket slots per directory segment. Segments allocate lazily (8 KiB
/// of null slots each), so the directory addresses
/// `SPINE × SEG_SLOTS` = 1,048,576 buckets while an idle queue owns
/// only the spine. Priorities past the end clamp into the last bucket —
/// its internal priority order still holds, so clamping is pure
/// relaxation slack, never an error.
const SEG_SLOTS: usize = 1024;

/// Largest addressable bucket index.
const MAX_BUCKET: u64 = (SPINE * SEG_SLOTS) as u64 - 1;

/// One bucket: a relaxed priority shard set plus the d-CBO balanced
/// operation counters that drive the oldest-visible outer discipline.
struct Bucket<S> {
    shards: Box<[CachePadded<S>]>,
    /// Completed net-new enqueues into this bucket.
    enqueues: AtomicU64,
    /// Completed dequeues from this bucket.
    dequeues: AtomicU64,
}

impl<S> Bucket<S> {
    /// Live elements by the counters — exact when quiescent. Mid-flight
    /// it can err both ways: an in-flight *push* (published, counter
    /// not yet bumped) makes it under-count, an in-flight *pop*
    /// (claimed, counter not yet bumped) makes it over-count. Observing
    /// `0` therefore proves emptiness only in a phase with no
    /// concurrent pushes; with pushes in flight, the push-side
    /// `floor.fetch_min` (after publication) and the last-resort
    /// directory sweep in `pop_with_homes` are what keep a skipped
    /// bucket's elements reachable.
    fn approx_len(&self) -> u64 {
        self.enqueues
            .load(Ordering::Acquire)
            .saturating_sub(self.dequeues.load(Ordering::Acquire))
    }
}

/// One directory segment: a fixed slice of lazily allocated buckets.
struct Segment<S> {
    slots: Box<[AtomicPtr<Bucket<S>>]>,
}

/// Split a bucket index into (spine segment, slot offset).
#[inline]
fn locate(b: u64) -> (usize, usize) {
    ((b as usize) / SEG_SLOTS, (b as usize) % SEG_SLOTS)
}

/// The two-level bucketed hybrid: a relaxed FIFO of buckets, each
/// bucket a relaxed priority shard set (see the [module docs](self)).
///
/// Priorities are `u64` (the workspace's distance type); bucket index
/// is `⌊priority/Δ⌋`. Placement within a bucket is keyed
/// ([`push_or_decrease`](Self::push_or_decrease) merges repeated items
/// *per bucket*; the same item queued in two different buckets stays
/// duplicated and surfaces as a stale pop, exactly like every other
/// relaxed scheduler here). `None` from a pop is a hint, not a
/// linearizable emptiness check — callers own termination detection.
///
/// # Examples
///
/// ```
/// use rsched_queues::QueueBuilder;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let q = QueueBuilder::new(4).delta(10).bucket_fifo(); // Δ = 10, 4 shards per bucket
/// for i in 0..100u64 {
///     q.push_or_decrease(i as usize, i);
/// }
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut buckets = Vec::new();
/// while let Some((_, prio)) = q.pop(&mut rng) {
///     buckets.push(prio / 10);
/// }
/// // Single-threaded pops drain buckets in exactly ascending order.
/// assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(buckets.len(), 100);
/// ```
pub struct BucketFifoQueue<S = SkipShard<u64>> {
    spine: [AtomicPtr<Segment<S>>; SPINE],
    delta: u64,
    shards_per_bucket: usize,
    /// Oldest bucket that may still hold elements (monotone hint:
    /// poppers advance it past drained buckets, pushers `fetch_min` it
    /// back down after publishing below it).
    floor: AtomicU64,
    /// Highest bucket index that has ever received an element.
    ceiling: AtomicU64,
    /// Total stored elements (exact when quiescent).
    len: AtomicUsize,
}

impl<S: SubPriority<u64>> BucketFifoQueue<S> {
    /// A hybrid with bucket width `delta` and `shards_per_bucket`
    /// priority shards in every bucket, on backend `S`.
    #[deprecated(note = "use QueueBuilder::new(shards_per_bucket).delta(d).bucket_fifo_on::<S>()")]
    pub fn with_backend(delta: u64, shards_per_bucket: usize) -> Self {
        Self::construct(delta, shards_per_bucket)
    }

    /// The one real constructor, reached through
    /// [`QueueBuilder`](crate::QueueBuilder).
    pub(crate) fn construct(delta: u64, shards_per_bucket: usize) -> Self {
        assert!(delta >= 1, "bucket width must be at least 1");
        assert!(shards_per_bucket >= 1, "a bucket needs at least one shard");
        Self {
            spine: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            delta,
            shards_per_bucket,
            floor: AtomicU64::new(0),
            ceiling: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Bucket width Δ.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Priority shards per bucket.
    pub fn shards_per_bucket(&self) -> usize {
        self.shards_per_bucket
    }

    /// The current oldest-visible bucket hint.
    pub fn floor(&self) -> u64 {
        self.floor.load(Ordering::Acquire)
    }

    /// Highest bucket index that has ever received an element.
    pub fn ceiling(&self) -> u64 {
        self.ceiling.load(Ordering::Acquire)
    }

    /// Number of stored elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if no elements are stored (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buckets currently allocated in the directory.
    pub fn buckets_allocated(&self) -> usize {
        let mut n = 0;
        let ceil = self.ceiling();
        let mut b = 0u64;
        while b <= ceil {
            match self.next_allocated(b, ceil) {
                Some((idx, _)) => {
                    n += 1;
                    b = idx + 1;
                }
                None => break,
            }
        }
        n
    }

    #[inline]
    fn bucket_index(&self, prio: u64) -> u64 {
        (prio / self.delta).min(MAX_BUCKET)
    }

    /// The first allocated bucket at index `>= b` (and `<= ceil`),
    /// skipping whole unallocated segments in one step.
    fn next_allocated(&self, mut b: u64, ceil: u64) -> Option<(u64, &Bucket<S>)> {
        while b <= ceil {
            let (seg, off) = locate(b);
            let seg_ptr = self.spine[seg].load(Ordering::Acquire);
            if seg_ptr.is_null() {
                b = ((seg + 1) * SEG_SLOTS) as u64;
                continue;
            }
            let slots = unsafe { &(*seg_ptr).slots };
            for o in off..SEG_SLOTS {
                let idx = (seg * SEG_SLOTS + o) as u64;
                if idx > ceil {
                    return None;
                }
                let bucket = slots[o].load(Ordering::Acquire);
                if !bucket.is_null() {
                    return Some((idx, unsafe { &*bucket }));
                }
            }
            b = ((seg + 1) * SEG_SLOTS) as u64;
        }
        None
    }

    /// The bucket at index `b`, allocating the segment and/or bucket on
    /// first touch (lock-free: losers of the install CAS free their
    /// allocation and use the winner's).
    fn get_or_alloc_bucket(&self, b: u64) -> &Bucket<S> {
        let (seg, off) = locate(b);
        let mut seg_ptr = self.spine[seg].load(Ordering::Acquire);
        if seg_ptr.is_null() {
            let fresh = Box::into_raw(Box::new(Segment::<S> {
                slots: (0..SEG_SLOTS)
                    .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                    .collect(),
            }));
            match self.spine[seg].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    telemetry::count(telemetry::OpCount::SegInstall, 1);
                    seg_ptr = fresh;
                }
                Err(winner) => {
                    drop(unsafe { Box::from_raw(fresh) });
                    seg_ptr = winner;
                }
            }
        }
        let slot = unsafe { &(*seg_ptr).slots[off] };
        let mut bucket = slot.load(Ordering::Acquire);
        if bucket.is_null() {
            let fresh = Box::into_raw(Box::new(Bucket {
                shards: (0..self.shards_per_bucket)
                    .map(|_| CachePadded::new(S::new()))
                    .collect(),
                enqueues: AtomicU64::new(0),
                dequeues: AtomicU64::new(0),
            }));
            match slot.compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => bucket = fresh,
                Err(winner) => {
                    drop(unsafe { Box::from_raw(fresh) });
                    bucket = winner;
                }
            }
        }
        unsafe { &*bucket }
    }

    /// After publishing an element into bucket `b`: keep the ceiling
    /// and the oldest-visible floor consistent. Runs **after** the
    /// element is visible so the floor can never settle above a live
    /// bucket at quiescence.
    #[inline]
    fn note_push(&self, b: u64) {
        self.ceiling.fetch_max(b, Ordering::AcqRel);
        self.floor.fetch_min(b, Ordering::AcqRel);
    }

    /// Insert `item` at priority `prio` into bucket `⌊prio/Δ⌋`, merging
    /// into an existing entry for the same item *in that bucket* if one
    /// exists at a larger priority. Returns `true` iff a net-new
    /// element entered the structure (the count termination detectors
    /// track).
    pub fn push_or_decrease(&self, item: usize, prio: u64) -> bool {
        self.push_or_decrease_tok(item, prio, &S::token())
    }

    fn push_or_decrease_tok(&self, item: usize, prio: u64, tok: &S::Token) -> bool {
        let b = self.bucket_index(prio);
        let bucket = self.get_or_alloc_bucket(b);
        let shard = &bucket.shards[queue_of(item, self.shards_per_bucket)];
        let inserted = shard.push_or_decrease(item, prio, tok);
        if inserted {
            bucket.enqueues.fetch_add(1, Ordering::AcqRel);
            self.len.fetch_add(1, Ordering::AcqRel);
        }
        self.note_push(b);
        inserted
    }

    /// Relaxed pop: take an element from (approximately) the oldest
    /// live bucket — the minimum of a choice-of-two over that bucket's
    /// shards. `None` only after the directory sweep found nothing; a
    /// hint under concurrency, exact at quiescence.
    pub fn pop<R: Rng>(&self, rng: &mut R) -> Option<(usize, u64)> {
        self.pop_with_homes(&[], &mut 0, rng, &S::token())
            .map(|(item, prio, _)| (item, prio))
    }

    /// The shared pop engine: scan buckets from the floor, advance it
    /// past drained buckets, pop within the first live bucket (home
    /// shard columns first, then choice-of-two, then the bucket sweep),
    /// and fall back to a full directory sweep that re-anchors the
    /// floor. Returns `(item, priority, shard_index)`.
    fn pop_with_homes<R: Rng>(
        &self,
        homes: &[usize],
        rotor: &mut usize,
        rng: &mut R,
        tok: &S::Token,
    ) -> Option<(usize, u64, usize)> {
        // Floor-scan distance: allocated buckets examined before the
        // pop landed (1 = popped straight from the floor bucket).
        let mut scanned = 0u64;
        for _attempt in 0..2 {
            let f = self.floor.load(Ordering::Acquire);
            let ceil = self.ceiling.load(Ordering::Acquire);
            let mut b = f;
            while b <= ceil {
                let Some((idx, bucket)) = self.next_allocated(b, ceil) else {
                    break;
                };
                scanned += 1;
                if idx > b {
                    // Unallocated gap at the front: advance past it.
                    self.try_advance_floor(b, idx);
                }
                if bucket.approx_len() == 0 {
                    self.try_advance_floor(idx, idx + 1);
                } else if let Some(got) = self.pop_in_bucket(bucket, homes, rotor, rng, tok) {
                    telemetry::record(telemetry::OpHist::Floor, scanned);
                    return Some(got);
                }
                // A live-looking bucket that yielded nothing drained
                // under us: fall through to the next.
                b = idx + 1;
            }
            if self.len.load(Ordering::Acquire) == 0 {
                telemetry::count(telemetry::OpCount::EmptyPop, 1);
                return None;
            }
        }
        // Last resort: the floor may have raced past a bucket that was
        // refilled concurrently. Sweep the whole directory from bucket
        // 0 and pull the floor back down to anything found — this is
        // what keeps "quiescent non-empty never reports empty" true
        // without any ordering subtlety on the floor.
        let ceil = self.ceiling.load(Ordering::Acquire);
        let mut b = 0u64;
        while let Some((idx, bucket)) = self.next_allocated(b, ceil) {
            scanned += 1;
            if bucket.approx_len() > 0 {
                if let Some(got) = self.pop_in_bucket(bucket, homes, rotor, rng, tok) {
                    self.floor.fetch_min(idx, Ordering::AcqRel);
                    telemetry::record(telemetry::OpHist::Floor, scanned);
                    return Some(got);
                }
            }
            b = idx + 1;
        }
        telemetry::count(telemetry::OpCount::EmptyPop, 1);
        None
    }

    /// Advance the floor from `from` to `to` (buckets in between were
    /// observed drained or unallocated). The CAS re-validates the
    /// current value so concurrent poppers cannot leapfrog, and pushers
    /// that published below meanwhile win via their `fetch_min` (or,
    /// in the worst interleaving, via the last-resort sweep above).
    #[inline]
    fn try_advance_floor(&self, from: u64, to: u64) {
        let _ = self
            .floor
            .compare_exchange(from, to, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Pop one element out of `bucket`: drain the session's home shard
    /// columns first, then run choice-of-two peek-compare-claim rounds,
    /// then sweep every shard. Bumps the bucket/global counters on
    /// success. `None` means the bucket raced to empty.
    fn pop_in_bucket<R: Rng>(
        &self,
        bucket: &Bucket<S>,
        homes: &[usize],
        rotor: &mut usize,
        rng: &mut R,
        tok: &S::Token,
    ) -> Option<(usize, u64, usize)> {
        let q = self.shards_per_bucket;
        let claim = |shard: usize| -> Option<(usize, u64)> {
            match bucket.shards[shard].try_pop_min(tok) {
                TryPopMin::Item(pair) => Some(pair),
                TryPopMin::Empty | TryPopMin::Contended => None,
            }
        };
        let finish = |item: usize, prio: u64, shard: usize| {
            bucket.dequeues.fetch_add(1, Ordering::AcqRel);
            self.len.fetch_sub(1, Ordering::AcqRel);
            (item, prio, shard)
        };
        // Locality phase: resume at the last hot home column.
        let nh = homes.len();
        for i in 0..nh {
            let idx = (*rotor + i) % nh;
            let c = homes[idx];
            if let Some((item, prio)) = claim(c) {
                *rotor = idx;
                telemetry::record(telemetry::OpHist::Steal, 0);
                return Some(finish(item, prio, c));
            }
        }
        // Choice-of-two rounds: racy-safe min peeks, claim the winner.
        for round in 0..(2 * q + 4) {
            let a = rng.gen_range(0..q);
            let b2 = rng.gen_range(0..q);
            let ka = bucket.shards[a].min_key(tok);
            let kb = if b2 == a {
                None
            } else {
                bucket.shards[b2].min_key(tok)
            };
            let win = match (ka, kb) {
                (None, None) => {
                    if bucket.approx_len() == 0 {
                        return None;
                    }
                    continue;
                }
                (Some(_), None) => a,
                (None, Some(_)) => b2,
                (Some(x), Some(y)) => {
                    if x <= y {
                        a
                    } else {
                        b2
                    }
                }
            };
            if let Some((item, prio)) = claim(win) {
                telemetry::record(telemetry::OpHist::Steal, round as u64);
                return Some(finish(item, prio, win));
            }
        }
        // Bucket sweep: visit every shard, waiting on any locks.
        for c in 0..q {
            if let Some((item, prio)) = bucket.shards[c].pop_min_wait(tok) {
                telemetry::record(telemetry::OpHist::Sweep, (c + 1) as u64);
                return Some(finish(item, prio, c));
            }
        }
        None
    }

    /// Open a worker session (see [`BucketSession`]): home shard
    /// columns strided by `cfg.tid`/`cfg.workers`, spawn buffer of
    /// `cfg.spawn_batch`, epoch pin live iff the backend needs one.
    pub fn session(&self, cfg: &SessionConfig) -> BucketSession {
        let workers = cfg.workers.max(1);
        let q = self.shards_per_bucket;
        let spw = cfg.shards_per_worker.min(q);
        let mut homes = Vec::with_capacity(spw);
        for i in 0..spw {
            let shard = (cfg.tid + i * workers) % q;
            if !homes.contains(&shard) {
                homes.push(shard);
            }
        }
        let batch = cfg.spawn_batch.clamp(1, MAX_SPAWN_BATCH);
        BucketSession {
            pin: PinSession::new(S::NEEDS_EPOCH),
            // `cfg.seed` is already the per-worker stream (the config
            // constructors mix the tid in exactly once).
            rng: SmallRng::seed_from_u64(cfg.seed),
            homes,
            rotor: 0,
            buf: Vec::with_capacity(if batch > 1 { batch } else { 0 }),
            batch,
        }
    }

    /// Session push: immediate `push_or_decrease` when
    /// `spawn_batch == 1`; otherwise the item parks in the buffer —
    /// merging into an already buffered entry for the same item when
    /// possible (the per-bucket merge dedup: the kept priority decides
    /// the bucket at flush time) — and a full buffer publishes itself.
    pub fn push_session(&self, item: usize, prio: u64, s: &mut BucketSession) -> PushOutcome {
        if s.batch <= 1 {
            s.pin.tick();
            let tok = S::borrow_token(&s.pin);
            let push = if self.push_or_decrease_tok(item, prio, &tok) {
                SessionPush::Inserted
            } else {
                SessionPush::Merged
            };
            return PushOutcome::immediate(push);
        }
        // Bounded-window local dedup, as in the MultiQueue session: a
        // duplicate that escapes the window merges at flush time and is
        // reported back through the FlushReport.
        const DEDUP_WINDOW: usize = 32;
        let window = s.buf.len().saturating_sub(DEDUP_WINDOW);
        if let Some(slot) = s.buf[window..].iter_mut().find(|(it, _)| *it == item) {
            if prio < slot.1 {
                slot.1 = prio;
            }
            return PushOutcome::immediate(SessionPush::Merged);
        }
        s.buf.push((item, prio));
        let flushed = if s.buf.len() >= s.batch {
            self.flush_session(s)
        } else {
            FlushReport::default()
        };
        PushOutcome {
            push: SessionPush::Buffered,
            flushed,
        }
    }

    /// Publish everything parked in the session buffer, **grouped by
    /// bucket**: the buffer is sorted by bucket index so every touched
    /// bucket pays one enqueue-counter bump and one directory walk, and
    /// the floor/ceiling update once per flush. The report's `merged`
    /// count retracts parked-as-new elements that hit existing entries.
    pub fn flush_session(&self, s: &mut BucketSession) -> FlushReport {
        if s.buf.is_empty() {
            return FlushReport::default();
        }
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let delta = self.delta;
        s.buf
            .sort_unstable_by_key(|&(item, prio)| (prio / delta, item));
        let mut rep = FlushReport::default();
        let mut lo_bucket = u64::MAX;
        let mut hi_bucket = 0u64;
        let mut i = 0;
        while i < s.buf.len() {
            let b = self.bucket_index(s.buf[i].1);
            let bucket = self.get_or_alloc_bucket(b);
            let mut inserted = 0u64;
            while i < s.buf.len() && self.bucket_index(s.buf[i].1) == b {
                let (item, prio) = s.buf[i];
                rep.published += 1;
                if bucket.shards[queue_of(item, self.shards_per_bucket)]
                    .push_or_decrease(item, prio, &tok)
                {
                    inserted += 1;
                } else {
                    rep.merged += 1;
                }
                i += 1;
            }
            if inserted > 0 {
                bucket.enqueues.fetch_add(inserted, Ordering::AcqRel);
                self.len.fetch_add(inserted as usize, Ordering::AcqRel);
            }
            lo_bucket = lo_bucket.min(b);
            hi_bucket = hi_bucket.max(b);
        }
        s.buf.clear();
        self.ceiling.fetch_max(hi_bucket, Ordering::AcqRel);
        self.floor.fetch_min(lo_bucket, Ordering::AcqRel);
        telemetry::count(telemetry::OpCount::FlushPublished, rep.published);
        telemetry::count(telemetry::OpCount::FlushMerged, rep.merged);
        rep
    }

    /// Locality-aware session pop: the oldest-visible bucket scan, with
    /// the session's home shard columns drained first inside the chosen
    /// bucket ([`PopSource::Home`]) before the choice-of-two steal
    /// rounds ([`PopSource::Steal`]). Sessions without affinity report
    /// [`PopSource::Shared`]. Buffered spawns are **not** popped here —
    /// flush on a miss (the runtime's worker loop does).
    pub fn pop_session(&self, s: &mut BucketSession) -> Option<((usize, u64), PopSource)> {
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let mut rotor = s.rotor;
        let out = self.pop_with_homes(&s.homes, &mut rotor, &mut s.rng, &tok);
        s.rotor = rotor;
        out.map(|(item, prio, shard)| {
            let src = if s.homes.is_empty() {
                PopSource::Shared
            } else if s.homes.contains(&shard) {
                PopSource::Home
            } else {
                PopSource::Steal
            };
            ((item, prio), src)
        })
    }

    /// Drain every element, unordered. Requires `&mut self`, i.e.
    /// quiescence.
    pub fn drain(&mut self) -> Vec<(usize, u64)> {
        let tok = S::token();
        let mut out = Vec::with_capacity(self.len());
        let ceil = self.ceiling.load(Ordering::Acquire);
        let mut b = 0u64;
        while let Some((idx, bucket)) = self.next_allocated(b, ceil) {
            for shard in bucket.shards.iter() {
                while let Some(pair) = shard.pop_min_wait(&tok) {
                    out.push(pair);
                }
            }
            bucket
                .dequeues
                .store(bucket.enqueues.load(Ordering::Acquire), Ordering::Release);
            b = idx + 1;
        }
        self.len.store(0, Ordering::Release);
        self.floor.store(ceil + 1, Ordering::Release);
        out
    }
}

impl BucketFifoQueue<SkipShard<u64>> {
    /// A hybrid with bucket width `delta` and `shards_per_bucket`
    /// shards per bucket, on the default lock-free skiplist backend.
    #[deprecated(note = "use QueueBuilder::new(shards_per_bucket).delta(d).bucket_fifo()")]
    pub fn new(delta: u64, shards_per_bucket: usize) -> Self {
        Self::construct(delta, shards_per_bucket)
    }
}

impl<S> Drop for BucketFifoQueue<S> {
    fn drop(&mut self) {
        for seg in &self.spine {
            let seg_ptr = seg.load(Ordering::Acquire);
            if seg_ptr.is_null() {
                continue;
            }
            let seg = unsafe { Box::from_raw(seg_ptr) };
            for slot in seg.slots.iter() {
                let bucket = slot.load(Ordering::Acquire);
                if !bucket.is_null() {
                    drop(unsafe { Box::from_raw(bucket) });
                }
            }
        }
    }
}

impl<S: SubPriority<u64>> std::fmt::Debug for BucketFifoQueue<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketFifoQueue")
            .field("delta", &self.delta)
            .field("shards_per_bucket", &self.shards_per_bucket)
            .field("floor", &self.floor())
            .field("ceiling", &self.ceiling())
            .field("len", &self.len())
            .finish()
    }
}

/// A worker's session over a [`BucketFifoQueue`] — the hybrid member of
/// the workspace's worker-session layer.
///
/// Carries the amortized epoch [`PinSession`], the worker's private
/// shard-picker RNG, its owned **home shard columns** (the same shard
/// indices in every bucket, strided across workers exactly like
/// [`FifoSession`](crate::fifo::FifoSession) homes), and the bounded
/// spawn buffer with per-bucket merge dedup (see
/// [`push_session`](BucketFifoQueue::push_session) /
/// [`flush_session`](BucketFifoQueue::flush_session)).
#[derive(Debug)]
pub struct BucketSession {
    pin: PinSession,
    rng: SmallRng,
    /// Home shard indices, valid in every bucket (a shard *column*).
    homes: Vec<usize>,
    /// Index into `homes` of the last home hit.
    rotor: usize,
    buf: Vec<(usize, u64)>,
    batch: usize,
}

impl BucketSession {
    /// The home shard columns this session owns (empty = no affinity).
    pub fn homes(&self) -> &[usize] {
        &self.homes
    }

    /// Elements parked in the spawn buffer, not yet published.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueueBuilder;
    use crate::skipshard::MutexHeapSub;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn locate_partitions_the_index_space() {
        let mut expected = 0u64;
        for seg in 0..4 {
            for off in 0..SEG_SLOTS {
                assert_eq!(locate(expected), (seg, off), "bucket {expected}");
                expected += 1;
            }
        }
        let (seg, off) = locate(MAX_BUCKET);
        assert!(seg < SPINE);
        assert!(off < SEG_SLOTS);
    }

    #[test]
    fn sequential_pops_drain_buckets_in_order() {
        fn check<S: SubPriority<u64>>() {
            let q: BucketFifoQueue<S> = QueueBuilder::new(4).delta(10).bucket_fifo_on();
            // Insert in shuffled priority order across 20 buckets.
            let mut rng = SmallRng::seed_from_u64(3);
            let mut prios: Vec<u64> = (0..400).collect();
            for i in (1..prios.len()).rev() {
                prios.swap(i, rng.gen_range(0..=i));
            }
            for (item, &p) in prios.iter().enumerate() {
                assert!(q.push_or_decrease(item, p));
            }
            assert_eq!(q.len(), 400);
            let mut buckets = Vec::new();
            while let Some((_, p)) = q.pop(&mut rng) {
                buckets.push(p / 10);
            }
            assert_eq!(buckets.len(), 400);
            assert!(
                buckets.windows(2).all(|w| w[0] <= w[1]),
                "single-threaded bucket order must be exactly monotone"
            );
            assert!(q.is_empty());
        }
        check::<SkipShard<u64>>();
        check::<MutexHeapSub<u64>>();
        check::<crate::flatcomb::FcHeapSub<u64>>();
    }

    #[test]
    fn intra_bucket_displacement_is_bounded_by_delta() {
        // The hybrid's composed relaxation: a sequential pop comes from
        // the oldest live bucket, so its priority exceeds the current
        // global minimum by less than Δ.
        let q = QueueBuilder::new(8).delta(100).bucket_fifo();
        for item in 0..1000usize {
            q.push_or_decrease(item, (item as u64 * 7919) % 5000);
        }
        let mut rng = SmallRng::seed_from_u64(11);
        let mut live: Vec<u64> = (0..1000).map(|i| (i as u64 * 7919) % 5000).collect();
        live.sort_unstable();
        while let Some((_, p)) = q.pop(&mut rng) {
            let min = live[0];
            assert!(p < min + 100, "pop at {p} while global min is {min}");
            let pos = live.binary_search(&p).expect("popped a live priority");
            live.remove(pos);
        }
        assert!(live.is_empty());
    }

    #[test]
    fn push_or_decrease_merges_within_a_bucket_only() {
        let q = QueueBuilder::new(4).delta(10).bucket_fifo();
        assert!(q.push_or_decrease(5, 25)); // bucket 2
        assert!(!q.push_or_decrease(5, 22), "same bucket: merged");
        assert_eq!(q.len(), 1);
        assert!(
            q.push_or_decrease(5, 7),
            "different bucket: a new (duplicate) element"
        );
        assert_eq!(q.len(), 2);
        let mut rng = SmallRng::seed_from_u64(0);
        // The bucket discipline pops the lower-bucket copy first.
        assert_eq!(q.pop(&mut rng), Some((5, 7)));
        assert_eq!(q.pop(&mut rng), Some((5, 22)));
        assert_eq!(q.pop(&mut rng), None);
    }

    #[test]
    fn huge_priorities_clamp_into_the_last_bucket() {
        let q = QueueBuilder::new(2).delta(1).bucket_fifo();
        q.push_or_decrease(0, u64::MAX - 1);
        q.push_or_decrease(1, 3);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(q.pop(&mut rng), Some((1, 3)));
        assert_eq!(q.pop(&mut rng), Some((0, u64::MAX - 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn conservation_under_mixed_ops() {
        let q = QueueBuilder::new(4).delta(16).bucket_fifo();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut net = 0i64;
        let mut popped = 0u64;
        for op in 0..20_000 {
            if op % 3 != 2 {
                let item = rng.gen_range(0..256usize);
                let prio = rng.gen_range(0..4_096u64);
                if q.push_or_decrease(item, prio) {
                    net += 1;
                }
            } else if q.pop(&mut rng).is_some() {
                popped += 1;
                net -= 1;
            }
        }
        while q.pop(&mut rng).is_some() {
            popped += 1;
            net -= 1;
        }
        assert_eq!(net, 0, "net inserts must equal pops after a full drain");
        assert!(popped > 0);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_storm_conserves_counts() {
        let q: Arc<BucketFifoQueue> = Arc::new(QueueBuilder::new(8).delta(32).bucket_fifo());
        let threads = 8;
        let per = 4_000usize;
        let results: Vec<(i64, u64)> = std::thread::scope(|s| {
            (0..threads)
                .map(|t| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                        let (mut net, mut pops) = (0i64, 0u64);
                        for i in 0..per {
                            let item = t * per + i;
                            if q.push_or_decrease(item, rng.gen_range(0..10_000)) {
                                net += 1;
                            }
                            if i % 2 == 0 && q.pop(&mut rng).is_some() {
                                pops += 1;
                                net -= 1;
                            }
                        }
                        (net, pops)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut net: i64 = results.iter().map(|r| r.0).sum();
        let mut rng = SmallRng::seed_from_u64(0);
        while q.pop(&mut rng).is_some() {
            net -= 1;
        }
        assert_eq!(net, 0, "storm lost or duplicated elements");
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_storm_conserves_counts_flatcomb() {
        // Same conservation storm over flat-combining bucket shards —
        // the convoy-case backend the bucket bench sweeps.
        let q: Arc<BucketFifoQueue<crate::flatcomb::FcHeapSub<u64>>> =
            Arc::new(QueueBuilder::new(4).delta(32).bucket_fifo_on());
        let threads = 8;
        let per = 2_000usize;
        let results: Vec<i64> = std::thread::scope(|s| {
            (0..threads)
                .map(|t| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(t as u64 + 1);
                        let mut net = 0i64;
                        for i in 0..per {
                            let item = t * per + i;
                            if q.push_or_decrease(item, rng.gen_range(0..10_000)) {
                                net += 1;
                            }
                            if i % 2 == 0 && q.pop(&mut rng).is_some() {
                                net -= 1;
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut net: i64 = results.iter().sum();
        let mut rng = SmallRng::seed_from_u64(0);
        while q.pop(&mut rng).is_some() {
            net -= 1;
        }
        assert_eq!(net, 0, "flat-combining storm lost or duplicated elements");
        assert!(q.is_empty());
    }

    #[test]
    fn session_batched_pushes_group_by_bucket_and_dedup() {
        let q = QueueBuilder::new(4).delta(10).bucket_fifo();
        // Pre-existing entry in bucket 3: the flush of item 9 merges.
        q.push_or_decrease(9, 35);
        let mut s = q.session(&SessionConfig {
            spawn_batch: 16,
            ..SessionConfig::default()
        });
        assert_eq!(q.push_session(1, 50, &mut s).push, SessionPush::Buffered);
        // Same item again: merged inside the buffer (keeps the min).
        assert_eq!(q.push_session(1, 42, &mut s).push, SessionPush::Merged);
        assert_eq!(q.push_session(2, 5, &mut s).push, SessionPush::Buffered);
        assert_eq!(q.push_session(9, 31, &mut s).push, SessionPush::Buffered);
        assert_eq!(s.buffered(), 3);
        assert_eq!(q.len(), 1, "parked spawns are invisible");
        let rep = q.flush_session(&mut s);
        assert_eq!(rep.published, 3);
        assert_eq!(rep.merged, 1, "item 9 merged into the live entry");
        assert_eq!(q.len(), 3);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(q.pop(&mut rng), Some((2, 5)));
        assert_eq!(q.pop(&mut rng), Some((9, 31)), "flush kept the decrease");
        assert_eq!(q.pop(&mut rng), Some((1, 42)), "buffer kept the minimum");
    }

    #[test]
    fn session_home_columns_classify_pops() {
        let q = QueueBuilder::new(4).delta(50).bucket_fifo();
        let cfg = SessionConfig {
            shards_per_worker: 2,
            ..SessionConfig::for_worker(1, 2)
        };
        let mut s = q.session(&cfg);
        assert_eq!(s.homes(), &[1, 3], "strided home columns");
        for i in 0..200usize {
            q.push_session(i, (i as u64) % 150, &mut s);
        }
        let (mut homes, mut steals) = (0u32, 0u32);
        while let Some((_, src)) = q.pop_session(&mut s) {
            match src {
                PopSource::Home => homes += 1,
                PopSource::Steal => steals += 1,
                PopSource::Shared => panic!("affine session reported Shared"),
            }
        }
        assert_eq!(homes + steals, 200);
        assert!(homes > 0, "home columns never drained first");
        assert!(steals > 0, "foreign shards never stolen from");
    }

    #[test]
    fn session_conservation_across_threads() {
        let q: Arc<BucketFifoQueue> = Arc::new(QueueBuilder::new(4).delta(20).bucket_fifo());
        let threads = 4;
        let per = 2_000usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    let mut s = q.session(&SessionConfig {
                        spawn_batch: 8,
                        ..SessionConfig::for_worker(t, threads)
                    });
                    for i in 0..per {
                        q.push_session(t * per + i, (i as u64) * 3, &mut s);
                    }
                    q.flush_session(&mut s);
                });
            }
        });
        let mut drain = q.session(&SessionConfig::unaffine(3));
        let mut seen = HashSet::new();
        while let Some(((item, _), src)) = q.pop_session(&mut drain) {
            assert_eq!(src, PopSource::Shared, "unaffine session pops are Shared");
            assert!(seen.insert(item), "duplicate {item}");
        }
        assert_eq!(seen.len(), threads * per);
    }

    #[test]
    fn drain_empties_everything() {
        let mut q = QueueBuilder::new(3).delta(7).bucket_fifo();
        for i in 0..500usize {
            q.push_or_decrease(i, (i as u64) % 400);
        }
        let all = q.drain();
        assert_eq!(all.len(), 500);
        assert!(q.is_empty());
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(q.pop(&mut rng), None);
        // Reusable after a drain.
        q.push_or_decrease(0, 9);
        assert_eq!(q.pop(&mut rng), Some((0, 9)));
    }
}
