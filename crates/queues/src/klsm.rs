//! A k-LSM-style concurrent relaxed priority queue with a *deterministic*
//! relaxation bound.
//!
//! The k-LSM of Wimmer et al. (the paper's example of a scheduler that
//! enforces RankBound and Fairness "deterministically, where k is a tunable
//! parameter") combines per-thread log-structured merge components with a
//! shared relaxed component: elements a thread inserts stay in its local
//! component — invisible to other threads — until spilled into the shared
//! one, and that bounded invisibility is the only source of relaxation.
//!
//! [`KLsmQueue`] implements the same semantics in simplified form: each
//! [`KLsmHandle`] buffers up to `buffer_cap` insertions locally (sorted),
//! spilling them into a shared exact heap when full; `pop` takes the
//! smaller of the local minimum and the shared minimum. At any moment at
//! most `(handles − 1) · buffer_cap` elements can be hidden from a popping
//! thread, so every pop returns one of the
//! `k = (handles − 1) · buffer_cap + 1` smallest elements —
//! a deterministic RankBound, with no randomization anywhere.

use crate::heap::IndexedBinaryHeap;
use crate::PriorityQueue;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared state of the k-LSM queue. Create handles with
/// [`KLsmQueue::handle`]; all queue operations go through handles.
pub struct KLsmQueue<P: Ord + Copy> {
    global: Mutex<IndexedBinaryHeap<P>>,
    buffer_cap: usize,
    len: AtomicUsize,
    handles: AtomicUsize,
}

impl<P: Ord + Copy + Send> KLsmQueue<P> {
    /// A queue whose handles buffer up to `buffer_cap` local insertions.
    pub fn new(buffer_cap: usize) -> Self {
        assert!(buffer_cap >= 1);
        Self {
            global: Mutex::new(IndexedBinaryHeap::new()),
            buffer_cap,
            len: AtomicUsize::new(0),
            handles: AtomicUsize::new(0),
        }
    }

    /// Create a per-thread handle.
    pub fn handle(&self) -> KLsmHandle<'_, P> {
        self.handles.fetch_add(1, Ordering::AcqRel);
        KLsmHandle {
            queue: self,
            local: Vec::with_capacity(self.buffer_cap + 1),
        }
    }

    /// Total stored elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if no elements are stored (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deterministic relaxation factor for the current handle count:
    /// `(handles − 1) · buffer_cap + 1`.
    pub fn relaxation_factor(&self) -> usize {
        let h = self.handles.load(Ordering::Acquire).max(1);
        (h - 1) * self.buffer_cap + 1
    }
}

/// A per-thread handle to a [`KLsmQueue`].
///
/// Dropping a handle spills its local buffer into the shared component, so
/// no elements are lost when worker threads finish.
///
/// # Examples
///
/// ```
/// use rsched_queues::KLsmQueue;
///
/// let q = KLsmQueue::new(4);
/// let mut h = q.handle();
/// for i in 0..10usize {
///     h.insert(i, i as u64);
/// }
/// // A single handle sees everything: exact order.
/// assert_eq!(h.pop(), Some((0, 0)));
/// assert_eq!(h.pop(), Some((1, 1)));
/// ```
pub struct KLsmHandle<'q, P: Ord + Copy> {
    queue: &'q KLsmQueue<P>,
    /// Sorted descending by `(prio, item)` — the minimum is at the end.
    local: Vec<(P, usize)>,
}

impl<P: Ord + Copy + Send> KLsmHandle<'_, P> {
    /// Insert `item` with priority `prio`. Items must be globally unique
    /// across handles (dense task ids, as elsewhere in this crate).
    pub fn insert(&mut self, item: usize, prio: P) {
        let pos = self.local.partition_point(|&(p, i)| (p, i) > (prio, item));
        self.local.insert(pos, (prio, item));
        self.queue.len.fetch_add(1, Ordering::AcqRel);
        if self.local.len() > self.queue.buffer_cap {
            self.spill();
        }
    }

    /// Move the entire local buffer into the shared heap.
    pub fn spill(&mut self) {
        if self.local.is_empty() {
            return;
        }
        let mut global = self.queue.global.lock();
        for (prio, item) in self.local.drain(..) {
            global.push(item, prio);
        }
    }

    /// Pop the smaller of the local minimum and the shared minimum.
    ///
    /// Returns `None` when both are empty — elements buffered in *other*
    /// handles are invisible (that is the relaxation), so callers
    /// coordinate termination externally, as with the other concurrent
    /// queues.
    pub fn pop(&mut self) -> Option<(usize, P)> {
        let local_min = self.local.last().copied();
        let mut global = self.queue.global.lock();
        let global_min = global.peek();
        let use_local = match (local_min, global_min) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((lp, li)), Some((gi, gp))) => (lp, li) <= (gp, gi),
        };
        let got = if use_local {
            let (p, i) = self.local.pop().expect("local non-empty");
            Some((i, p))
        } else {
            global.pop()
        };
        drop(global);
        self.queue.len.fetch_sub(1, Ordering::AcqRel);
        got
    }
}

impl<P: Ord + Copy> Drop for KLsmHandle<'_, P> {
    fn drop(&mut self) {
        if !self.local.is_empty() {
            let mut global = self.queue.global.lock();
            for (prio, item) in self.local.drain(..) {
                global.push(item, prio);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn single_handle_is_exact() {
        let q = KLsmQueue::new(8);
        let mut h = q.handle();
        for (i, p) in [50u64, 10, 40, 20, 30].into_iter().enumerate() {
            h.insert(i, p);
        }
        let mut out = Vec::new();
        while let Some((_, p)) = h.pop() {
            out.push(p);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
        assert!(q.is_empty());
    }

    #[test]
    fn spill_makes_elements_visible() {
        let q = KLsmQueue::new(4);
        let mut a = q.handle();
        let mut b = q.handle();
        a.insert(0, 5u64);
        // b cannot see a's buffered element...
        assert_eq!(b.pop(), None);
        // ...until a spills.
        a.spill();
        assert_eq!(b.pop(), Some((0, 5)));
    }

    #[test]
    fn rank_bound_is_hidden_buffer_size() {
        // With 2 handles and cap 4, a popping handle can miss at most the 4
        // elements buffered in the other handle: rank <= 5.
        let q = KLsmQueue::new(4);
        let mut a = q.handle();
        let mut b = q.handle();
        // a buffers the 4 smallest; b inserts (and spills) larger ones.
        for i in 0..4usize {
            a.insert(i, i as u64);
        }
        for i in 4..20usize {
            b.insert(i, i as u64);
        }
        b.spill();
        let (item, prio) = b.pop().expect("shared heap non-empty");
        // b missed a's 4 smallest: returned rank is exactly 5.
        assert_eq!((item, prio), (4, 4));
        assert!(prio < q.relaxation_factor() as u64 + 4);
    }

    #[test]
    fn overflow_spills_automatically() {
        let q = KLsmQueue::new(2);
        let mut a = q.handle();
        let mut b = q.handle();
        for i in 0..10usize {
            a.insert(i, (10 - i) as u64);
        }
        // Buffer cap 2: at least 8 elements must have spilled to shared.
        let mut seen = 0;
        while b.pop().is_some() {
            seen += 1;
        }
        assert!(seen >= 8, "only {seen} visible to the other handle");
    }

    #[test]
    fn multithreaded_conservation() {
        let q: Arc<KLsmQueue<u64>> = Arc::new(KLsmQueue::new(8));
        let threads = 4;
        let per = 2000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.handle();
                    let mut popped = Vec::new();
                    for i in 0..per {
                        h.insert(t * per + i, ((i * 31) % 997) as u64);
                        if i % 2 == 1 {
                            if let Some((it, _)) = h.pop() {
                                popped.push(it);
                            }
                        }
                    }
                    h.spill();
                    popped
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for it in h.join().unwrap() {
                assert!(seen.insert(it), "duplicate pop {it}");
            }
        }
        let mut h = q.handle();
        while let Some((it, _)) = h.pop() {
            assert!(seen.insert(it), "duplicate pop {it}");
        }
        assert_eq!(seen.len(), threads * per, "lost elements");
    }
}
