//! Flat-combining priority shard: [`FcHeapSub`].
//!
//! The mutex-heap baseline collapses under contention not because the
//! heap is slow but because the *lock convoy* is: every thread pays a
//! cache-line bounce and a context-switch lottery per op, so throughput
//! falls as threads rise (`ci/baselines/bucket_contention.json` has the
//! measurement). Flat combining (Hendler, Incze, Shavit, Tzafrir,
//! SPAA'10) inverts the deal: instead of everyone fighting for the lock,
//! each thread **publishes** its operation into a per-thread publication
//! record, and whichever thread does hold the lock — the *combiner* —
//! batch-applies every pending record against the sequential
//! [`IndexedBinaryHeap`] before releasing. Contended ops cost one shared
//! write and a local spin; the data structure itself is touched by one
//! cache-warm thread at a time.
//!
//! # Protocol
//!
//! Each shard owns a fixed array of [`NREC`] cache-padded records, each
//! a tiny state machine:
//!
//! ```text
//! EMPTY → WRITING → PENDING → APPLYING → DONE → EMPTY
//!   claim    write op   combiner CAS   result ready  waiter frees
//! ```
//!
//! An operation claims a free record (probe start is spread by a
//! per-thread offset), writes its payload, flips the record `PENDING`,
//! then alternates between try-locking the heap (winning makes *it* the
//! combiner) and spinning on its own record. A combiner walks the whole
//! record array once per pass, CASing each `PENDING` record to
//! `APPLYING` (so a timed-out `try_pop_min` can safely *cancel* a
//! record the combiner has not yet committed to), applying the op, and
//! publishing the result with a `DONE` store. Applying **all** pending
//! records each pass is the starvation bound: a record that is
//! `PENDING` when a pass begins is served by that pass — no record
//! waits more than one full pass plus the pass in flight (the fairness
//! test pins this to a counted bound).
//!
//! If every record is busy (more threads than records), the op falls
//! back to taking the heap lock directly — same serialization the
//! mutex baseline always pays, correctness unchanged.
//!
//! # What gets measured
//!
//! Each combining pass that applies at least one op records the batch
//! size under [`telemetry::OpHist::Batch`], adds it to
//! [`telemetry::OpCount::Combined`], and bumps
//! [`telemetry::OpCount::ClaimFanout`] — so `combined / claim_fanout`
//! is the mean combining fan-out and the `Batch` histogram tail shows
//! how big the convoy the combiner absorbs actually gets. The
//! practically-wait-free story (Alistarh, Censor-Hillel, Shavit) reads
//! off the same snapshot: ops never retry a CAS here, they wait one
//! bounded combining round instead.

use crate::fifo::{PinSession, TokRef};
use crate::heap::IndexedBinaryHeap;
use crate::skipshard::{SubPriority, TryPopMin};
use crate::telemetry;
use crate::{DecreaseKey, PriorityQueue};
use crossbeam::utils::{Backoff, CachePadded};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Publication records per shard. Eight covers the contention sweeps'
/// thread counts without bloating per-shard footprint (`BucketFifoQueue`
/// allocates a full shard set per bucket); extra threads overflow to the
/// direct-lock path.
pub const NREC: usize = 8;

/// Record states (see the module docs for the lifecycle).
const EMPTY: usize = 0;
const WRITING: usize = 1;
const PENDING: usize = 2;
const APPLYING: usize = 3;
const DONE: usize = 4;

/// One published operation. `P: Copy` keeps the whole payload `Copy`, so
/// records never need drop handling.
#[derive(Clone, Copy)]
enum FcOp<P> {
    PushOrDecrease(usize, P),
    Push(usize, P),
    PopMin,
    Remove(usize),
    DecreaseKey(usize, P),
    Contains(usize),
    PriorityOf(usize),
}

/// A combiner's answer, written into the record before the `DONE` flip.
#[derive(Clone, Copy)]
enum FcResp<P> {
    Bool(bool),
    OptPair(Option<(usize, P)>),
    OptPrio(Option<P>),
    Unit,
}

/// One publication record: the state word the protocol CASes on, plus
/// op/response payload cells only ever touched by the record's unique
/// claimant (states `WRITING`/`DONE`) or the unique combiner that won
/// the `PENDING → APPLYING` CAS.
struct FcRecord<P> {
    state: AtomicUsize,
    op: UnsafeCell<MaybeUninit<FcOp<P>>>,
    resp: UnsafeCell<MaybeUninit<FcResp<P>>>,
    /// The combining-pass number that served this record — the fairness
    /// bound is stated (and tested) against this stamp, because a
    /// descheduled waiter may *observe* `DONE` many passes after being
    /// served.
    served_pass: AtomicUsize,
}

impl<P> FcRecord<P> {
    fn new() -> Self {
        FcRecord {
            state: AtomicUsize::new(EMPTY),
            op: UnsafeCell::new(MaybeUninit::uninit()),
            resp: UnsafeCell::new(MaybeUninit::uninit()),
            served_pass: AtomicUsize::new(0),
        }
    }
}

/// Monotone source of per-thread probe offsets, cached in TLS so a
/// thread keeps probing from "its" record first across every shard.
static FC_THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static FC_OFFSET: usize = FC_THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn thread_offset() -> usize {
    FC_OFFSET.try_with(|o| *o).unwrap_or(0)
}

/// Flat-combining [`SubPriority`] shard over a sequential
/// [`IndexedBinaryHeap`] (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use rsched_queues::flatcomb::FcHeapSub;
/// use rsched_queues::skipshard::{SubPriority, TryPopMin};
///
/// let s: FcHeapSub<u64> = SubPriority::new();
/// let tok = <FcHeapSub<u64> as SubPriority<u64>>::token();
/// assert!(s.push_or_decrease(3, 40, &tok));
/// assert!(!s.push_or_decrease(3, 10, &tok)); // merged, not net-new
/// assert_eq!(s.min_key(&tok), Some((10, 3)));
/// match s.try_pop_min(&tok) {
///     TryPopMin::Item((item, prio)) => assert_eq!((item, prio), (3, 10)),
///     other => panic!("expected the merged entry, got {other:?}"),
/// }
/// ```
pub struct FcHeapSub<P> {
    heap: Mutex<IndexedBinaryHeap<P>>,
    records: [CachePadded<FcRecord<P>>; NREC],
    /// Combining passes completed (including zero-batch ones); the
    /// fairness test bounds record wait times in units of this counter.
    passes: AtomicUsize,
}

// SAFETY: the op/resp cells are governed by the record state machine —
// written by the unique claimant in `WRITING`, read+written by the
// unique `PENDING → APPLYING` CAS winner, read back by the claimant
// after an acquire-load of `DONE`. All handoffs are release/acquire
// pairs on `state`.
unsafe impl<P: Send> Send for FcHeapSub<P> {}
unsafe impl<P: Send> Sync for FcHeapSub<P> {}

impl<P: Ord + Copy> Default for FcHeapSub<P> {
    fn default() -> Self {
        Self::with_heap(IndexedBinaryHeap::new())
    }
}

impl<P: Ord + Copy> FcHeapSub<P> {
    fn with_heap(heap: IndexedBinaryHeap<P>) -> Self {
        FcHeapSub {
            heap: Mutex::new(heap),
            records: std::array::from_fn(|_| CachePadded::new(FcRecord::new())),
            passes: AtomicUsize::new(0),
        }
    }

    /// Combining passes completed so far — the clock the fairness bound
    /// is stated in (a record `PENDING` before a pass begins is served
    /// by that pass).
    pub fn combine_passes(&self) -> usize {
        self.passes.load(Ordering::Acquire)
    }

    /// Claim a free record, probing from the calling thread's offset.
    fn claim_record(&self) -> Option<usize> {
        let start = thread_offset();
        for i in 0..NREC {
            let idx = (start + i) % NREC;
            if self.records[idx]
                .state
                .compare_exchange(EMPTY, WRITING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(idx);
            }
        }
        None
    }

    /// Write `op` into claimed record `idx` and flip it `PENDING`.
    fn publish(&self, idx: usize, op: FcOp<P>) {
        let rec = &self.records[idx];
        debug_assert_eq!(rec.state.load(Ordering::Relaxed), WRITING);
        // SAFETY: `WRITING` state makes this thread the cell's unique
        // accessor until the `PENDING` release-store below.
        unsafe { (*rec.op.get()).write(op) };
        rec.state.store(PENDING, Ordering::Release);
    }

    /// Take the result out of a `DONE` record and free it.
    fn collect(&self, idx: usize) -> FcResp<P> {
        let rec = &self.records[idx];
        // SAFETY: the caller observed `DONE` with acquire ordering, so
        // the combiner's `resp` write is visible and no other thread
        // touches the record until the `EMPTY` release-store.
        let resp = unsafe { (*rec.resp.get()).assume_init_read() };
        rec.state.store(EMPTY, Ordering::Release);
        resp
    }

    /// One combining pass: apply every `PENDING` record against the
    /// locked heap. Caller holds the heap lock.
    fn combine_locked(&self, heap: &mut IndexedBinaryHeap<P>) {
        let pass = self.passes.fetch_add(1, Ordering::AcqRel) + 1;
        let mut batch = 0u64;
        for rec in self.records.iter() {
            if rec
                .state
                .compare_exchange(PENDING, APPLYING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: winning the PENDING→APPLYING CAS makes this
                // thread the record's unique accessor until the `DONE`
                // release-store.
                let op = unsafe { (*rec.op.get()).assume_init_read() };
                let resp = Self::apply(heap, op);
                unsafe { (*rec.resp.get()).write(resp) };
                rec.served_pass.store(pass, Ordering::Relaxed);
                rec.state.store(DONE, Ordering::Release);
                batch += 1;
            }
        }
        if batch > 0 {
            telemetry::record(telemetry::OpHist::Batch, batch);
            telemetry::count(telemetry::OpCount::Combined, batch);
            telemetry::count(telemetry::OpCount::ClaimFanout, 1);
        }
    }

    /// Sequentially apply one op. Semantics mirror `MutexHeapSub`'s
    /// per-op lock bodies exactly.
    fn apply(heap: &mut IndexedBinaryHeap<P>, op: FcOp<P>) -> FcResp<P> {
        match op {
            FcOp::PushOrDecrease(item, prio) => {
                if heap.contains(item) {
                    heap.decrease_key(item, prio);
                    FcResp::Bool(false)
                } else {
                    heap.push(item, prio);
                    FcResp::Bool(true)
                }
            }
            FcOp::Push(item, prio) => {
                heap.push(item, prio);
                FcResp::Unit
            }
            FcOp::PopMin => FcResp::OptPair(heap.pop()),
            FcOp::Remove(item) => FcResp::OptPrio(heap.remove(item)),
            FcOp::DecreaseKey(item, prio) => FcResp::Bool(heap.decrease_key(item, prio)),
            FcOp::Contains(item) => FcResp::Bool(heap.contains(item)),
            FcOp::PriorityOf(item) => FcResp::OptPrio(heap.priority_of(item)),
        }
    }

    /// Run `op` to completion: publish it, then alternate between
    /// try-locking (becoming the combiner serves everyone, including
    /// this record) and waiting for another combiner's `DONE`.
    fn run_op(&self, op: FcOp<P>) -> FcResp<P> {
        let Some(idx) = self.claim_record() else {
            // Every record is busy (more threads than records): fall
            // back to the plain-lock path the mutex baseline always
            // takes. Drain waiters first so they cannot starve behind
            // a convoy of overflow threads.
            let mut heap = self.heap.lock();
            self.combine_locked(&mut heap);
            return Self::apply(&mut heap, op);
        };
        self.publish(idx, op);
        let rec = &self.records[idx];
        let backoff = Backoff::new();
        loop {
            if rec.state.load(Ordering::Acquire) == DONE {
                return self.collect(idx);
            }
            if let Some(mut heap) = self.heap.try_lock() {
                self.combine_locked(&mut heap);
                drop(heap);
                debug_assert_eq!(rec.state.load(Ordering::Relaxed), DONE);
                continue;
            }
            if backoff.is_completed() {
                std::thread::yield_now();
            } else {
                backoff.snooze();
            }
        }
    }
}

impl<P: Ord + Copy + Send> SubPriority<P> for FcHeapSub<P> {
    type Token = ();

    fn token() {}

    fn borrow_token(_session: &PinSession) -> TokRef<'_, ()> {
        TokRef::Owned(())
    }

    fn new() -> Self {
        Self::with_heap(IndexedBinaryHeap::new())
    }

    fn with_universe(universe: usize) -> Self {
        Self::with_heap(IndexedBinaryHeap::with_universe(universe))
    }

    /// Racy-safe peek; a held lock reads as `None` (contended), which
    /// the choice-of-two caller treats as relaxation slack. A won lock
    /// drains waiters before peeking so peek-heavy phases keep serving
    /// pending ops.
    fn min_key(&self, _tok: &()) -> Option<(P, usize)> {
        let mut heap = self.heap.try_lock()?;
        self.combine_locked(&mut heap);
        heap.min_entry()
    }

    /// Non-blocking delete-min. The uncontended path combines and pops
    /// under the won lock; the contended path publishes a `PopMin`
    /// record, waits one bounded backoff window for a combiner, then
    /// **cancels** the record (the `PENDING → EMPTY` CAS — only
    /// possible while no combiner has won the `APPLYING` CAS) and
    /// reports `Contended` rather than wait unboundedly.
    fn try_pop_min(&self, _tok: &()) -> TryPopMin<P> {
        if let Some(mut heap) = self.heap.try_lock() {
            self.combine_locked(&mut heap);
            return match heap.pop() {
                Some(pair) => TryPopMin::Item(pair),
                None => TryPopMin::Empty,
            };
        }
        let Some(idx) = self.claim_record() else {
            return TryPopMin::Contended;
        };
        self.publish(idx, FcOp::PopMin);
        let rec = &self.records[idx];
        let backoff = Backoff::new();
        loop {
            if rec.state.load(Ordering::Acquire) == DONE {
                return match self.collect(idx) {
                    FcResp::OptPair(Some(pair)) => TryPopMin::Item(pair),
                    FcResp::OptPair(None) => TryPopMin::Empty,
                    _ => unreachable!("PopMin always answers OptPair"),
                };
            }
            if backoff.is_completed() {
                match rec.state.compare_exchange(
                    PENDING,
                    EMPTY,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    // Cancelled before any combiner committed to it.
                    Ok(_) => return TryPopMin::Contended,
                    // A combiner is mid-apply (or done): the result is
                    // imminent and must be taken — a popped element
                    // cannot be abandoned.
                    Err(_) => std::hint::spin_loop(),
                }
            } else {
                backoff.snooze();
            }
        }
    }

    fn pop_min_wait(&self, _tok: &()) -> Option<(usize, P)> {
        match self.run_op(FcOp::PopMin) {
            FcResp::OptPair(pair) => pair,
            _ => unreachable!("PopMin always answers OptPair"),
        }
    }

    fn push_or_decrease(&self, item: usize, prio: P, _tok: &()) -> bool {
        match self.run_op(FcOp::PushOrDecrease(item, prio)) {
            FcResp::Bool(net_new) => net_new,
            _ => unreachable!("PushOrDecrease always answers Bool"),
        }
    }

    fn push(&self, item: usize, prio: P, _tok: &()) {
        self.run_op(FcOp::Push(item, prio));
    }

    fn remove(&self, item: usize, _tok: &()) -> Option<P> {
        match self.run_op(FcOp::Remove(item)) {
            FcResp::OptPrio(prio) => prio,
            _ => unreachable!("Remove always answers OptPrio"),
        }
    }

    fn decrease_key(&self, item: usize, prio: P, _tok: &()) -> bool {
        match self.run_op(FcOp::DecreaseKey(item, prio)) {
            FcResp::Bool(changed) => changed,
            _ => unreachable!("DecreaseKey always answers Bool"),
        }
    }

    fn contains(&self, item: usize, _tok: &()) -> bool {
        match self.run_op(FcOp::Contains(item)) {
            FcResp::Bool(present) => present,
            _ => unreachable!("Contains always answers Bool"),
        }
    }

    fn priority_of(&self, item: usize, _tok: &()) -> Option<P> {
        match self.run_op(FcOp::PriorityOf(item)) {
            FcResp::OptPrio(prio) => prio,
            _ => unreachable!("PriorityOf always answers OptPrio"),
        }
    }
}

impl<P: Ord + Copy> std::fmt::Debug for FcHeapSub<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FcHeapSub")
            .field("combine_passes", &self.combine_passes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn stress_mult() -> usize {
        match std::env::var("RSCHED_STRESS").as_deref() {
            Ok("0") | Err(_) => 1,
            Ok(v) => v.parse::<usize>().unwrap_or(1).clamp(1, 64) * 4,
        }
    }

    #[test]
    fn sequential_semantics_match_mutex_baseline() {
        let s: FcHeapSub<u64> = SubPriority::new();
        let tok = ();
        assert!(matches!(s.try_pop_min(&tok), TryPopMin::Empty));
        assert!(s.push_or_decrease(1, 50, &tok));
        assert!(s.push_or_decrease(2, 30, &tok));
        assert!(!s.push_or_decrease(1, 10, &tok)); // merged
        assert!(!s.push_or_decrease(2, 90, &tok)); // not a decrease; no-op
        assert_eq!(s.min_key(&tok), Some((10, 1)));
        assert!(s.contains(1, &tok));
        assert_eq!(s.priority_of(2, &tok), Some(30));
        assert!(s.decrease_key(2, 20, &tok));
        assert!(!s.decrease_key(2, 25, &tok));
        match s.try_pop_min(&tok) {
            TryPopMin::Item(pair) => assert_eq!(pair, (1, 10)),
            other => panic!("expected (1,10), got {other:?}"),
        }
        assert_eq!(s.remove(2, &tok), Some(20));
        assert_eq!(s.remove(2, &tok), None);
        assert_eq!(s.pop_min_wait(&tok), None);
    }

    #[test]
    fn with_universe_pop_order_is_exact() {
        let s: FcHeapSub<u64> = SubPriority::with_universe(64);
        let tok = ();
        for item in 0..64usize {
            s.push(item, (97 * item as u64) % 64, &tok);
        }
        let mut last = None;
        for _ in 0..64 {
            let (item, prio) = s.pop_min_wait(&tok).expect("64 pushed");
            if let Some((lp, li)) = last {
                assert!((lp, li) <= (prio, item), "pop order regressed");
            }
            last = Some((prio, item));
        }
        assert!(s.pop_min_wait(&tok).is_none());
    }

    #[test]
    fn overflow_path_applies_directly_when_records_are_full() {
        let s: FcHeapSub<u64> = SubPriority::new();
        // Pin every record busy so run_op must take the fallback.
        for rec in s.records.iter() {
            rec.state.store(WRITING, Ordering::SeqCst);
        }
        let tok = ();
        assert!(s.push_or_decrease(7, 11, &tok));
        assert_eq!(s.priority_of(7, &tok), Some(11));
        for rec in s.records.iter() {
            rec.state.store(EMPTY, Ordering::SeqCst);
        }
        assert_eq!(s.pop_min_wait(&tok), Some((7, 11)));
    }

    #[test]
    fn storm_conserves_net_new_accounting() {
        // 8 threads × mixed push_or_decrease/pop ops: net-new `true`
        // returns minus successful pops must equal what drains at the
        // end, and no item may ever be popped twice concurrently.
        let s: Arc<FcHeapSub<u64>> = Arc::new(SubPriority::new());
        let threads = 8usize;
        let per = 4_000 * stress_mult();
        let universe = 512usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let tok = ();
                    let mut net_new = 0i64;
                    let mut popped = 0i64;
                    let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..per {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let item = (x as usize >> 8) % universe;
                        match x % 3 {
                            0 => {
                                if s.push_or_decrease(item, x % 1000, &tok) {
                                    net_new += 1;
                                }
                            }
                            1 => {
                                if s.pop_min_wait(&tok).is_some() {
                                    popped += 1;
                                }
                            }
                            _ => {
                                let _ = s.priority_of(item, &tok);
                            }
                        }
                    }
                    (net_new, popped)
                })
            })
            .collect();
        let mut net_new = 0i64;
        let mut popped = 0i64;
        for h in handles {
            let (n, p) = h.join().unwrap();
            net_new += n;
            popped += p;
        }
        let tok = ();
        let mut drained = HashMap::new();
        while let Some((item, _)) = s.pop_min_wait(&tok) {
            *drained.entry(item).or_insert(0u32) += 1;
        }
        // Every queued item is unique per shard, so the drain can hold
        // each id at most once.
        for (item, n) in drained.iter() {
            assert_eq!(*n, 1, "item {item} present twice at quiescence");
        }
        assert_eq!(
            net_new - popped,
            drained.len() as i64,
            "net-new accounting drifted"
        );
    }

    #[test]
    fn no_record_starves_beyond_the_pass_bound() {
        // The FC starvation bound: a record PENDING before a pass
        // begins is served by that pass, so a pure waiter (never
        // self-combining) must complete within a few passes while 7
        // other threads storm the shard. Measured in passes, not time,
        // so scheduler hiccups cannot flake it.
        let s: Arc<FcHeapSub<u64>> = Arc::new(SubPriority::new());
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..7)
            .map(|t| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let tok = ();
                    let mut i = 0usize;
                    while !stop.load(Ordering::Acquire) {
                        s.push_or_decrease((t * 64 + i) % 256, i as u64, &tok);
                        if i.is_multiple_of(2) {
                            let _ = s.pop_min_wait(&tok);
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let rounds = 300 * stress_mult();
        let mut worst = 0usize;
        for _ in 0..rounds {
            // Publish by hand and wait WITHOUT ever try-locking: only
            // other threads' combining passes can serve this record.
            let idx = loop {
                if let Some(idx) = s.claim_record() {
                    break idx;
                }
                std::thread::yield_now();
            };
            s.publish(idx, FcOp::Contains(0));
            // Read the pass clock only after the PENDING store: a stall
            // between the two can only over-count `published_at`, which
            // makes the bound conservative, never flaky. Only one
            // combiner runs at a time (it holds the heap lock), so the
            // serving pass is at most published_at + 2.
            let published_at = s.combine_passes();
            let rec = &s.records[idx];
            while rec.state.load(Ordering::Acquire) != DONE {
                std::thread::yield_now();
            }
            // Measure when the record was *served*, not when this
            // (possibly descheduled) waiter noticed: the combiner
            // stamped its pass number before the DONE flip.
            let served_at = rec.served_pass.load(Ordering::Relaxed);
            let waited = served_at.saturating_sub(published_at);
            worst = worst.max(waited);
            let _ = s.collect(idx);
            assert!(waited <= 4, "record starved for {waited} combining passes");
        }
        stop.store(true, Ordering::Release);
        for w in workers {
            w.join().unwrap();
        }
        // The storm must actually have been combining, or the bound
        // above was vacuous.
        assert!(s.combine_passes() > 0);
        let _ = worst;
    }

    #[test]
    fn try_pop_min_cancellation_never_loses_elements() {
        // Hold the heap lock hostage on one thread while others
        // try_pop_min into the record path; cancelled pops must return
        // Contended without consuming an element.
        let s: Arc<FcHeapSub<u64>> = Arc::new(SubPriority::new());
        let tok = ();
        let n = 64usize;
        for item in 0..n {
            s.push(item, item as u64, &tok);
        }
        let popped = Arc::new(AtomicUsize::new(0));
        let contended = Arc::new(AtomicUsize::new(0));
        {
            let guard = s.heap.lock();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = Arc::clone(&s);
                    let popped = Arc::clone(&popped);
                    let contended = Arc::clone(&contended);
                    std::thread::spawn(move || {
                        let tok = ();
                        for _ in 0..8 {
                            match s.try_pop_min(&tok) {
                                TryPopMin::Item(_) => {
                                    popped.fetch_add(1, Ordering::Relaxed);
                                }
                                TryPopMin::Contended => {
                                    contended.fetch_add(1, Ordering::Relaxed);
                                }
                                TryPopMin::Empty => {}
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(guard);
        }
        // Everything not popped is still there.
        let mut left = 0usize;
        while s.pop_min_wait(&tok).is_some() {
            left += 1;
        }
        assert_eq!(
            popped.load(Ordering::Relaxed) + left,
            n,
            "a cancelled try_pop_min lost an element"
        );
    }
}
