//! Indexed (addressable) binary min-heap with `decrease_key` and
//! remove-by-id, the exact priority queue used throughout this workspace.
//!
//! Items are dense `usize` ids; the heap keeps a position table so that
//! `decrease_key`, `remove` and `contains` run in `O(log n)` / `O(1)`.
//! Priority ties are broken by item id, giving a deterministic total order
//! that the instrumentation layer (and the adversarial scheduler in
//! `rsched-core`) relies on.

use crate::{DecreaseKey, PriorityQueue, NOT_PRESENT};

/// A binary min-heap over `(priority, item)` pairs with an id → slot index,
/// supporting `decrease_key` and arbitrary `remove` in `O(log n)`.
///
/// # Examples
///
/// ```
/// use rsched_queues::{IndexedBinaryHeap, PriorityQueue, DecreaseKey};
///
/// let mut h = IndexedBinaryHeap::new();
/// h.push(7, 70u64);
/// h.push(3, 30);
/// h.push(9, 90);
/// assert_eq!(h.peek(), Some((3, 30)));
/// assert!(h.decrease_key(9, 10));
/// assert_eq!(h.pop(), Some((9, 10)));
/// assert_eq!(h.pop(), Some((3, 30)));
/// assert_eq!(h.pop(), Some((7, 70)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct IndexedBinaryHeap<P> {
    /// Heap-ordered array of `(priority, item)`.
    slots: Vec<(P, usize)>,
    /// `pos[item]` = index into `slots`, or `NOT_PRESENT`.
    pos: Vec<usize>,
}

impl<P: Ord + Copy> Default for IndexedBinaryHeap<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Ord + Copy> IndexedBinaryHeap<P> {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Create an empty heap with room for items `0..universe` without
    /// reallocating the position table.
    pub fn with_universe(universe: usize) -> Self {
        Self {
            slots: Vec::new(),
            pos: vec![NOT_PRESENT; universe],
        }
    }

    /// `(priority, item)` of the current minimum without removing it.
    #[inline]
    pub fn min_entry(&self) -> Option<(P, usize)> {
        self.slots.first().copied()
    }

    /// Iterate over all stored `(item, priority)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, P)> + '_ {
        self.slots.iter().map(|&(p, it)| (it, p))
    }

    /// Change the priority of `item` to `prio`, regardless of direction.
    ///
    /// Returns the old priority, or `None` if `item` is absent.
    pub fn change_key(&mut self, item: usize, prio: P) -> Option<P> {
        let slot = *self.pos.get(item)?;
        if slot == NOT_PRESENT {
            return None;
        }
        let old = self.slots[slot].0;
        self.slots[slot].0 = prio;
        if (prio, item) < (old, item) {
            self.sift_up(slot);
        } else {
            self.sift_down(slot);
        }
        Some(old)
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        let (pa, ia) = self.slots[a];
        let (pb, ib) = self.slots[b];
        (pa, ia) < (pb, ib)
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.pos[self.slots[a].1] = a;
        self.pos[self.slots[b].1] = b;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.slots.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.less(l, smallest) {
                smallest = l;
            }
            if r < n && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_slots(i, smallest);
            i = smallest;
        }
    }

    fn ensure_pos(&mut self, item: usize) {
        if item >= self.pos.len() {
            self.pos.resize(item + 1, NOT_PRESENT);
        }
    }

    /// Remove the entry at heap slot `slot`, restoring the heap property.
    fn remove_slot(&mut self, slot: usize) -> (P, usize) {
        let last = self.slots.len() - 1;
        if slot != last {
            self.swap_slots(slot, last);
        }
        let (prio, item) = self.slots.pop().expect("slot exists");
        self.pos[item] = NOT_PRESENT;
        if slot < self.slots.len() {
            // The element moved into `slot` may need to travel either way.
            self.sift_down(slot);
            self.sift_up(slot);
        }
        (prio, item)
    }

    /// Debug helper: verify the heap invariant and position table.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for i in 1..self.slots.len() {
            let parent = (i - 1) / 2;
            assert!(!self.less(i, parent), "heap property violated at slot {i}");
        }
        for (slot, &(_, item)) in self.slots.iter().enumerate() {
            assert_eq!(self.pos[item], slot, "position table stale for {item}");
        }
    }
}

impl<P: Ord + Copy> PriorityQueue<P> for IndexedBinaryHeap<P> {
    fn len(&self) -> usize {
        self.slots.len()
    }

    fn push(&mut self, item: usize, prio: P) {
        self.ensure_pos(item);
        assert_eq!(
            self.pos[item], NOT_PRESENT,
            "item {item} is already in the heap"
        );
        self.slots.push((prio, item));
        self.pos[item] = self.slots.len() - 1;
        self.sift_up(self.slots.len() - 1);
    }

    fn pop(&mut self) -> Option<(usize, P)> {
        if self.slots.is_empty() {
            return None;
        }
        let (prio, item) = self.remove_slot(0);
        Some((item, prio))
    }

    fn peek(&self) -> Option<(usize, P)> {
        self.slots.first().map(|&(p, it)| (it, p))
    }
}

impl<P: Ord + Copy> DecreaseKey<P> for IndexedBinaryHeap<P> {
    fn contains(&self, item: usize) -> bool {
        self.pos.get(item).is_some_and(|&s| s != NOT_PRESENT)
    }

    fn priority_of(&self, item: usize) -> Option<P> {
        let slot = *self.pos.get(item)?;
        if slot == NOT_PRESENT {
            None
        } else {
            Some(self.slots[slot].0)
        }
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(&slot) = self.pos.get(item) else {
            return false;
        };
        if slot == NOT_PRESENT || prio >= self.slots[slot].0 {
            return false;
        }
        self.slots[slot].0 = prio;
        self.sift_up(slot);
        true
    }

    fn remove(&mut self, item: usize) -> Option<P> {
        let slot = *self.pos.get(item)?;
        if slot == NOT_PRESENT {
            return None;
        }
        let (prio, removed) = self.remove_slot(slot);
        debug_assert_eq!(removed, item);
        Some(prio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn push_pop_sorted() {
        let mut h = IndexedBinaryHeap::new();
        for (i, p) in [5u64, 1, 4, 2, 3].into_iter().enumerate() {
            h.push(i, p);
        }
        let mut out = Vec::new();
        while let Some((_, p)) = h.pop() {
            out.push(p);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_broken_by_item_id() {
        let mut h = IndexedBinaryHeap::new();
        h.push(9, 1u64);
        h.push(2, 1);
        h.push(5, 1);
        assert_eq!(h.pop(), Some((2, 1)));
        assert_eq!(h.pop(), Some((5, 1)));
        assert_eq!(h.pop(), Some((9, 1)));
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedBinaryHeap::new();
        h.push(0, 100u64);
        h.push(1, 50);
        h.push(2, 75);
        assert!(h.decrease_key(0, 10));
        assert!(!h.decrease_key(0, 10), "equal key is not a decrease");
        assert!(!h.decrease_key(0, 20), "larger key is not a decrease");
        assert!(!h.decrease_key(42, 1), "absent item");
        assert_eq!(h.pop(), Some((0, 10)));
        assert_eq!(h.priority_of(1), Some(50));
    }

    #[test]
    fn remove_middle_keeps_invariants() {
        let mut h = IndexedBinaryHeap::new();
        for i in 0..64usize {
            h.push(i, (i as u64 * 7919) % 101);
        }
        assert_eq!(h.remove(10), Some((10 * 7919) % 101));
        assert_eq!(h.remove(10), None);
        h.check_invariants();
        assert_eq!(h.len(), 63);
        assert!(!h.contains(10));
        let mut prev = None;
        while let Some((it, p)) = h.pop() {
            if let Some(pp) = prev {
                assert!(pp <= p);
            }
            prev = Some(p);
            assert_ne!(it, 10);
        }
    }

    #[test]
    fn with_universe_preallocates() {
        let mut h = IndexedBinaryHeap::with_universe(100);
        h.push(99, 5u64);
        assert!(h.contains(99));
        assert!(!h.contains(0));
        assert_eq!(h.pop(), Some((99, 5)));
    }

    #[test]
    fn change_key_both_directions() {
        let mut h = IndexedBinaryHeap::new();
        h.push(0, 10u64);
        h.push(1, 20);
        h.push(2, 30);
        assert_eq!(h.change_key(0, 100), Some(10));
        assert_eq!(h.peek(), Some((1, 20)));
        assert_eq!(h.change_key(2, 1), Some(30));
        assert_eq!(h.peek(), Some((2, 1)));
        assert_eq!(h.change_key(42, 1), None);
        h.check_invariants();
    }

    #[test]
    fn randomized_mixed_ops_match_reference() {
        // Reference: a sorted Vec of (prio, item).
        let mut rng = SmallRng::seed_from_u64(0xDECAF);
        let mut h = IndexedBinaryHeap::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut next_id = 0usize;
        for _ in 0..5000 {
            match rng.gen_range(0..4) {
                0 => {
                    let p = rng.gen_range(0..1000u64);
                    h.push(next_id, p);
                    reference.push((p, next_id));
                    next_id += 1;
                }
                1 => {
                    reference.sort_unstable();
                    let expect = reference.first().map(|&(p, it)| (it, p));
                    assert_eq!(h.pop(), expect);
                    if !reference.is_empty() {
                        reference.remove(0);
                    }
                }
                2 => {
                    if !reference.is_empty() {
                        let idx = rng.gen_range(0..reference.len());
                        let (old, item) = reference[idx];
                        if old > 0 {
                            let newp = rng.gen_range(0..old);
                            assert!(h.decrease_key(item, newp));
                            reference[idx].0 = newp;
                        }
                    }
                }
                _ => {
                    if !reference.is_empty() {
                        let idx = rng.gen_range(0..reference.len());
                        let (p, item) = reference.remove(idx);
                        assert_eq!(h.remove(item), Some(p));
                    }
                }
            }
        }
        h.check_invariants();
        assert_eq!(h.len(), reference.len());
    }

    #[test]
    #[should_panic(expected = "already in the heap")]
    fn double_push_panics() {
        let mut h = IndexedBinaryHeap::new();
        h.push(0, 1u64);
        h.push(0, 2);
    }
}
