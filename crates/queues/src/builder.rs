//! One construction path for every relaxed queue in the crate.
//!
//! The queue family grew a constructor sprawl — `new` /
//! `with_universe` / `with_backend` / `with_backend_universe` across
//! [`ConcurrentMultiQueue`], [`BucketFifoQueue`], [`DRaQueue`] and
//! [`DCboQueue`], each with its own argument order — and call sites
//! had to remember which variant took a seed, which took a universe,
//! and where `d` went. [`QueueBuilder`] collapses all of that into one
//! fluent spelling with **typed backend selection**: the terminal
//! method names the structure, its `_on::<S>()` twin names the shard
//! backend, and every knob has exactly one place to live.
//!
//! ```
//! use rsched_queues::{QueueBuilder, MutexHeapSub};
//!
//! // The default-backend spellings:
//! let mq = QueueBuilder::new(8).universe(1024).multiqueue::<u64>();
//! let dra = QueueBuilder::new(4).choices(2).seed(7).d_ra::<usize>();
//! let dcbo = QueueBuilder::new(4).seed(7).d_cbo::<usize>();
//! let bucket = QueueBuilder::new(2).delta(64).bucket_fifo();
//! assert_eq!(mq.nqueues(), 8);
//! assert_eq!(dra.choices(), 2);
//! assert_eq!(dcbo.num_shards(), 4);
//! assert_eq!(bucket.delta(), 64);
//!
//! // Typed backend selection — the turbofish picks the shard type:
//! let mutex_mq = QueueBuilder::new(8).multiqueue_on::<u64, MutexHeapSub<u64>>();
//! assert_eq!(mutex_mq.nqueues(), 8);
//! ```
//!
//! The old constructors survive as thin `#[deprecated]` aliases that
//! funnel into the same `construct` bodies, so downstream call sites
//! migrate incrementally without a behaviour change.

use crate::bucket::BucketFifoQueue;
use crate::fifo::{DCboQueue, DRaQueue, SubFifo};
use crate::lockfree::SegRingQueue;
use crate::multiqueue::ConcurrentMultiQueue;
use crate::skipshard::{SkipShard, SubPriority};

/// Fluent builder for the relaxed queue family. Construct with
/// [`QueueBuilder::new`] (the shard count — every structure has one),
/// chain knobs, finish with a typed terminal method.
///
/// Knob defaults: `choices = 2` (the classic two-choice
/// configuration), `seed = 0x5EED`, `delta = 1`, no universe
/// pre-allocation. Knobs a structure does not use are ignored by its
/// terminal (a `seed` on a `multiqueue()` changes nothing — the
/// MultiQueue's RNG is per-caller).
#[derive(Clone, Copy, Debug)]
#[must_use = "a QueueBuilder does nothing until a terminal method builds a queue"]
pub struct QueueBuilder {
    shards: usize,
    choices: usize,
    seed: u64,
    universe: Option<usize>,
    delta: u64,
}

impl QueueBuilder {
    /// Start a builder for a structure with `shards` internal shards
    /// (sub-queues for the FIFOs, priority shards for the MultiQueue,
    /// shards *per bucket* for the bucket hybrid).
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            choices: 2,
            seed: 0x5EED,
            universe: None,
            delta: 1,
        }
    }

    /// Choices per operation `d` for the choice-of-`d` structures
    /// ([`d_ra`](Self::d_ra) / [`d_cbo`](Self::d_cbo)). Default 2.
    pub fn choices(mut self, d: usize) -> Self {
        self.choices = d;
        self
    }

    /// RNG seed for structures that keep a sequential-interface RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pre-allocate item tables for items `0..universe`
    /// (keyed structures only: the MultiQueue's shard registries).
    pub fn universe(mut self, universe: usize) -> Self {
        self.universe = Some(universe);
        self
    }

    /// Bucket width Δ for [`bucket_fifo`](Self::bucket_fifo). Default 1.
    pub fn delta(mut self, delta: u64) -> Self {
        self.delta = delta;
        self
    }

    /// Build a [`ConcurrentMultiQueue`] on the default lock-free
    /// skiplist backend.
    pub fn multiqueue<P: Ord + Copy + Send + Sync>(self) -> ConcurrentMultiQueue<P, SkipShard<P>> {
        self.multiqueue_on::<P, SkipShard<P>>()
    }

    /// Build a [`ConcurrentMultiQueue`] on shard backend `S`.
    pub fn multiqueue_on<P, S>(self) -> ConcurrentMultiQueue<P, S>
    where
        P: Ord + Copy + Send,
        S: SubPriority<P>,
    {
        ConcurrentMultiQueue::construct(self.shards, self.universe)
    }

    /// Build a [`DRaQueue`] (d-random-access relaxed FIFO) on the
    /// default lock-free segmented-ring backend.
    pub fn d_ra<T: Send>(self) -> DRaQueue<T, SegRingQueue<T>> {
        self.d_ra_on::<T, SegRingQueue<T>>()
    }

    /// Build a [`DRaQueue`] on sub-FIFO backend `S`.
    pub fn d_ra_on<T: Send, S: SubFifo<T>>(self) -> DRaQueue<T, S> {
        DRaQueue::construct(self.shards, self.choices, self.seed)
    }

    /// Build a [`DCboQueue`] (d-choice-of-best relaxed FIFO) on the
    /// default lock-free segmented-ring backend.
    pub fn d_cbo<T: Send>(self) -> DCboQueue<T, SegRingQueue<T>> {
        self.d_cbo_on::<T, SegRingQueue<T>>()
    }

    /// Build a [`DCboQueue`] on sub-FIFO backend `S`.
    pub fn d_cbo_on<T: Send, S: SubFifo<T>>(self) -> DCboQueue<T, S> {
        DCboQueue::construct(self.shards, self.choices, self.seed)
    }

    /// Build a [`BucketFifoQueue`] (Δ-bucket FIFO-of-priorities
    /// hybrid) on the default lock-free skiplist backend. The
    /// builder's shard count is the *per-bucket* shard count.
    pub fn bucket_fifo(self) -> BucketFifoQueue<SkipShard<u64>> {
        self.bucket_fifo_on::<SkipShard<u64>>()
    }

    /// Build a [`BucketFifoQueue`] on shard backend `S`.
    pub fn bucket_fifo_on<S: SubPriority<u64>>(self) -> BucketFifoQueue<S> {
        BucketFifoQueue::construct(self.delta, self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockfree::MsQueue;
    use crate::skipshard::MutexHeapSub;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn builder_terminals_match_their_deprecated_aliases() {
        // Same shard counts and knobs as the old spellings produce.
        let mq = QueueBuilder::new(6).universe(100).multiqueue::<u64>();
        assert_eq!(mq.nqueues(), 6);
        #[allow(deprecated)]
        let old = ConcurrentMultiQueue::<u64>::with_universe(6, 100);
        assert_eq!(old.nqueues(), 6);

        let dra = QueueBuilder::new(3).choices(4).seed(9).d_ra::<usize>();
        assert_eq!((dra.num_shards(), dra.choices()), (3, 4));

        let dcbo = QueueBuilder::new(5).d_cbo::<usize>();
        assert_eq!(dcbo.num_shards(), 5);

        let bucket = QueueBuilder::new(2).delta(32).bucket_fifo();
        assert_eq!(bucket.delta(), 32);
    }

    #[test]
    fn typed_backend_selection_builds_every_backend() {
        let mq = QueueBuilder::new(2).multiqueue_on::<u64, MutexHeapSub<u64>>();
        mq.push_or_decrease(0, 10);
        assert_eq!(mq.len(), 1);

        let dra = QueueBuilder::new(2).d_ra_on::<usize, MsQueue<usize>>();
        let mut rng = SmallRng::seed_from_u64(1);
        dra.enqueue(7, &mut rng);
        assert_eq!(dra.dequeue(&mut rng), Some(7));

        let bucket = QueueBuilder::new(1)
            .delta(8)
            .bucket_fifo_on::<MutexHeapSub<u64>>();
        bucket.push_or_decrease(3, 11);
        assert_eq!(bucket.len(), 1);
    }
}
