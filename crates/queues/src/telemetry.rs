//! Per-operation progress telemetry: lock-free log₂ histograms and
//! runtime event counters.
//!
//! "Are Lock-Free Concurrent Algorithms Practically Wait-Free?"
//! (Alistarh, Censor-Hillel, Shavit) makes the case that the
//! scientifically interesting signal of a lock-free structure under
//! contention is not its mean throughput but the **tail of its per-op
//! step/retry distribution** — a practically-wait-free structure keeps
//! that tail collapsed even when the worst case is unbounded. This
//! module gives every hot path in the crate a way to feed that
//! distribution without perturbing it:
//!
//! * [`PowHistogram`] — a fixed-footprint, mergeable histogram with one
//!   relaxed atomic counter per power-of-two bucket. Recording is a
//!   single `fetch_add`; quantile extraction ([`PowHistogram::quantile`])
//!   resolves to the containing bucket's upper bound, so p99/p999 are
//!   conservative (never under-reported) at ≤ 2× resolution.
//! * A thread-local [`OpRecorder`] — plain (non-atomic) bucket arrays
//!   and counters that hot paths bump through [`record`] / [`count`],
//!   folded into the global histograms when the thread exits or on
//!   [`flush_local`]. Zero allocation after the first record on a
//!   thread; zero shared-memory traffic per operation.
//! * A process-wide enable gate ([`enabled`], env `RSCHED_TELEMETRY`,
//!   default on): when off, every [`record`]/[`count`] call is one
//!   relaxed atomic load and a predictable branch — no TLS access, no
//!   stores.
//!
//! What the crate records where:
//!
//! | series | kind | fed by |
//! |---|---|---|
//! | [`OpHist::Retry`] | CAS retries per successful claim | `SegRingQueue`/`MsQueue` pop claim loops, `SkipShard` claim/help-unlink loop |
//! | [`OpHist::Steal`] | choice/probe rounds per successful pop | `DRaQueue`/`DCboQueue`/`ConcurrentMultiQueue`/`BucketFifoQueue` pop engines |
//! | [`OpHist::Sweep`] | fallback-sweep shards visited per rescue pop | the rotated full-sweep fallbacks of the same engines |
//! | [`OpHist::Floor`] | buckets examined per `BucketFifoQueue` pop | the floor scan in `pop_with_homes` |
//! | [`OpHist::Tick`] | per-op handler duration in nanoseconds | the `rsched-runtime` worker loop |
//! | [`OpCount::EmptyPop`] | pops that swept everything and found nothing | all pop engines |
//! | [`OpCount::RegistryProbe`] | item-registry slot probes | `SkipShard` keyed operations |
//! | [`OpCount::SegInstall`] | directory segment/bucket install CAS wins | `BucketFifoQueue::get_or_alloc_bucket` |
//! | [`OpCount::FlushPublished`] / [`OpCount::FlushMerged`] | session flush volume and merge ratio | every `flush_session` |
//! | [`OpHist::Batch`] | ops applied per flat-combining pass | the `FcHeapSub` combiner loop |
//! | [`OpCount::Combined`] | ops a combiner applied on other threads' behalf | `FcHeapSub` |
//! | [`OpCount::ClaimFanout`] | combiner-lock claims (passes) | `FcHeapSub` |
//!
//! Epoch-reclamation progress (`gc_deferred` / `gc_collected`) comes
//! from the vendored `crossbeam::epoch` counters and is folded into the
//! [`TelemetrySnapshot`] as a delta since the last [`reset`].
//!
//! # Trial protocol
//!
//! Benchmarks bracket a measured window with [`reset`] (after prefill,
//! before the barrier drops) and [`capture`] (after the worker threads
//! joined — exiting threads auto-flush their recorders, and `capture`
//! flushes the calling thread's). The state is process-global: two
//! concurrent trials would interleave their counts, so trial runners
//! measure one configuration at a time (as the contention benches do).

use crossbeam::epoch;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Number of buckets in a [`PowHistogram`]: bucket 0 holds the value 0,
/// bucket `i` (1 ≤ i ≤ 62) holds `[2^(i-1), 2^i - 1]`, bucket 63 holds
/// everything from `2^62` up.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index for `v` (log₂ bucketing, see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold — what [`PowHistogram`]
/// quantiles resolve to, so reported quantiles are conservative.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HIST_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A lock-free, fixed-footprint log₂-bucketed histogram.
///
/// One relaxed atomic counter per power-of-two bucket: recording is a
/// single `fetch_add` with no allocation, merging is element-wise
/// addition (associative and commutative — merge order never changes
/// the result), and quantiles resolve to bucket upper bounds.
///
/// # Examples
///
/// ```
/// use rsched_queues::telemetry::PowHistogram;
///
/// let h = PowHistogram::new();
/// for v in [0, 1, 1, 3, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.quantile(0.5), 1);
/// assert_eq!(h.quantile(1.0), 255); // 200 rounds up to its bucket cap
/// ```
#[derive(Debug)]
pub struct PowHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for PowHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PowHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` observations of `v`.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n > 0 {
            self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Fold `other`'s counts into `self` (element-wise addition).
    pub fn merge_from(&self, other: &PowHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// A plain snapshot of the bucket counts.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing the rank-`⌈q·count⌉` observation; `0` when empty.
    /// Conservative: never smaller than the true quantile, at most one
    /// power of two larger.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile wants 0.0..=1.0");
        quantile_of(&self.buckets(), q)
    }

    /// Upper bound of the highest non-empty bucket (`0` when empty).
    pub fn max_observed(&self) -> u64 {
        let snap = self.buckets();
        max_of(&snap)
    }
}

fn quantile_of(buckets: &[u64; HIST_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut acc = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        acc += c;
        if acc >= rank {
            return bucket_upper(i);
        }
    }
    bucket_upper(HIST_BUCKETS - 1)
}

fn max_of(buckets: &[u64; HIST_BUCKETS]) -> u64 {
    buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(bucket_upper)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Series identifiers
// ---------------------------------------------------------------------

/// The histogram series the hot paths feed (see the module table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpHist {
    /// CAS retries per successful lock-free claim.
    Retry = 0,
    /// Choice/probe rounds per successful pop (0 = first attempt won).
    Steal = 1,
    /// Shards visited by a fallback sweep before it rescued a pop.
    Sweep = 2,
    /// Buckets examined per `BucketFifoQueue` pop (floor-scan distance).
    Floor = 3,
    /// Per-op duration ticks (nanoseconds) — recorded by the runtime
    /// worker loop around each task-handler invocation, so log₂ bucket
    /// k holds ops that ran for [2^(k-1), 2^k) ns.
    Tick = 4,
    /// Ops applied per flat-combining pass (combiner batch size).
    Batch = 5,
}

/// Number of [`OpHist`] series.
pub const N_HISTS: usize = 6;

/// The plain counter series (see the module table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCount {
    /// Pops that swept every shard and found nothing.
    EmptyPop = 0,
    /// `SkipShard` item-registry slot probes.
    RegistryProbe = 1,
    /// `BucketFifoQueue` directory segment/bucket install CAS wins.
    SegInstall = 2,
    /// Elements published by session flushes.
    FlushPublished = 3,
    /// Of those, elements that merged into existing entries.
    FlushMerged = 4,
    /// Flat-combining ops a combiner applied on other threads' behalf.
    Combined = 5,
    /// Flat-combining combiner-lock claims (one per combining pass).
    ClaimFanout = 6,
}

/// Number of [`OpCount`] series.
pub const N_COUNTS: usize = 7;

// ---------------------------------------------------------------------
// Global state + enable gate
// ---------------------------------------------------------------------

const GATE_UNSET: u8 = 0;
const GATE_ON: u8 = 1;
const GATE_OFF: u8 = 2;

/// Tri-state so the first [`enabled`] call can consult the
/// `RSCHED_TELEMETRY` environment variable exactly once.
static GATE: AtomicU8 = AtomicU8::new(GATE_UNSET);

/// `true` when recording is on. One relaxed load on the hot path.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_gate_from_env(),
    }
}

#[cold]
fn init_gate_from_env() -> bool {
    let on = std::env::var("RSCHED_TELEMETRY").map_or(true, |v| v != "0");
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    on
}

/// Turn recording on or off process-wide (overrides the env default).
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

struct Global {
    hists: [PowHistogram; N_HISTS],
    counts: [AtomicU64; N_COUNTS],
}

static GLOBAL: Global = Global {
    hists: [const { PowHistogram::new() }; N_HISTS],
    counts: [const { AtomicU64::new(0) }; N_COUNTS],
};

/// Epoch GC counter values at the last [`reset`] — snapshots report the
/// delta, since the vendored counters are process-lifetime monotone.
static GC_BASE_DEFERRED: AtomicU64 = AtomicU64::new(0);
static GC_BASE_COLLECTED: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------
// The thread-local recorder
// ---------------------------------------------------------------------

/// A worker thread's private telemetry buffer: plain bucket arrays and
/// counters, no atomics, no allocation. Folded into the global state on
/// thread exit (TLS destructor) or [`flush_local`].
#[derive(Debug)]
pub struct OpRecorder {
    hists: [[u64; HIST_BUCKETS]; N_HISTS],
    counts: [u64; N_COUNTS],
    dirty: bool,
}

impl OpRecorder {
    const fn new() -> Self {
        Self {
            hists: [[0; HIST_BUCKETS]; N_HISTS],
            counts: [0; N_COUNTS],
            dirty: false,
        }
    }

    #[inline]
    fn record(&mut self, h: OpHist, v: u64) {
        self.hists[h as usize][bucket_of(v)] += 1;
        self.dirty = true;
    }

    #[inline]
    fn count(&mut self, c: OpCount, n: u64) {
        self.counts[c as usize] += n;
        self.dirty = true;
    }

    fn flush(&mut self) {
        if !self.dirty {
            return;
        }
        for (series, local) in GLOBAL.hists.iter().zip(self.hists.iter_mut()) {
            for (i, n) in local.iter_mut().enumerate() {
                if *n > 0 {
                    series.buckets[i].fetch_add(*n, Ordering::Relaxed);
                    *n = 0;
                }
            }
        }
        for (series, n) in GLOBAL.counts.iter().zip(self.counts.iter_mut()) {
            if *n > 0 {
                series.fetch_add(*n, Ordering::Relaxed);
                *n = 0;
            }
        }
        self.dirty = false;
    }

    fn clear(&mut self) {
        if self.dirty {
            self.hists = [[0; HIST_BUCKETS]; N_HISTS];
            self.counts = [0; N_COUNTS];
            self.dirty = false;
        }
    }
}

impl Drop for OpRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static RECORDER: RefCell<OpRecorder> = const { RefCell::new(OpRecorder::new()) };
}

/// Record one observation of `v` into histogram series `h`. No-op (one
/// relaxed load) when telemetry is off.
#[inline]
pub fn record(h: OpHist, v: u64) {
    if !enabled() {
        return;
    }
    let _ = RECORDER.try_with(|r| r.borrow_mut().record(h, v));
}

/// Add `n` to counter series `c`. No-op when telemetry is off or `n == 0`.
#[inline]
pub fn count(c: OpCount, n: u64) {
    if n == 0 || !enabled() {
        return;
    }
    let _ = RECORDER.try_with(|r| r.borrow_mut().count(c, n));
}

/// Fold the calling thread's recorder into the global state. Exiting
/// threads do this automatically; long-lived threads (a bench's main
/// thread) call it before [`capture`].
pub fn flush_local() {
    let _ = RECORDER.try_with(|r| r.borrow_mut().flush());
}

/// Zero the global state, discard the calling thread's buffered events,
/// and re-anchor the epoch-GC baseline. The start of a measured window.
pub fn reset() {
    let _ = RECORDER.try_with(|r| r.borrow_mut().clear());
    for h in GLOBAL.hists.iter() {
        h.reset();
    }
    for c in GLOBAL.counts.iter() {
        c.store(0, Ordering::Relaxed);
    }
    let (deferred, collected) = epoch::gc_counters();
    GC_BASE_DEFERRED.store(deferred, Ordering::Relaxed);
    GC_BASE_COLLECTED.store(collected, Ordering::Relaxed);
}

/// Flush the calling thread and snapshot everything recorded since the
/// last [`reset`]. The end of a measured window (worker threads must
/// have exited or flushed themselves).
pub fn capture() -> TelemetrySnapshot {
    flush_local();
    let (deferred, collected) = epoch::gc_counters();
    TelemetrySnapshot {
        retry: HistSnapshot::of(&GLOBAL.hists[OpHist::Retry as usize]),
        steal: HistSnapshot::of(&GLOBAL.hists[OpHist::Steal as usize]),
        sweep: HistSnapshot::of(&GLOBAL.hists[OpHist::Sweep as usize]),
        floor: HistSnapshot::of(&GLOBAL.hists[OpHist::Floor as usize]),
        tick: HistSnapshot::of(&GLOBAL.hists[OpHist::Tick as usize]),
        batch: HistSnapshot::of(&GLOBAL.hists[OpHist::Batch as usize]),
        empty_pops: GLOBAL.counts[OpCount::EmptyPop as usize].load(Ordering::Relaxed),
        registry_probes: GLOBAL.counts[OpCount::RegistryProbe as usize].load(Ordering::Relaxed),
        seg_installs: GLOBAL.counts[OpCount::SegInstall as usize].load(Ordering::Relaxed),
        flush_published: GLOBAL.counts[OpCount::FlushPublished as usize].load(Ordering::Relaxed),
        flush_merged: GLOBAL.counts[OpCount::FlushMerged as usize].load(Ordering::Relaxed),
        combined_ops: GLOBAL.counts[OpCount::Combined as usize].load(Ordering::Relaxed),
        claim_fanout: GLOBAL.counts[OpCount::ClaimFanout as usize].load(Ordering::Relaxed),
        gc_deferred: deferred.saturating_sub(GC_BASE_DEFERRED.load(Ordering::Relaxed)),
        gc_collected: collected.saturating_sub(GC_BASE_COLLECTED.load(Ordering::Relaxed)),
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A point-in-time copy of one histogram series: the raw bucket counts
/// plus the derived quantiles the JSON schema exports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Raw log₂ bucket counts (see [`bucket_of`] / [`bucket_upper`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
}

impl HistSnapshot {
    /// Snapshot a live histogram: bucket counts plus the derived
    /// quantiles. Non-resetting, like everything else here.
    pub fn of(h: &PowHistogram) -> Self {
        let buckets = h.buckets();
        Self {
            count: buckets.iter().sum(),
            p50: quantile_of(&buckets, 0.50),
            p90: quantile_of(&buckets, 0.90),
            p99: quantile_of(&buckets, 0.99),
            p999: quantile_of(&buckets, 0.999),
            max: max_of(&buckets),
            buckets: buckets.to_vec(),
        }
    }
}

/// Everything recorded over one measured window — what `PoolStats` and
/// the contention benches export into the shared JSON schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// CAS retries per successful lock-free claim.
    pub retry: HistSnapshot,
    /// Choice/probe rounds per successful pop.
    pub steal: HistSnapshot,
    /// Fallback-sweep lengths.
    pub sweep: HistSnapshot,
    /// Bucket floor-scan distances (`BucketFifoQueue` only).
    pub floor: HistSnapshot,
    /// Per-op duration ticks in nanoseconds (runtime worker loop only).
    pub tick: HistSnapshot,
    /// Ops applied per flat-combining pass (`FcHeapSub` only).
    pub batch: HistSnapshot,
    /// Pops that swept everything and found nothing.
    pub empty_pops: u64,
    /// `SkipShard` registry slot probes.
    pub registry_probes: u64,
    /// Bucket-directory install CAS wins.
    pub seg_installs: u64,
    /// Elements published by session flushes.
    pub flush_published: u64,
    /// Of those, elements merged into existing entries.
    pub flush_merged: u64,
    /// Flat-combining ops applied by combiners on other threads' behalf.
    pub combined_ops: u64,
    /// Flat-combining combiner-lock claims (combining passes).
    pub claim_fanout: u64,
    /// Epoch reclamations deferred during the window.
    pub gc_deferred: u64,
    /// Epoch reclamations collected during the window.
    pub gc_collected: u64,
}

impl TelemetrySnapshot {
    /// `flush_merged / flush_published` (0.0 when nothing flushed).
    pub fn flush_merge_ratio(&self) -> f64 {
        if self.flush_published == 0 {
            0.0
        } else {
            self.flush_merged as f64 / self.flush_published as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        for i in 1..=62usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_of(hi), i, "high edge of bucket {i}");
            assert_eq!(bucket_upper(i), hi);
        }
        assert_eq!(bucket_of(1u64 << 62), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn concurrent_record_storm_matches_sequential_reference() {
        let h = PowHistogram::new();
        let threads = 8usize;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = &h;
                s.spawn(move || {
                    for i in 0..per {
                        h.record(i.wrapping_mul(t as u64 + 1) % 1000);
                    }
                });
            }
        });
        let reference = PowHistogram::new();
        for t in 0..threads {
            for i in 0..per {
                reference.record(i.wrapping_mul(t as u64 + 1) % 1000);
            }
        }
        assert_eq!(h.buckets(), reference.buckets());
        assert_eq!(h.count(), threads as u64 * per);
    }

    #[test]
    fn merge_is_associative() {
        let parts: Vec<PowHistogram> = (0..3)
            .map(|t| {
                let h = PowHistogram::new();
                for i in 0..100u64 {
                    h.record(i * (t + 1));
                }
                h
            })
            .collect();
        // (a ⊕ b) ⊕ c
        let left = PowHistogram::new();
        left.merge_from(&parts[0]);
        left.merge_from(&parts[1]);
        left.merge_from(&parts[2]);
        // a ⊕ (b ⊕ c)
        let bc = PowHistogram::new();
        bc.merge_from(&parts[1]);
        bc.merge_from(&parts[2]);
        let right = PowHistogram::new();
        right.merge_from(&parts[0]);
        right.merge_from(&bc);
        assert_eq!(left.buckets(), right.buckets());
        assert_eq!(left.count(), 300);
    }

    #[test]
    fn quantiles_on_hand_computed_inputs() {
        let h = PowHistogram::new();
        // 90 zeros, 9 fours, 1 one-thousand: p50=0, p90=0 (rank 90 is the
        // last zero), p99=7 (4 lands in bucket [4,7]), p999→1000's bucket.
        h.record_n(0, 90);
        h.record_n(4, 9);
        h.record(1000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 0);
        assert_eq!(h.quantile(0.90), 0);
        assert_eq!(h.quantile(0.99), 7);
        assert_eq!(h.quantile(0.999), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.max_observed(), 1023);
        // Empty histogram: every quantile is 0.
        let empty = PowHistogram::new();
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.max_observed(), 0);
        // Quantiles are monotone in q.
        let mut prev = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn snapshot_quantiles_match_histogram() {
        reset();
        set_enabled(true);
        for v in [0u64, 1, 2, 3, 200] {
            record(OpHist::Retry, v);
        }
        count(OpCount::EmptyPop, 3);
        count(OpCount::FlushPublished, 10);
        count(OpCount::FlushMerged, 4);
        let snap = capture();
        assert!(snap.retry.count >= 5);
        assert!(snap.retry.max >= 255);
        assert!(snap.empty_pops >= 3);
        assert!(snap.flush_published >= 10);
        assert!(snap.flush_merge_ratio() > 0.0);
        assert_eq!(snap.retry.buckets.len(), HIST_BUCKETS);
        assert_eq!(
            snap.retry.buckets.iter().sum::<u64>(),
            snap.retry.count,
            "bucket array is consistent with the count"
        );
    }

    #[test]
    fn disabled_gate_drops_records() {
        // Only checks the gate wiring; runs in its own series to avoid
        // racing tests that enable recording.
        set_enabled(false);
        let before = GLOBAL.hists[OpHist::Floor as usize].count();
        record(OpHist::Floor, 42);
        flush_local();
        let after = GLOBAL.hists[OpHist::Floor as usize].count();
        set_enabled(true);
        assert_eq!(before, after, "disabled telemetry must not record");
    }
}
