//! Pairing heap: an alternative exact priority queue with `O(1)` amortized
//! `push`/`decrease_key` and `O(log n)` amortized `pop`.
//!
//! Included both as a cross-check for the indexed binary heap (the test
//! suites run the same randomized op sequences against both) and because
//! pairing heaps are the textbook choice when `decrease_key` dominates, as
//! it does in Dijkstra-style workloads (Section 6 of the paper).
//!
//! The implementation is arena-based: nodes live in a `Vec` and are
//! addressed by index, avoiding unsafe code and pointer juggling.

use crate::{DecreaseKey, PriorityQueue, NOT_PRESENT};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<P> {
    prio: P,
    item: usize,
    /// First child, or `NIL`.
    child: usize,
    /// Next younger sibling, or `NIL`.
    sibling: usize,
    /// Parent if this is a first child, otherwise the previous sibling;
    /// `NIL` for the root.
    prev: usize,
    /// `false` once the node has been removed (slot is on the free list).
    live: bool,
}

/// An addressable pairing min-heap over dense `usize` items.
///
/// Ties on priority are broken by item id, matching
/// [`IndexedBinaryHeap`](crate::IndexedBinaryHeap).
///
/// # Examples
///
/// ```
/// use rsched_queues::{PairingHeap, PriorityQueue, DecreaseKey};
///
/// let mut h = PairingHeap::new();
/// h.push(0, 3u64);
/// h.push(1, 1);
/// h.push(2, 2);
/// assert!(h.decrease_key(0, 0));
/// assert_eq!(h.pop(), Some((0, 0)));
/// assert_eq!(h.pop(), Some((1, 1)));
/// assert_eq!(h.pop(), Some((2, 2)));
/// ```
#[derive(Clone, Debug)]
pub struct PairingHeap<P> {
    nodes: Vec<Node<P>>,
    /// `slot_of[item]` = arena index, or `NOT_PRESENT`.
    slot_of: Vec<usize>,
    root: usize,
    len: usize,
    free: Vec<usize>,
}

impl<P: Ord + Copy> Default for PairingHeap<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Ord + Copy> PairingHeap<P> {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            slot_of: Vec::new(),
            root: NIL,
            len: 0,
            free: Vec::new(),
        }
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        let na = &self.nodes[a];
        let nb = &self.nodes[b];
        (na.prio, na.item) < (nb.prio, nb.item)
    }

    /// Meld two heap roots, returning the new root. Both must have
    /// `prev == NIL` and `sibling == NIL`.
    fn meld(&mut self, a: usize, b: usize) -> usize {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        let (winner, loser) = if self.less(a, b) { (a, b) } else { (b, a) };
        // Attach `loser` as the first child of `winner`.
        let old_child = self.nodes[winner].child;
        self.nodes[loser].sibling = old_child;
        self.nodes[loser].prev = winner;
        if old_child != NIL {
            self.nodes[old_child].prev = loser;
        }
        self.nodes[winner].child = loser;
        winner
    }

    /// Detach node `x` from its parent/sibling links (it must not be the
    /// root). Afterwards `x` is a standalone tree.
    fn cut(&mut self, x: usize) {
        let prev = self.nodes[x].prev;
        let sib = self.nodes[x].sibling;
        debug_assert_ne!(prev, NIL, "cut of root");
        if self.nodes[prev].child == x {
            self.nodes[prev].child = sib;
        } else {
            debug_assert_eq!(self.nodes[prev].sibling, x);
            self.nodes[prev].sibling = sib;
        }
        if sib != NIL {
            self.nodes[sib].prev = prev;
        }
        self.nodes[x].prev = NIL;
        self.nodes[x].sibling = NIL;
    }

    /// Two-pass pairing of the children list starting at `first`.
    fn merge_pairs(&mut self, first: usize) -> usize {
        if first == NIL {
            return NIL;
        }
        // Pass 1: meld children pairwise, collecting the winners.
        let mut pairs = Vec::new();
        let mut cur = first;
        while cur != NIL {
            let a = cur;
            let b = self.nodes[a].sibling;
            let next = if b == NIL { NIL } else { self.nodes[b].sibling };
            // Detach a and b from the list.
            self.nodes[a].sibling = NIL;
            self.nodes[a].prev = NIL;
            if b != NIL {
                self.nodes[b].sibling = NIL;
                self.nodes[b].prev = NIL;
            }
            pairs.push(self.meld(a, b));
            cur = next;
        }
        // Pass 2: fold right-to-left.
        let mut root = NIL;
        for &p in pairs.iter().rev() {
            root = self.meld(root, p);
        }
        root
    }

    fn alloc(&mut self, item: usize, prio: P) -> usize {
        let node = Node {
            prio,
            item,
            child: NIL,
            sibling: NIL,
            prev: NIL,
            live: true,
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn free_slot(&mut self, slot: usize) {
        self.nodes[slot].live = false;
        self.free.push(slot);
    }

    /// Debug helper: walk the tree and verify the heap property and the
    /// item → slot table.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if self.root == NIL {
            assert_eq!(self.len, 0);
            return;
        }
        let mut stack = vec![self.root];
        let mut seen = 0usize;
        while let Some(x) = stack.pop() {
            seen += 1;
            let node = &self.nodes[x];
            assert!(node.live);
            assert_eq!(self.slot_of[node.item], x);
            let mut c = node.child;
            while c != NIL {
                assert!(
                    !self.less(c, x),
                    "heap property violated: child beats parent"
                );
                stack.push(c);
                c = self.nodes[c].sibling;
            }
        }
        assert_eq!(seen, self.len, "tree size disagrees with len");
    }
}

impl<P: Ord + Copy> PriorityQueue<P> for PairingHeap<P> {
    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, item: usize, prio: P) {
        if item >= self.slot_of.len() {
            self.slot_of.resize(item + 1, NOT_PRESENT);
        }
        assert_eq!(
            self.slot_of[item], NOT_PRESENT,
            "item {item} is already in the heap"
        );
        let slot = self.alloc(item, prio);
        self.slot_of[item] = slot;
        self.root = self.meld(self.root, slot);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(usize, P)> {
        if self.root == NIL {
            return None;
        }
        let root = self.root;
        let (item, prio) = (self.nodes[root].item, self.nodes[root].prio);
        let first_child = self.nodes[root].child;
        self.root = self.merge_pairs(first_child);
        self.slot_of[item] = NOT_PRESENT;
        self.free_slot(root);
        self.len -= 1;
        Some((item, prio))
    }

    fn peek(&self) -> Option<(usize, P)> {
        if self.root == NIL {
            None
        } else {
            let n = &self.nodes[self.root];
            Some((n.item, n.prio))
        }
    }
}

impl<P: Ord + Copy> DecreaseKey<P> for PairingHeap<P> {
    fn contains(&self, item: usize) -> bool {
        self.slot_of.get(item).is_some_and(|&s| s != NOT_PRESENT)
    }

    fn priority_of(&self, item: usize) -> Option<P> {
        let slot = *self.slot_of.get(item)?;
        if slot == NOT_PRESENT {
            None
        } else {
            Some(self.nodes[slot].prio)
        }
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(&slot) = self.slot_of.get(item) else {
            return false;
        };
        if slot == NOT_PRESENT || prio >= self.nodes[slot].prio {
            return false;
        }
        self.nodes[slot].prio = prio;
        if slot != self.root {
            self.cut(slot);
            self.root = self.meld(self.root, slot);
        }
        true
    }

    fn remove(&mut self, item: usize) -> Option<P> {
        let slot = *self.slot_of.get(item)?;
        if slot == NOT_PRESENT {
            return None;
        }
        let prio = self.nodes[slot].prio;
        if slot == self.root {
            self.pop();
        } else {
            self.cut(slot);
            let first_child = self.nodes[slot].child;
            let subtree = self.merge_pairs(first_child);
            self.root = self.meld(self.root, subtree);
            self.slot_of[item] = NOT_PRESENT;
            self.free_slot(slot);
            self.len -= 1;
        }
        Some(prio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexedBinaryHeap;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn push_pop_sorted() {
        let mut h = PairingHeap::new();
        for (i, p) in [9u64, 3, 7, 1, 5].into_iter().enumerate() {
            h.push(i, p);
        }
        let mut out = Vec::new();
        while let Some((_, p)) = h.pop() {
            out.push(p);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn decrease_key_to_new_min() {
        let mut h = PairingHeap::new();
        h.push(0, 10u64);
        h.push(1, 20);
        h.push(2, 30);
        assert!(h.decrease_key(2, 1));
        assert_eq!(h.peek(), Some((2, 1)));
        assert!(!h.decrease_key(2, 5), "increase rejected");
        h.check_invariants();
    }

    #[test]
    fn remove_non_root() {
        let mut h = PairingHeap::new();
        for i in 0..32usize {
            h.push(i, (i as u64 * 31) % 17);
        }
        assert_eq!(h.remove(20), Some((20u64 * 31) % 17));
        assert!(!h.contains(20));
        h.check_invariants();
        assert_eq!(h.len(), 31);
    }

    #[test]
    fn slot_reuse_after_pop() {
        let mut h = PairingHeap::new();
        h.push(0, 1u64);
        h.pop();
        h.push(0, 2);
        assert_eq!(h.pop(), Some((0, 2)));
    }

    /// Differential test: the pairing heap and the indexed binary heap must
    /// agree on every operation for a long randomized op sequence.
    #[test]
    fn agrees_with_binary_heap() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut ph = PairingHeap::new();
        let mut bh = IndexedBinaryHeap::new();
        let mut live: Vec<usize> = Vec::new();
        let mut next_id = 0usize;
        for step in 0..8000 {
            match rng.gen_range(0..5) {
                0 | 1 => {
                    let p = rng.gen_range(0..10_000u64);
                    ph.push(next_id, p);
                    bh.push(next_id, p);
                    live.push(next_id);
                    next_id += 1;
                }
                2 => {
                    let a = ph.pop();
                    let b = bh.pop();
                    assert_eq!(a, b, "pop mismatch at step {step}");
                    if let Some((it, _)) = a {
                        live.retain(|&x| x != it);
                    }
                }
                3 => {
                    if let Some(&item) = live.get(rng.gen_range(0..live.len().max(1))) {
                        let cur = ph.priority_of(item).unwrap();
                        if cur > 0 {
                            let newp = rng.gen_range(0..cur);
                            assert_eq!(ph.decrease_key(item, newp), bh.decrease_key(item, newp));
                        }
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let idx = rng.gen_range(0..live.len());
                        let item = live.swap_remove(idx);
                        assert_eq!(ph.remove(item), bh.remove(item));
                    }
                }
            }
            assert_eq!(ph.len(), bh.len());
            assert_eq!(ph.peek(), bh.peek());
        }
        ph.check_invariants();
    }
}
