//! MultiQueue relaxed priority queues (Rihani, Sanders, Dementiev, SPAA 2015;
//! analysed in Alistarh et al., PODC 2017).
//!
//! A MultiQueue over `q` internal priority queues works as follows:
//!
//! * **insert**: pick one of the `q` queues uniformly at random and insert
//!   there (or, in *keyed* mode, hash the item id consistently to a queue so
//!   that `decrease_key` can find it later — this is the variant Section 6 of
//!   the SPAA 2019 paper assumes for SSSP);
//! * **delete-min**: pick two queues uniformly at random and return the
//!   smaller of their two minima ("power of two choices").
//!
//! The structure is relaxed: the returned element is not necessarily the
//! global minimum, but with `q` queues the rank of the returned element is
//! `O(q log q)` with high probability, i.e. a MultiQueue is a `k`-relaxed
//! scheduler with `k = O(q log q)` (PODC 2017 / DISC 2018).
//!
//! Two implementations are provided:
//!
//! * [`SimMultiQueue`] — single-threaded, used by the sequential model of the
//!   paper (Sections 2–5), by the lower-bound experiment of Section 5, and by
//!   all deterministic-seed tests;
//! * [`ConcurrentMultiQueue`] — thread-safe and **generic over its shard
//!   backend** ([`SubPriority`]): the default
//!   [`SkipShard`] is an epoch-reclaimed
//!   lock-free skiplist, so `pop` performs its choice-of-two comparison
//!   with two mutex-free [`min_key`](SubPriority::min_key) peeks and
//!   claims the winner with a CAS — no lock anywhere on the pop path.
//!   The pre-PR 3 mutex-around-a-heap shard survives as
//!   [`MutexHeapSub`] (alias [`MutexHeapMultiQueue`]) for comparison;
//!   `mq_contention` in `rsched-bench` sweeps both backends under
//!   thread contention.

use crate::fifo::PinSession;
use crate::heap::IndexedBinaryHeap;
use crate::skipshard::{MutexHeapSub, SkipShard, SubPriority, TryPopMin};
use crate::telemetry;
use crate::{
    DecreaseKey, FlushReport, PopSource, PriorityQueue, PushOutcome, RelaxedQueue, SessionConfig,
    SessionPush, MAX_SPAWN_BATCH, NOT_PRESENT,
};
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Multiply-shift hash used to map item ids to internal queues in keyed mode.
///
/// Fibonacci hashing: multiply by the 64-bit golden-ratio constant and use
/// the high bits, which distributes consecutive ids evenly across queues.
#[inline]
pub(crate) fn queue_of(item: usize, nqueues: usize) -> usize {
    let h = (item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % nqueues
}

/// How a MultiQueue places inserted items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Classic MultiQueue: each insert goes to a uniformly random queue.
    Random,
    /// Keyed MultiQueue: item `i` always goes to queue `hash(i) % q`, so
    /// `decrease_key(i, ..)` can locate it. This is the variant required by
    /// the paper's SSSP (Section 6: "elements are hashed consistently into
    /// the priority queues").
    Keyed,
}

/// Sequential-model MultiQueue over `q` internal binary heaps.
///
/// This is the exact structure analysed in Section 5 of the paper: tasks are
/// inserted into uniformly random queues, and `peek_relaxed`/`pop_relaxed`
/// compare the tops of two uniformly random queues. All randomness comes
/// from a caller-provided seed, so experiments are reproducible.
///
/// # Examples
///
/// ```
/// use rsched_queues::{SimMultiQueue, RelaxedQueue};
///
/// let mut mq = SimMultiQueue::new(4, 0xC0FFEE);
/// for i in 0..100usize {
///     mq.insert(i, i as u64);
/// }
/// // The returned element is among the smallest few, but not necessarily
/// // the global minimum.
/// let (item, prio) = mq.pop_relaxed().unwrap();
/// assert_eq!(item as u64, prio);
/// assert_eq!(mq.len(), 99);
/// ```
#[derive(Clone, Debug)]
pub struct SimMultiQueue<P> {
    queues: Vec<IndexedBinaryHeap<P>>,
    /// `location[item]` = index of the internal queue holding it.
    location: Vec<usize>,
    placement: Placement,
    rng: SmallRng,
    len: usize,
}

impl<P: Ord + Copy> SimMultiQueue<P> {
    /// A MultiQueue with `nqueues` internal queues and random placement.
    pub fn new(nqueues: usize, seed: u64) -> Self {
        Self::with_placement(nqueues, seed, Placement::Random)
    }

    /// A keyed MultiQueue (consistent hashing), required when `decrease_key`
    /// must be meaningful across re-insertions of the same item.
    pub fn keyed(nqueues: usize, seed: u64) -> Self {
        Self::with_placement(nqueues, seed, Placement::Keyed)
    }

    /// Construct with an explicit [`Placement`] policy.
    pub fn with_placement(nqueues: usize, seed: u64, placement: Placement) -> Self {
        assert!(nqueues > 0, "a MultiQueue needs at least one queue");
        Self {
            queues: (0..nqueues).map(|_| IndexedBinaryHeap::new()).collect(),
            location: Vec::new(),
            placement,
            rng: SmallRng::seed_from_u64(seed),
            len: 0,
        }
    }

    /// Number of internal queues.
    pub fn nqueues(&self) -> usize {
        self.queues.len()
    }

    fn ensure_loc(&mut self, item: usize) {
        if item >= self.location.len() {
            self.location.resize(item + 1, NOT_PRESENT);
        }
    }

    /// Sample one queue index uniformly at random.
    #[inline]
    fn random_queue(&mut self) -> usize {
        self.rng.gen_range(0..self.queues.len())
    }
}

impl<P: Ord + Copy> RelaxedQueue<P> for SimMultiQueue<P> {
    fn insert(&mut self, item: usize, prio: P) {
        self.ensure_loc(item);
        assert_eq!(
            self.location[item], NOT_PRESENT,
            "item {item} is already in the MultiQueue"
        );
        let q = match self.placement {
            Placement::Random => self.random_queue(),
            Placement::Keyed => queue_of(item, self.queues.len()),
        };
        self.queues[q].push(item, prio);
        self.location[item] = q;
        self.len += 1;
    }

    fn peek_relaxed(&mut self) -> Option<(usize, P)> {
        if self.len == 0 {
            return None;
        }
        // Sample two queue indices independently and uniformly (the Section 5
        // analysis assumes sampling with replacement). Resample while both
        // sampled queues are empty; termination is guaranteed since some
        // queue is non-empty.
        loop {
            let (a, b) = (self.random_queue(), self.random_queue());
            let ta = self.queues[a].min_entry();
            let tb = self.queues[b].min_entry();
            match (ta, tb) {
                (None, None) => continue,
                (Some((p, it)), None) | (None, Some((p, it))) => return Some((it, p)),
                (Some((pa, ia)), Some((pb, ib))) => {
                    return if (pa, ia) <= (pb, ib) {
                        Some((ia, pa))
                    } else {
                        Some((ib, pb))
                    };
                }
            }
        }
    }

    fn delete(&mut self, item: usize) -> bool {
        let Some(&q) = self.location.get(item) else {
            return false;
        };
        if q == NOT_PRESENT {
            return false;
        }
        let removed = self.queues[q].remove(item);
        debug_assert!(removed.is_some());
        self.location[item] = NOT_PRESENT;
        self.len -= 1;
        true
    }

    fn decrease_key(&mut self, item: usize, prio: P) -> bool {
        let Some(&q) = self.location.get(item) else {
            return false;
        };
        if q == NOT_PRESENT {
            return false;
        }
        self.queues[q].decrease_key(item, prio)
    }

    fn contains(&self, item: usize) -> bool {
        self.location.get(item).is_some_and(|&q| q != NOT_PRESENT)
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The PODC 2017 analysis gives rank `O(q log q)` w.h.p.; we report
    /// `max(1, q · ⌈log₂(q+1)⌉)` as the nominal factor.
    fn relaxation_factor(&self) -> usize {
        let q = self.queues.len();
        let lg = usize::BITS as usize - (q + 1).leading_zeros() as usize;
        (q * lg).max(1)
    }
}

/// Thread-safe MultiQueue with keyed placement, generic over the
/// per-shard [`SubPriority`] backend.
///
/// This is the scheduler used by the paper's parallel SSSP experiments
/// (Section 7): `q = queue_multiplier × threads` internal shards; `pop`
/// compares the minima of two random shards and claims the smaller one.
/// With the default [`SkipShard`] backend both the comparison
/// ([`min_key`](SubPriority::min_key), a racy-safe peek of immutable
/// node data) and the claim (a CAS on the head node's deletion mark) are
/// **mutex-free** — a preempted thread never stalls the shard, the
/// "practically wait-free" behaviour lock-free structures show under
/// oversubscription. The [`MutexHeapSub`] backend (alias
/// [`MutexHeapMultiQueue`]) is the pre-PR 3 lock-per-shard baseline.
///
/// Placement is always **keyed** (item id hashed consistently to a
/// shard), which funnels every update of a given item into one shard so
/// `push_or_decrease` — the operation Algorithm 3 of the paper needs —
/// can merge updates. Under the lock-free backend a decrease racing a
/// concurrent pop of the same item may briefly leave a stale duplicate;
/// it surfaces as a stale pop, which every consumer of a *relaxed*
/// scheduler (e.g. the SSSP handler's distance check) tolerates by
/// construction, and the element count stays conserved.
///
/// # Examples
///
/// ```
/// use rsched_queues::QueueBuilder;
/// use std::sync::Arc;
///
/// let mq = Arc::new(QueueBuilder::new(8).multiqueue());
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let mq = Arc::clone(&mq);
///         std::thread::spawn(move || {
///             for i in 0..256usize {
///                 mq.push_or_decrease(t * 256 + i, (i as u64) * 3);
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(mq.len(), 4 * 256);
/// let mut popped = 0;
/// while mq.pop(&mut rand::thread_rng()).is_some() {
///     popped += 1;
/// }
/// assert_eq!(popped, 4 * 256);
/// ```
pub struct ConcurrentMultiQueue<P = u64, S = SkipShard<P>>
where
    P: Ord + Copy,
{
    shards: Box<[CachePadded<S>]>,
    /// Total number of stored elements (kept eventually consistent; exact
    /// when the structure is quiescent).
    len: AtomicUsize,
    _prio: std::marker::PhantomData<fn() -> P>,
}

/// The default lock-free skiplist-backed MultiQueue, spelled out.
pub type SkipListMultiQueue<P = u64> = ConcurrentMultiQueue<P, SkipShard<P>>;
/// The mutex-per-shard baseline MultiQueue (pre-PR 3 behaviour).
pub type MutexHeapMultiQueue<P = u64> = ConcurrentMultiQueue<P, MutexHeapSub<P>>;
/// The flat-combining-heap MultiQueue (batched ops under convoys).
pub type FcHeapMultiQueue<P = u64> = ConcurrentMultiQueue<P, crate::flatcomb::FcHeapSub<P>>;

impl<P: Ord + Copy + Send + Sync> ConcurrentMultiQueue<P> {
    /// Create a MultiQueue with `nqueues` internal shards on the default
    /// lock-free skiplist backend.
    #[deprecated(note = "use QueueBuilder::new(nqueues).multiqueue()")]
    pub fn new(nqueues: usize) -> Self {
        Self::construct(nqueues, None)
    }

    /// Create a default-backend MultiQueue whose shards pre-allocate
    /// their item tables for items `0..universe`.
    #[deprecated(note = "use QueueBuilder::new(nqueues).universe(n).multiqueue()")]
    pub fn with_universe(nqueues: usize, universe: usize) -> Self {
        Self::construct(nqueues, Some(universe))
    }
}

impl<P: Ord + Copy + Send, S: SubPriority<P>> ConcurrentMultiQueue<P, S> {
    /// Create a MultiQueue with `nqueues` internal shards of backend `S`.
    #[deprecated(note = "use QueueBuilder::new(nqueues).multiqueue_on::<P, S>()")]
    pub fn with_backend(nqueues: usize) -> Self {
        Self::construct(nqueues, None)
    }

    /// Create a backend-`S` MultiQueue whose shards pre-allocate their
    /// item tables for items `0..universe`.
    #[deprecated(note = "use QueueBuilder::new(nqueues).universe(n).multiqueue_on::<P, S>()")]
    pub fn with_backend_universe(nqueues: usize, universe: usize) -> Self {
        Self::construct(nqueues, Some(universe))
    }

    /// The one real constructor, reached through
    /// [`QueueBuilder`](crate::QueueBuilder) (the deprecated public
    /// aliases above all funnel here). `universe` pre-sizes each
    /// shard's item table.
    pub(crate) fn construct(nqueues: usize, universe: Option<usize>) -> Self {
        assert!(nqueues > 0, "a MultiQueue needs at least one queue");
        Self {
            shards: (0..nqueues)
                .map(|_| {
                    CachePadded::new(match universe {
                        Some(u) => S::with_universe(u),
                        None => S::new(),
                    })
                })
                .collect(),
            len: AtomicUsize::new(0),
            _prio: std::marker::PhantomData,
        }
    }

    /// Number of internal shards.
    pub fn nqueues(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if no elements are stored (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nominal relaxation factor `k = O(q log q)` (PODC 2017).
    pub fn relaxation_factor(&self) -> usize {
        let q = self.shards.len();
        let lg = usize::BITS as usize - (q + 1).leading_zeros() as usize;
        (q * lg).max(1)
    }

    #[inline]
    fn shard_of(&self, item: usize) -> &S {
        &self.shards[queue_of(item, self.shards.len())]
    }

    /// Insert `item` with priority `prio`, or lower its priority if it is
    /// already queued with a larger one.
    ///
    /// Returns `true` if a *new* element was inserted, `false` if an existing
    /// element was updated (or left unchanged because its queued priority is
    /// already ≤ `prio`). The caller uses this to maintain its element count
    /// for termination detection.
    pub fn push_or_decrease(&self, item: usize, prio: P) -> bool {
        self.push_or_decrease_tok(item, prio, &S::token())
    }

    fn push_or_decrease_tok(&self, item: usize, prio: P, tok: &S::Token) -> bool {
        if self.shard_of(item).push_or_decrease(item, prio, tok) {
            self.len.fetch_add(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// Unconditionally insert `item` (which must not be present). Used by
    /// the duplicate-insertion SSSP ablation, where the same vertex may be
    /// queued multiple times under *different* item ids.
    pub fn push(&self, item: usize, prio: P) {
        self.shard_of(item).push(item, prio, &S::token());
        self.len.fetch_add(1, Ordering::AcqRel);
    }

    /// Relaxed delete-min: sample two random shards, compare their minima
    /// via racy-safe peeks, and claim the smaller one.
    ///
    /// Returns `None` only after a full sweep over all shards found every
    /// one of them empty; because concurrent pushes may land behind the
    /// sweep, `None` is a hint, not a linearizable emptiness check — callers
    /// must use their own element accounting for termination (as the SSSP
    /// executor in `rsched-algos` does).
    pub fn pop<R: Rng>(&self, rng: &mut R) -> Option<(usize, P)> {
        self.pop_tok(rng, &S::token())
    }

    fn pop_tok<R: Rng>(&self, rng: &mut R, tok: &S::Token) -> Option<(usize, P)> {
        let q = self.shards.len();
        // Optimistic phase: a bounded number of two-choice samples.
        for round in 0..(4 * q + 8) {
            let a = rng.gen_range(0..q);
            let b = rng.gen_range(0..q);
            if let Some(got) = self.try_pop_pair(a, b, tok) {
                telemetry::record(telemetry::OpHist::Steal, round as u64);
                return Some(got);
            }
            if self.len.load(Ordering::Acquire) == 0 {
                break;
            }
        }
        // Fallback sweep: visit every shard once, waiting on any locks.
        for (k, shard) in self.shards.iter().enumerate() {
            if let Some((item, prio)) = shard.pop_min_wait(tok) {
                self.len.fetch_sub(1, Ordering::AcqRel);
                telemetry::record(telemetry::OpHist::Sweep, (k + 1) as u64);
                return Some((item, prio));
            }
        }
        telemetry::count(telemetry::OpCount::EmptyPop, 1);
        None
    }

    /// One two-choice attempt, delegated to the backend's
    /// [`SubPriority::try_pop_pair`]: racy peek-compare-claim for the
    /// lock-free backends, both locks held across compare-and-pop for
    /// the mutex baseline. Shards are passed in ascending index order so
    /// lock-holding backends acquire consistently. Returns `None` if
    /// both shards came up empty/contended or the claim raced with the
    /// shard draining.
    fn try_pop_pair(&self, a: usize, b: usize, tok: &S::Token) -> Option<(usize, P)> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let second = (hi != lo).then(|| &*self.shards[hi]);
        match S::try_pop_pair(&self.shards[lo], second, tok) {
            TryPopMin::Item((item, prio)) => {
                self.len.fetch_sub(1, Ordering::AcqRel);
                Some((item, prio))
            }
            TryPopMin::Empty | TryPopMin::Contended => None,
        }
    }

    /// `true` if `item` is currently queued.
    pub fn contains(&self, item: usize) -> bool {
        self.shard_of(item).contains(item, &S::token())
    }

    /// Current queued priority of `item`, if present.
    pub fn priority_of(&self, item: usize) -> Option<P> {
        self.shard_of(item).priority_of(item, &S::token())
    }

    /// Remove `item` wherever it is queued. Under a race with a
    /// concurrent pop of the same item the popper wins and `None` is
    /// returned.
    pub fn remove(&self, item: usize) -> Option<P> {
        let removed = self.shard_of(item).remove(item, &S::token());
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        removed
    }

    /// Drain every element, returning them unordered. Requires `&mut self`,
    /// i.e. quiescence.
    pub fn drain(&mut self) -> Vec<(usize, P)> {
        let tok = S::token();
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            while let Some(e) = shard.pop_min_wait(&tok) {
                out.push(e);
            }
        }
        self.len.store(0, Ordering::Release);
        out
    }
}

/// A worker's session over a [`ConcurrentMultiQueue`] — the MultiQueue
/// member of the workspace's worker-session layer (see the crate docs).
///
/// Carries the amortized epoch [`PinSession`], the worker's private
/// RNG stream, the bounded **spawn buffer** (deduplicating repeated
/// items locally, so a buffered decrease-key costs no shared-memory
/// traffic at all), and the **sticky peek cache**.
///
/// The peek cache descends from the MultiQueue paper's batching idea
/// (Rihani, Sanders, Dementiev, SPAA 2015) — reuse scheduling state
/// across consecutive delete-mins — but pins the shard ***minimum***
/// observed while losing the previous choice-of-two, not a shard
/// *index*: the next pop compares the cached `(shard, min)` against one
/// fresh random peek and claims the smaller, halving peek traffic.
/// Because a claim is still a validated CAS on the shard's current
/// minimum, a stale cache entry costs only relaxation slack, never a
/// wrong result. [`SessionConfig::stickiness`] bounds consecutive cache
/// reuses; `1` disables the cache — the classic two-fresh-peeks
/// protocol.
///
/// # Examples
///
/// ```
/// use rsched_queues::{QueueBuilder, SessionConfig};
///
/// let q = QueueBuilder::new(8).multiqueue::<u64>();
/// let mut session = q.session(&SessionConfig {
///     stickiness: 4,
///     ..SessionConfig::default()
/// });
/// for i in 0..100usize {
///     q.push_session(i, i as u64, &mut session);
/// }
/// let mut got = 0;
/// while q.pop_session(&mut session).is_some() {
///     got += 1;
/// }
/// assert_eq!(got, 100);
/// ```
pub struct MqSession<P> {
    pin: PinSession,
    rng: SmallRng,
    stickiness: usize,
    /// Cache-reuse budget left before a forced full re-sample.
    remaining: usize,
    /// The sticky peek cache: shard index plus the `(priority, item)`
    /// minimum observed there.
    cached: Option<(usize, (P, usize))>,
    buf: Vec<(usize, P)>,
    batch: usize,
}

impl<P> MqSession<P> {
    /// Elements parked in the spawn buffer, not yet published.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl<P: Ord + Copy + Send, S: SubPriority<P>> ConcurrentMultiQueue<P, S> {
    /// Open a worker session (see [`MqSession`]). Placement stays keyed
    /// — a MultiQueue has no home shards; its locality levers are the
    /// sticky peek cache (`cfg.stickiness`) and the spawn buffer
    /// (`cfg.spawn_batch`).
    pub fn session(&self, cfg: &SessionConfig) -> MqSession<P> {
        let batch = cfg.spawn_batch.clamp(1, MAX_SPAWN_BATCH);
        MqSession {
            pin: PinSession::new(S::NEEDS_EPOCH),
            // `cfg.seed` is already the per-worker stream (the config
            // constructors mix the tid in exactly once).
            rng: SmallRng::seed_from_u64(cfg.seed),
            stickiness: cfg.stickiness.max(1),
            remaining: 0,
            cached: None,
            buf: Vec::with_capacity(if batch > 1 { batch } else { 0 }),
            batch,
        }
    }

    /// Session push-or-decrease: immediate when `spawn_batch == 1`;
    /// otherwise the item parks in the buffer — merging into an already
    /// buffered entry for the same item *locally* when possible — and a
    /// full buffer publishes itself.
    pub fn push_session(&self, item: usize, prio: P, s: &mut MqSession<P>) -> PushOutcome {
        if s.batch <= 1 {
            s.pin.tick();
            let tok = S::borrow_token(&s.pin);
            let push = if self.push_or_decrease_tok(item, prio, &tok) {
                SessionPush::Inserted
            } else {
                SessionPush::Merged
            };
            return PushOutcome::immediate(push);
        }
        // Local dedup over the most recent window only: spawn bursts
        // repeat items close together, and a bounded scan keeps the
        // push path O(1) at large batch sizes. A duplicate that escapes
        // the window is not a correctness issue — the flush publishes
        // both and the shared `push_or_decrease` merges the second,
        // with the merge reported back through the [`FlushReport`].
        const DEDUP_WINDOW: usize = 32;
        let window = s.buf.len().saturating_sub(DEDUP_WINDOW);
        if let Some(slot) = s.buf[window..].iter_mut().find(|(it, _)| *it == item) {
            if prio < slot.1 {
                slot.1 = prio;
            }
            return PushOutcome::immediate(SessionPush::Merged);
        }
        s.buf.push((item, prio));
        let flushed = if s.buf.len() >= s.batch {
            self.flush_session(s)
        } else {
            FlushReport::default()
        };
        PushOutcome {
            push: SessionPush::Buffered,
            flushed,
        }
    }

    /// Publish everything parked in the session buffer. The report's
    /// `merged` count is the number of published elements that hit an
    /// existing entry — the retraction signal for element-count
    /// maintainers (each such element was parked as presumed-new).
    pub fn flush_session(&self, s: &mut MqSession<P>) -> FlushReport {
        if s.buf.is_empty() {
            return FlushReport::default();
        }
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let mut rep = FlushReport::default();
        for (item, prio) in s.buf.drain(..) {
            rep.published += 1;
            if !self.push_or_decrease_tok(item, prio, &tok) {
                rep.merged += 1;
            }
        }
        telemetry::count(telemetry::OpCount::FlushPublished, rep.published);
        telemetry::count(telemetry::OpCount::FlushMerged, rep.merged);
        rep
    }

    /// Session pop: the choice-of-two relaxed delete-min, with candidate
    /// A served from the sticky peek cache while its reuse budget lasts.
    /// A pop that claims the cached shard reports [`PopSource::Home`]
    /// (a cache hit); everything else is [`PopSource::Shared`] — keyed
    /// placement has no steal notion. `None` semantics match
    /// [`pop`](Self::pop); buffered spawns are **not** popped here —
    /// flush on a miss (the runtime's worker loop does).
    pub fn pop_session(&self, s: &mut MqSession<P>) -> Option<((usize, P), PopSource)> {
        s.pin.tick();
        let tok = S::borrow_token(&s.pin);
        let q = self.shards.len();
        for round in 0..(4 * q + 8) {
            // Candidate A: the cached minimum while budget lasts, else a
            // fresh peek of a random shard.
            let (a, ka, from_cache) = match s.cached.take() {
                Some((shard, key)) if s.remaining > 0 => {
                    s.remaining -= 1;
                    (shard, Some(key), true)
                }
                _ => {
                    let shard = s.rng.gen_range(0..q);
                    (shard, self.shards[shard].min_key(&tok), false)
                }
            };
            // Candidate B: always a fresh peek.
            let b = s.rng.gen_range(0..q);
            let kb = if b == a {
                None
            } else {
                self.shards[b].min_key(&tok)
            };
            let (win, win_hit, loser) = match (ka, kb) {
                (None, None) => {
                    s.remaining = 0;
                    if self.len.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    continue;
                }
                (Some(_), None) => (a, from_cache, None),
                (None, Some(k)) => (b, false, Some((b, k))),
                (Some(x), Some(y)) => {
                    if x <= y {
                        (a, from_cache, Some((b, y)))
                    } else {
                        (b, false, Some((a, x)))
                    }
                }
            };
            match self.shards[win].try_pop_min(&tok) {
                TryPopMin::Item((item, prio)) => {
                    self.len.fetch_sub(1, Ordering::AcqRel);
                    // Pin the losing shard's observed minimum for the
                    // next pop — the "peek cache" form of stickiness.
                    // Only a *fresh-sample* pop re-arms the reuse
                    // budget; cache-served pops spend it, so a chain of
                    // reuses ends after `stickiness − 1` pops and the
                    // next pop peeks fresh.
                    if s.stickiness > 1 {
                        if !from_cache {
                            s.remaining = s.stickiness - 1;
                        }
                        if s.remaining > 0 {
                            if let Some((shard, key)) = loser {
                                s.cached = Some((shard, key));
                            }
                        }
                    }
                    let src = if win_hit {
                        PopSource::Home
                    } else {
                        PopSource::Shared
                    };
                    telemetry::record(telemetry::OpHist::Steal, round as u64);
                    return Some(((item, prio), src));
                }
                TryPopMin::Empty | TryPopMin::Contended => {
                    s.remaining = 0;
                    if self.len.load(Ordering::Acquire) == 0 {
                        break;
                    }
                }
            }
        }
        // Fallback sweep: visit every shard once, waiting on any locks.
        for (k, shard) in self.shards.iter().enumerate() {
            if let Some((item, prio)) = shard.pop_min_wait(&tok) {
                self.len.fetch_sub(1, Ordering::AcqRel);
                telemetry::record(telemetry::OpHist::Sweep, (k + 1) as u64);
                return Some(((item, prio), PopSource::Shared));
            }
        }
        telemetry::count(telemetry::OpCount::EmptyPop, 1);
        None
    }
}

/// A MultiQueue over plain binary heaps that allows **duplicate** entries
/// for the same item and has no `decrease_key`.
///
/// This is the scheduler for the duplicate-insertion Dijkstra variant the
/// paper's Section 6 discussion contrasts against ("if we insert multiple
/// copies of vertices in Qk with different distances, as in some versions of
/// Dijkstra, there might exist outdated copies"): the DecreaseKey ablation
/// experiment runs the same SSSP with this queue and measures the extra
/// stale pops.
/// One shard of a [`DuplicateMultiQueue`]: a plain min-heap of
/// `(priority, item)` entries.
type DupShard<P> = CachePadded<Mutex<std::collections::BinaryHeap<std::cmp::Reverse<(P, usize)>>>>;

pub struct DuplicateMultiQueue<P = u64> {
    shards: Box<[DupShard<P>]>,
    len: AtomicUsize,
}

impl<P: Ord + Copy + Send> DuplicateMultiQueue<P> {
    /// Create a duplicate-allowing MultiQueue with `nqueues` internal heaps.
    pub fn new(nqueues: usize) -> Self {
        assert!(nqueues > 0);
        Self {
            shards: (0..nqueues)
                .map(|_| CachePadded::new(Mutex::new(std::collections::BinaryHeap::new())))
                .collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of internal queues.
    pub fn nqueues(&self) -> usize {
        self.shards.len()
    }

    /// Number of stored entries (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if no entries are stored (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an `(item, prio)` entry into a uniformly random queue;
    /// duplicates of the same item are allowed.
    pub fn push<R: Rng>(&self, item: usize, prio: P, rng: &mut R) {
        let q = rng.gen_range(0..self.shards.len());
        self.shards[q].lock().push(std::cmp::Reverse((prio, item)));
        self.len.fetch_add(1, Ordering::AcqRel);
    }

    /// Two-choice relaxed pop; same contract as
    /// [`ConcurrentMultiQueue::pop`].
    pub fn pop<R: Rng>(&self, rng: &mut R) -> Option<(usize, P)> {
        let q = self.shards.len();
        for _ in 0..(4 * q + 8) {
            let a = rng.gen_range(0..q);
            let b = rng.gen_range(0..q);
            let (first, second) = if a <= b { (a, b) } else { (b, a) };
            let Some(mut ha) = self.shards[first].try_lock() else {
                continue;
            };
            let hb = if second != first {
                match self.shards[second].try_lock() {
                    Some(h) => Some(h),
                    None => continue,
                }
            } else {
                None
            };
            let ta = ha.peek().map(|r| r.0);
            let tb = hb.as_ref().and_then(|h| h.peek().map(|r| r.0));
            let popped = match (ta, tb) {
                (None, None) => {
                    if self.len.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    continue;
                }
                (Some(_), None) => ha.pop(),
                (None, Some(_)) => hb.expect("held").pop(),
                (Some(x), Some(y)) => {
                    if x <= y {
                        ha.pop()
                    } else {
                        drop(ha);
                        hb.expect("held").pop()
                    }
                }
            };
            let std::cmp::Reverse((prio, item)) = popped.expect("peeked entry vanished");
            self.len.fetch_sub(1, Ordering::AcqRel);
            return Some((item, prio));
        }
        // Fallback sweep.
        for shard in self.shards.iter() {
            let mut heap = shard.lock();
            if let Some(std::cmp::Reverse((prio, item))) = heap.pop() {
                drop(heap);
                self.len.fetch_sub(1, Ordering::AcqRel);
                return Some((item, prio));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueueBuilder;
    use crate::flatcomb::FcHeapSub;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn sim_pop_all_returns_every_item_once() {
        let mut mq = SimMultiQueue::new(8, 7);
        for i in 0..1000usize {
            mq.insert(i, (i as u64) % 97);
        }
        let mut seen = HashSet::new();
        while let Some((item, _)) = mq.pop_relaxed() {
            assert!(seen.insert(item), "item {item} returned twice");
        }
        assert_eq!(seen.len(), 1000);
        assert!(mq.is_empty());
    }

    #[test]
    fn sim_single_queue_is_exact() {
        // With one internal queue both samples hit the same heap, so the
        // MultiQueue degenerates to an exact queue.
        let mut mq = SimMultiQueue::new(1, 3);
        for (i, p) in [50u64, 10, 40, 20, 30].into_iter().enumerate() {
            mq.insert(i, p);
        }
        let mut out = Vec::new();
        while let Some((_, p)) = mq.pop_relaxed() {
            out.push(p);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn sim_rank_is_bounded_by_live_queues() {
        // Structural property: the returned element is the minimum of at
        // least one internal queue, so its rank is at most the number of
        // non-empty queues.
        let q = 16;
        let mut mq = SimMultiQueue::new(q, 99);
        for i in 0..4096usize {
            mq.insert(i, i as u64);
        }
        for _ in 0..2048 {
            let mut live: Vec<u64> = Vec::new();
            for h in &mq.queues {
                if let Some((p, _)) = h.min_entry() {
                    live.push(p);
                }
            }
            live.sort_unstable();
            let (item, prio) = mq.pop_relaxed().unwrap();
            assert_eq!(prio, item as u64);
            // prio must be one of the queue tops.
            assert!(live.contains(&prio));
        }
    }

    #[test]
    fn sim_decrease_key_moves_item_forward() {
        let mut mq = SimMultiQueue::keyed(4, 5);
        for i in 0..64usize {
            mq.insert(i, 1000 + i as u64);
        }
        assert!(mq.decrease_key(63, 1));
        assert!(!mq.decrease_key(63, 5000), "increase rejected");
        // Item 63 is now the global minimum; with 4 queues it must be
        // returned within a few pops (here: verify it is eventually popped
        // with the decreased priority).
        let mut found = None;
        while let Some((item, prio)) = mq.pop_relaxed() {
            if item == 63 {
                found = Some(prio);
                break;
            }
        }
        assert_eq!(found, Some(1));
    }

    #[test]
    fn sim_delete_then_reinsert() {
        let mut mq = SimMultiQueue::new(4, 11);
        mq.insert(5, 50u64);
        assert!(RelaxedQueue::delete(&mut mq, 5));
        assert!(!RelaxedQueue::delete(&mut mq, 5));
        assert!(!mq.contains(5));
        mq.insert(5, 10);
        assert_eq!(mq.pop_relaxed(), Some((5, 10)));
    }

    fn check_push_pop_exhaustive<S: SubPriority<u64>>() {
        let mq: ConcurrentMultiQueue<u64, S> = QueueBuilder::new(4).multiqueue_on();
        for i in 0..500usize {
            mq.push_or_decrease(i, 500 - i as u64);
        }
        assert_eq!(mq.len(), 500);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        while let Some((item, _)) = mq.pop(&mut rng) {
            assert!(seen.insert(item));
        }
        assert_eq!(seen.len(), 500);
        assert!(mq.is_empty());
    }

    #[test]
    fn concurrent_push_pop_exhaustive_both_backends() {
        check_push_pop_exhaustive::<SkipShard<u64>>();
        check_push_pop_exhaustive::<MutexHeapSub<u64>>();
        check_push_pop_exhaustive::<FcHeapSub<u64>>();
    }

    fn check_decrease_key_path<S: SubPriority<u64>>() {
        let mq: ConcurrentMultiQueue<u64, S> = QueueBuilder::new(4).multiqueue_on();
        assert!(mq.push_or_decrease(7, 100));
        assert!(!mq.push_or_decrease(7, 50), "decrease, not insert");
        assert!(!mq.push_or_decrease(7, 80), "no-op update");
        assert_eq!(mq.priority_of(7), Some(50));
        assert_eq!(mq.len(), 1);
        assert_eq!(mq.remove(7), Some(50));
        assert_eq!(mq.len(), 0);
    }

    #[test]
    fn concurrent_decrease_key_path_both_backends() {
        check_decrease_key_path::<SkipShard<u64>>();
        check_decrease_key_path::<MutexHeapSub<u64>>();
        check_decrease_key_path::<FcHeapSub<u64>>();
    }

    fn check_multithreaded_no_loss_no_dup<S: SubPriority<u64> + 'static>() {
        let threads = 8;
        let per_thread = 2000usize;
        let mq: Arc<ConcurrentMultiQueue<u64, S>> =
            Arc::new(QueueBuilder::new(2 * threads).multiqueue_on());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mq = Arc::clone(&mq);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    let mut popped = Vec::new();
                    for i in 0..per_thread {
                        let item = t * per_thread + i;
                        mq.push_or_decrease(item, rng.gen_range(0..1_000_000));
                        if i % 3 == 0 {
                            if let Some((it, _)) = mq.pop(&mut rng) {
                                popped.push(it);
                            }
                        }
                    }
                    popped
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for it in h.join().unwrap() {
                assert!(seen.insert(it), "duplicate pop of {it}");
            }
        }
        let mut rng = SmallRng::seed_from_u64(123);
        while let Some((it, _)) = mq.pop(&mut rng) {
            assert!(seen.insert(it), "duplicate pop of {it}");
        }
        assert_eq!(seen.len(), threads * per_thread, "lost elements");
    }

    #[test]
    fn concurrent_multithreaded_no_loss_no_dup_skiplist() {
        check_multithreaded_no_loss_no_dup::<SkipShard<u64>>();
    }

    #[test]
    fn concurrent_multithreaded_no_loss_no_dup_mutexheap() {
        check_multithreaded_no_loss_no_dup::<MutexHeapSub<u64>>();
    }

    #[test]
    fn concurrent_multithreaded_no_loss_no_dup_flatcomb() {
        check_multithreaded_no_loss_no_dup::<FcHeapSub<u64>>();
    }

    #[test]
    fn keyed_placement_is_stable() {
        // The same item must always map to the same shard index.
        for &q in &[1usize, 2, 3, 8, 17, 64] {
            for item in 0..1000usize {
                assert_eq!(queue_of(item, q), queue_of(item, q));
                assert!(queue_of(item, q) < q);
            }
        }
    }

    #[test]
    fn pop_scan_finds_lone_element() {
        // Element hidden in one of many queues: the fallback sweep must
        // find it even if sampling repeatedly misses.
        fn check<S: SubPriority<u64>>() {
            let mq: ConcurrentMultiQueue<u64, S> = QueueBuilder::new(64).multiqueue_on();
            mq.push_or_decrease(42, 7);
            let mut rng = SmallRng::seed_from_u64(0);
            assert_eq!(mq.pop(&mut rng), Some((42, 7)));
            assert_eq!(mq.pop(&mut rng), None);
        }
        check::<SkipShard<u64>>();
        check::<MutexHeapSub<u64>>();
        check::<FcHeapSub<u64>>();
    }

    #[test]
    fn session_threaded_ops_match_plain_ones() {
        let mq: SkipListMultiQueue<u64> = QueueBuilder::new(8).multiqueue();
        let mut session = mq.session(&SessionConfig::default());
        for i in 0..200usize {
            assert_eq!(
                mq.push_session(i, 1000 + i as u64, &mut session).push,
                SessionPush::Inserted
            );
            assert_eq!(
                mq.push_session(i, i as u64, &mut session).push,
                SessionPush::Merged
            );
        }
        assert_eq!(mq.len(), 200);
        let mut seen = HashSet::new();
        while let Some(((it, p), _)) = mq.pop_session(&mut session) {
            assert_eq!(p, it as u64, "decrease was lost");
            assert!(seen.insert(it));
        }
        assert_eq!(seen.len(), 200);
    }

    #[test]
    fn sticky_peek_cache_drains_both_backends() {
        fn check<S: SubPriority<u64>>() {
            let q: ConcurrentMultiQueue<u64, S> = QueueBuilder::new(8).multiqueue_on();
            for i in 0..100usize {
                q.push_or_decrease(i, i as u64);
            }
            let mut session = q.session(&SessionConfig {
                stickiness: 4,
                seed: 42,
                ..SessionConfig::default()
            });
            let mut got = 0;
            let mut cache_hits = 0;
            while let Some((_, src)) = q.pop_session(&mut session) {
                got += 1;
                if src == PopSource::Home {
                    cache_hits += 1;
                }
            }
            assert_eq!(got, 100);
            assert!(
                cache_hits > 0,
                "stickiness 4 never claimed through the peek cache"
            );
        }
        check::<SkipShard<u64>>();
        check::<MutexHeapSub<u64>>();
        check::<FcHeapSub<u64>>();
    }

    #[test]
    fn session_buffer_dedups_and_flush_reports_merges() {
        let q: SkipListMultiQueue<u64> = QueueBuilder::new(4).multiqueue();
        // Pre-existing entry: the later flush of item 0 must merge.
        q.push_or_decrease(0, 500);
        let mut s = q.session(&SessionConfig {
            spawn_batch: 8,
            ..SessionConfig::default()
        });
        assert_eq!(q.push_session(1, 10, &mut s).push, SessionPush::Buffered);
        // Same item again: merged inside the buffer, no shared traffic.
        assert_eq!(q.push_session(1, 5, &mut s).push, SessionPush::Merged);
        assert_eq!(q.push_session(0, 100, &mut s).push, SessionPush::Buffered);
        assert_eq!(s.buffered(), 2);
        assert_eq!(q.len(), 1, "parked spawns are invisible");
        let rep = q.flush_session(&mut s);
        assert_eq!(rep.published, 2);
        assert_eq!(rep.merged, 1, "item 0 merged into the live entry");
        assert_eq!(q.len(), 2);
        assert_eq!(q.priority_of(1), Some(5), "buffer kept the minimum");
        assert_eq!(q.priority_of(0), Some(100));
    }
}
